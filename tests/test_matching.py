"""Unit tests for the bipartite matching substrate."""

import pytest

from repro.matching import (
    BipartiteGraph,
    augmenting_path,
    extend_matching,
    hall_violation,
    hopcroft_karp,
    maximum_matching,
)


def build_graph(edges, n_left):
    graph = BipartiteGraph(n_left=n_left)
    for left, right in edges:
        graph.add_edge(left, right)
    return graph


class TestBipartiteGraph:
    def test_right_labels_are_interned(self):
        graph = BipartiteGraph(n_left=2)
        graph.add_edge(0, "a")
        graph.add_edge(1, "a")
        assert graph.n_right == 1
        assert graph.num_edges == 2
        assert graph.right_label(0) == "a"

    def test_out_of_range_left_vertex_rejected(self):
        graph = BipartiteGraph(n_left=1)
        with pytest.raises(ValueError):
            graph.add_edge(3, "x")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph(n_left=-1)

    def test_right_id_of_does_not_intern(self):
        graph = BipartiteGraph(n_left=1)
        assert graph.right_id_of("missing") is None
        assert graph.n_right == 0


class TestHopcroftKarp:
    def test_perfect_matching(self):
        graph = build_graph([(0, "t0"), (0, "t1"), (1, "t1"), (2, "t2")], n_left=3)
        matching = maximum_matching(graph)
        assert len(matching) == 3
        assert len(set(matching.values())) == 3

    def test_maximum_but_not_perfect(self):
        graph = build_graph([(0, "t0"), (1, "t0"), (2, "t0")], n_left=3)
        matching = maximum_matching(graph)
        assert len(matching) == 1

    def test_empty_graph(self):
        graph = BipartiteGraph(n_left=0)
        match_left, match_right = hopcroft_karp(graph)
        assert match_left == [] and match_right == []

    def test_requires_augmenting_phase(self):
        # Greedy warm start matches 0->a, then 1 requires augmenting through 0.
        graph = build_graph([(0, "a"), (0, "b"), (1, "a")], n_left=2)
        matching = maximum_matching(graph)
        assert len(matching) == 2
        assert matching[1] == "a"
        assert matching[0] == "b"

    def test_crown_instance(self):
        n = 20
        edges = [(i, f"s{i}") for i in range(n)] + [(i, "hub") for i in range(n)]
        graph = build_graph(edges, n_left=n)
        assert len(maximum_matching(graph)) == n


class TestAugmenting:
    def test_extend_matching_adds_one_job_at_a_time(self):
        graph = build_graph(
            [(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)], n_left=3
        )
        partial = {0: 1}
        full = extend_matching(graph, partial)
        assert len(full) == 3
        assert len(set(full.values())) == 3

    def test_extend_matching_rejects_inconsistent_partial(self):
        graph = build_graph([(0, 0), (1, 0)], n_left=2)
        with pytest.raises(ValueError):
            extend_matching(graph, {0: 0, 1: 0})

    def test_extend_matching_unknown_label(self):
        graph = build_graph([(0, 0)], n_left=1)
        with pytest.raises(ValueError):
            extend_matching(graph, {0: 99})

    def test_augmenting_path_failure_leaves_matching_untouched(self):
        graph = build_graph([(0, "a"), (1, "a")], n_left=2)
        match_left = [graph.right_id_of("a"), -1]
        match_right = [0]
        assert augmenting_path(graph, match_left, match_right, 1) is False
        assert match_left == [graph.right_id_of("a"), -1]

    def test_augmenting_path_requires_unmatched_start(self):
        graph = build_graph([(0, "a")], n_left=1)
        match_left = [graph.right_id_of("a")]
        match_right = [0]
        with pytest.raises(ValueError):
            augmenting_path(graph, match_left, match_right, 0)


class TestHallViolation:
    def test_detects_overload(self):
        violation = hall_violation([(0, 1), (0, 1), (0, 1)], num_processors=1)
        assert violation == (0, 1, 3, 2)

    def test_no_violation(self):
        assert hall_violation([(0, 1), (0, 1)], num_processors=1) is None

    def test_respects_processor_count(self):
        assert hall_violation([(0, 0), (0, 0)], num_processors=2) is None
        assert hall_violation([(0, 0), (0, 0), (0, 0)], num_processors=2) is not None

    def test_empty_input(self):
        assert hall_violation([], num_processors=1) is None

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            hall_violation([(0, 1)], num_processors=0)
