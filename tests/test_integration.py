"""End-to-end integration tests spanning generators, solvers and analysis."""

import pytest

from repro import (
    MultiIntervalInstance,
    minimize_gaps_single_processor,
    minimize_power_single_processor,
    solve_multiprocessor_gap,
    solve_multiprocessor_power,
)
from repro.analysis import power_breakdown, schedule_summary
from repro.core.greedy_gap import greedy_gap_schedule
from repro.core.power_approx import approximate_power_schedule
from repro.core.throughput import greedy_throughput_schedule
from repro.generators import (
    bursty_server_instance,
    periodic_sensor_instance,
    random_multiprocessor_instance,
)
from repro.power import PowerModel, SleepStatePolicy, simulate_schedule
from repro.reductions import build_gap_gadget
from repro.setcover import exact_set_cover
from repro.generators.random_jobs import random_set_cover_instance


class TestDatacenterPipeline:
    """Generator -> exact solvers -> simulator, as used by the datacenter example."""

    def test_gap_and_power_solvers_agree_on_structure(self):
        instance = bursty_server_instance(
            num_bursts=3, jobs_per_burst=3, burst_spacing=8, slack=2, num_processors=3
        )
        gap_solution = solve_multiprocessor_gap(instance)
        power_solution = solve_multiprocessor_power(instance, alpha=4.0)
        assert gap_solution.feasible and power_solution.feasible
        # The power optimum can always be realised with at most as much power
        # as the gap-optimal schedule costs.
        gap_schedule_power = gap_solution.require_schedule().power_cost(4.0)
        assert power_solution.power <= gap_schedule_power + 1e-9

    def test_simulator_confirms_power_numbers(self):
        instance = bursty_server_instance(
            num_bursts=2, jobs_per_burst=2, burst_spacing=10, slack=2, num_processors=2
        )
        solution = solve_multiprocessor_power(instance, alpha=2.5)
        schedule = solution.require_schedule()
        sim = simulate_schedule(schedule, PowerModel(alpha=2.5))
        assert sim.total_energy == pytest.approx(solution.power)
        breakdown = power_breakdown(schedule, alpha=2.5)
        assert breakdown["total"] == pytest.approx(solution.power)


class TestSensorPipeline:
    """Sensor workload -> Theorem 3 approximation -> summary metrics."""

    def test_approximation_pipeline(self):
        instance = periodic_sensor_instance(
            num_sensors=4, readings_per_sensor=2, period=12, window=3, seed=0
        )
        result = approximate_power_schedule(instance, alpha=5.0)
        result.schedule.validate()
        summary = schedule_summary(result.schedule, alpha=5.0)
        assert summary["jobs_scheduled"] == instance.num_jobs
        assert summary["power"] == pytest.approx(result.power)


class TestConsultantPipeline:
    """Multi-interval workload -> throughput greedy under a restart budget."""

    def test_budget_sweep_is_monotone(self):
        instance = periodic_sensor_instance(
            num_sensors=3, readings_per_sensor=2, period=10, window=2, seed=1
        )
        scheduled = []
        for budget in range(0, 5):
            result = greedy_throughput_schedule(instance, max_gaps=budget)
            result.schedule.validate(require_complete=False)
            scheduled.append(result.num_scheduled)
        assert scheduled == sorted(scheduled)


class TestHardnessPipeline:
    """Set cover -> gadget -> scheduling solvers -> back to covers."""

    def test_gap_gadget_roundtrip_with_greedy_baseline(self):
        source = random_set_cover_instance(
            num_elements=5, num_sets=5, max_set_size=3, seed=21
        )
        gadget = build_gap_gadget(source)
        cover = exact_set_cover(source)
        schedule = gadget.cover_to_schedule(cover)
        recovered = gadget.schedule_to_cover(schedule)
        assert source.is_cover(recovered)
        assert len(recovered) <= len(cover)


class TestBaselineComparison:
    def test_exact_beats_or_ties_greedy_and_both_are_valid(self):
        instance = random_multiprocessor_instance(
            num_jobs=8, num_processors=1, horizon=24, max_window=6, seed=9
        ).single_processor_view()
        exact = minimize_gaps_single_processor(instance)
        greedy = greedy_gap_schedule(instance)
        assert exact.feasible and greedy.feasible
        assert exact.num_gaps <= greedy.num_gaps
        exact_power = minimize_power_single_processor(instance, alpha=2.0)
        assert exact_power.power <= greedy.schedule.power_cost(2.0) + 1e-9
