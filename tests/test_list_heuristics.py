"""Tests for the scalable EDF + block-merge local-search heuristics."""

import random
import time

import pytest

from repro.api import Problem, solve
from repro.core.exceptions import InfeasibleInstanceError
from repro.core.jobs import OneIntervalInstance
from repro.core.list_heuristics import (
    LocalSearchResult,
    edf_list_schedule,
    merge_local_search,
)
from repro.verify import certify_result


def random_instance(rng, max_jobs=12):
    n = rng.randint(1, max_jobs)
    horizon = rng.randint(max(2, n // 2), 3 * n + 4)
    pairs = []
    for _ in range(n):
        r = rng.randrange(horizon)
        pairs.append((r, r + rng.randint(0, horizon - r)))
    return OneIntervalInstance.from_pairs(pairs)


class TestEdfListSchedule:
    def test_feasibility_exact(self):
        rng = random.Random(5)
        for _ in range(200):
            inst = random_instance(rng)
            exact = solve(Problem(objective="gaps", instance=inst), solver="gap-dp")
            try:
                schedule = edf_list_schedule(inst)
            except InfeasibleInstanceError:
                assert exact.status == "infeasible"
                continue
            assert exact.status != "infeasible"
            schedule.validate()

    def test_schedules_all_jobs(self):
        inst = OneIntervalInstance.from_pairs([(0, 3), (1, 4), (2, 5)])
        schedule = edf_list_schedule(inst)
        assert len(schedule.assignment) == 3


class TestMergeLocalSearch:
    def test_never_worse_than_edf_on_gaps(self):
        rng = random.Random(13)
        for _ in range(150):
            inst = random_instance(rng)
            try:
                edf = edf_list_schedule(inst)
            except InfeasibleInstanceError:
                continue
            result = merge_local_search(inst, objective="gaps")
            result.schedule.validate()
            assert result.schedule.num_gaps() <= edf.num_gaps()
            assert result.merges == edf.num_gaps() - result.schedule.num_gaps()

    def test_never_worse_than_edf_on_power(self):
        rng = random.Random(17)
        for _ in range(150):
            inst = random_instance(rng)
            alpha = rng.choice([0.5, 1.0, 2.0, 3.5])
            try:
                edf = edf_list_schedule(inst)
            except InfeasibleInstanceError:
                continue
            result = merge_local_search(inst, objective="power", alpha=alpha)
            result.schedule.validate()
            assert (
                result.schedule.power_cost(alpha) <= edf.power_cost(alpha) + 1e-9
            )

    def test_merges_closable_gap(self):
        # EDF leaves j1 at its release (t=5) creating a gap; the merge pass
        # shifts it flush against the first block.
        inst = OneIntervalInstance.from_pairs([(0, 10), (5, 10)])
        edf = edf_list_schedule(inst)
        result = merge_local_search(inst, schedule=edf, objective="gaps")
        assert result.schedule.num_gaps() == 0

    def test_power_requires_alpha(self):
        inst = OneIntervalInstance.from_pairs([(0, 3)])
        with pytest.raises(ValueError):
            merge_local_search(inst, objective="power")

    def test_rejects_unknown_objective(self):
        inst = OneIntervalInstance.from_pairs([(0, 3)])
        with pytest.raises(ValueError):
            merge_local_search(inst, objective="makespan")

    def test_deadline_stops_cooperatively(self):
        inst = OneIntervalInstance.from_pairs(
            [(7 * i, 7 * i + 30) for i in range(3000)]
        )
        result = merge_local_search(
            inst, objective="gaps", deadline=time.perf_counter()
        )
        assert result.exhausted
        result.schedule.validate()

    def test_move_budget_bounds_work(self):
        inst = OneIntervalInstance.from_pairs(
            [(7 * i, 7 * i + 30) for i in range(500)]
        )
        result = merge_local_search(inst, objective="gaps", move_budget_factor=0)
        assert result.exhausted
        assert result.moves <= 64  # the budget check runs before each probe
        result.schedule.validate()

    def test_large_staircase_reaches_density_optimum(self):
        # Windows of length 31 stepping by 7: any busy block of length 6
        # can draw on 6 overlapping windows, but length 7 would need 7 jobs
        # and only 6 windows meet it — so blocks cap at 6 and the certified
        # density bound of ceil(5000/6) - 1 gaps is tight.
        from repro.bounds import gap_lower_bound

        inst = OneIntervalInstance.from_pairs(
            [(7 * i, 7 * i + 30) for i in range(5000)]
        )
        result = merge_local_search(inst, objective="gaps")
        optimum = -(-5000 // 6) - 1
        assert result.schedule.num_gaps() == optimum
        assert gap_lower_bound(inst).value == optimum


class TestRegisteredHeuristicSolvers:
    @pytest.mark.parametrize(
        "solver", ["edf-gap", "localsearch-gap", "edf-power", "localsearch-power"]
    )
    def test_certified_against_exact(self, solver):
        objective = "gaps" if solver.endswith("gap") else "power"
        rng = random.Random(hash(solver) % 2**32)
        for _ in range(60):
            inst = random_instance(rng)
            alpha = 2.0 if objective == "power" else None
            problem = Problem(objective=objective, instance=inst, alpha=alpha)
            exact_name = "gap-dp" if objective == "gaps" else "power-dp"
            exact = solve(problem, solver=exact_name)
            result = solve(problem, solver=solver)
            assert (result.status == "infeasible") == (exact.status == "infeasible")
            if exact.status == "infeasible":
                continue
            assert certify_result(problem, result).ok, certify_result(
                problem, result
            ).issues
            assert result.value >= exact.value - 1e-9
            gap = result.extra.get("optimality_gap")
            if gap is not None:
                assert gap["lower"] <= exact.value + 1e-9
                assert gap["upper"] == result.value

    def test_heuristics_are_approximate_kind(self):
        from repro.api import list_solvers

        kinds = {spec.name: spec.kind for spec in list_solvers()}
        for name in ("edf-gap", "localsearch-gap", "edf-power", "localsearch-power"):
            assert kinds[name] == "approximate"

    def test_auto_dispatch_still_prefers_exact(self):
        inst = OneIntervalInstance.from_pairs([(0, 3), (2, 6)])
        result = solve(Problem(objective="gaps", instance=inst))
        assert result.solver not in (
            "edf-gap",
            "localsearch-gap",
        ), "auto dispatch must keep preferring the exact DP"
