"""Unit tests for the set-packing substrate."""

import pytest

from repro.core.exceptions import InvalidInstanceError
from repro.setpacking import (
    SetPackingInstance,
    exact_set_packing,
    greedy_set_packing,
    local_search_set_packing,
)


class TestInstance:
    def test_uniform_size(self):
        instance = SetPackingInstance(sets=[[0, 1, 2], [3, 4, 5]])
        assert instance.uniform_size == 3
        mixed = SetPackingInstance(sets=[[0], [1, 2]])
        assert mixed.uniform_size == 0

    def test_rejects_empty_set(self):
        with pytest.raises(InvalidInstanceError):
            SetPackingInstance(sets=[[]])

    def test_is_packing(self):
        instance = SetPackingInstance(sets=[[0, 1], [1, 2], [3]])
        assert instance.is_packing([0, 2])
        assert not instance.is_packing([0, 1])

    def test_base_set(self):
        instance = SetPackingInstance(sets=[[0, 1], [2]])
        assert instance.base_set() == {0, 1, 2}


class TestGreedyAndLocalSearch:
    def test_greedy_returns_maximal_packing(self):
        instance = SetPackingInstance(sets=[[0, 1], [1, 2], [2, 3], [4]])
        chosen = greedy_set_packing(instance)
        assert instance.is_packing(chosen)
        # maximal: no unchosen set is disjoint from the packing
        used = set()
        for idx in chosen:
            used |= instance.sets[idx]
        for idx in range(instance.num_sets):
            if idx not in chosen:
                assert instance.sets[idx] & used

    def test_local_search_improves_greedy_trap(self):
        # Greedy picks the first (blocking) set; swapping it out yields two sets.
        instance = SetPackingInstance(sets=[[0, 1], [0, 2], [1, 3]])
        greedy = greedy_set_packing(instance)
        improved = local_search_set_packing(instance, swap_size=1)
        assert len(greedy) == 1
        assert len(improved) == 2
        assert instance.is_packing(improved)

    def test_local_search_matches_exact_on_small_instances(self):
        instance = SetPackingInstance(
            sets=[[0, 1, 2], [2, 3, 4], [4, 5, 0], [1, 3, 5], [6, 7, 8]]
        )
        local = local_search_set_packing(instance, swap_size=2)
        exact = exact_set_packing(instance)
        assert instance.is_packing(local)
        assert len(local) >= len(exact) - 1  # Hurkens-Schrijver style guarantee margin

    def test_empty_collection(self):
        instance = SetPackingInstance(sets=[])
        assert greedy_set_packing(instance) == []
        assert local_search_set_packing(instance) == []
        assert exact_set_packing(instance) == []


class TestExact:
    def test_exact_optimum(self):
        instance = SetPackingInstance(sets=[[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]])
        exact = exact_set_packing(instance)
        assert len(exact) == 2
        assert instance.is_packing(exact)

    def test_exact_on_disjoint_sets(self):
        instance = SetPackingInstance(sets=[[0], [1], [2]])
        assert len(exact_set_packing(instance)) == 3

    def test_local_search_never_beats_exact(self):
        instance = SetPackingInstance(
            sets=[[0, 1], [2, 3], [1, 2], [0, 3], [4, 5], [5, 6]]
        )
        assert len(local_search_set_packing(instance)) <= len(exact_set_packing(instance))
