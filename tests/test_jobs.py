"""Unit tests for the job / instance data model."""

import pytest

from repro import (
    InvalidInstanceError,
    Job,
    MultiIntervalInstance,
    MultiIntervalJob,
    MultiprocessorInstance,
    OneIntervalInstance,
    jobs_from_pairs,
)


class TestJob:
    def test_window_properties(self):
        job = Job(release=2, deadline=5, name="a")
        assert job.window == (2, 5)
        assert job.window_length == 4
        assert list(job.allowed_times()) == [2, 3, 4, 5]

    def test_can_run_at(self):
        job = Job(release=1, deadline=3)
        assert job.can_run_at(1)
        assert job.can_run_at(3)
        assert not job.can_run_at(0)
        assert not job.can_run_at(4)

    def test_deadline_before_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(release=5, deadline=4)

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job(release=0.5, deadline=4)  # type: ignore[arg-type]

    def test_to_multi_interval(self):
        job = Job(release=3, deadline=5, name="x")
        mi = job.to_multi_interval()
        assert mi.times == (3, 4, 5)
        assert mi.name == "x"

    def test_ordering_by_release_then_deadline(self):
        assert Job(0, 2) < Job(1, 1)
        assert sorted([Job(3, 4), Job(0, 9)])[0] == Job(0, 9)


class TestMultiIntervalJob:
    def test_times_are_sorted_and_deduplicated(self):
        job = MultiIntervalJob(times=[5, 1, 5, 3])
        assert job.times == (1, 3, 5)
        assert job.num_times == 3

    def test_empty_times_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiIntervalJob(times=[])

    def test_intervals_groups_consecutive_times(self):
        job = MultiIntervalJob(times=[0, 1, 2, 5, 7, 8])
        assert job.intervals() == [(0, 2), (5, 5), (7, 8)]
        assert job.num_intervals == 3

    def test_from_intervals(self):
        job = MultiIntervalJob.from_intervals([(0, 1), (4, 5)])
        assert job.times == (0, 1, 4, 5)

    def test_from_intervals_rejects_empty_interval(self):
        with pytest.raises(InvalidInstanceError):
            MultiIntervalJob.from_intervals([(3, 2)])

    def test_can_run_at(self):
        job = MultiIntervalJob(times=[2, 9])
        assert job.can_run_at(2)
        assert not job.can_run_at(3)


class TestOneIntervalInstance:
    def test_from_pairs_and_horizon(self):
        instance = OneIntervalInstance.from_pairs([(0, 2), (4, 7)])
        assert instance.num_jobs == 2
        assert instance.horizon == (0, 7)
        assert instance.releases == (0, 4)
        assert instance.deadlines == (2, 7)

    def test_jobs_sorted_by_deadline(self):
        instance = OneIntervalInstance.from_pairs([(0, 9), (1, 2), (3, 5)])
        assert instance.jobs_sorted_by_deadline() == [1, 2, 0]

    def test_to_multiprocessor_and_back(self):
        instance = OneIntervalInstance.from_pairs([(0, 2), (1, 3)])
        mp = instance.to_multiprocessor(3)
        assert mp.num_processors == 3
        assert mp.single_processor_view().jobs == instance.jobs

    def test_iteration_and_len(self):
        instance = OneIntervalInstance.from_pairs([(0, 1), (1, 2), (2, 3)])
        assert len(instance) == 3
        assert all(isinstance(job, Job) for job in instance)


class TestMultiprocessorInstance:
    def test_requires_positive_processor_count(self):
        with pytest.raises(InvalidInstanceError):
            MultiprocessorInstance.from_pairs([(0, 1)], num_processors=0)

    def test_from_pairs(self):
        instance = MultiprocessorInstance.from_pairs([(0, 1), (0, 1)], num_processors=2)
        assert instance.num_jobs == 2
        assert instance.num_processors == 2


class TestMultiIntervalInstance:
    def test_from_time_lists(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [3]])
        assert instance.num_jobs == 2
        assert instance.all_times == (0, 1, 3)
        assert instance.horizon == (0, 3)

    def test_accepts_one_interval_jobs(self):
        instance = MultiIntervalInstance(jobs=[Job(0, 2), MultiIntervalJob(times=[5])])
        assert instance.jobs[0].times == (0, 1, 2)

    def test_unit_and_disjoint_predicates(self):
        unit_disjoint = MultiIntervalInstance.from_time_lists([[0, 4], [2, 6]])
        assert unit_disjoint.is_unit_interval()
        assert unit_disjoint.is_disjoint_unit()
        overlapping = MultiIntervalInstance.from_time_lists([[0, 4], [4, 6]])
        assert not overlapping.is_disjoint_unit()
        contiguous = MultiIntervalInstance.from_time_lists([[0, 1, 2]])
        assert not contiguous.is_unit_interval()

    def test_allowed_map(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2]])
        mapping = instance.allowed_map()
        assert mapping[1] == [0, 1]
        assert mapping[2] == [1]

    def test_max_intervals_per_job(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1, 5], [3]])
        assert instance.max_intervals_per_job() == 2


def test_jobs_from_pairs_names():
    jobs = jobs_from_pairs([(0, 1), (2, 3)])
    assert [j.name for j in jobs] == ["j0", "j1"]
