"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    MultiprocessorInstance,
    OneIntervalInstance,
    Schedule,
    gaps_of_busy_times,
    power_cost_of_busy_times,
    spans_of_busy_times,
)
from repro.core.schedule import gap_lengths_of_busy_times, staircase_normalize

# Keep hypothesis fast and deterministic enough for CI.
FAST = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

busy_times_strategy = st.lists(st.integers(min_value=0, max_value=60), min_size=0, max_size=25)


class TestBusyTimeInvariants:
    @FAST
    @given(busy_times_strategy)
    def test_spans_partition_busy_times(self, times):
        spans = spans_of_busy_times(times)
        covered = set()
        for lo, hi in spans:
            assert lo <= hi
            covered.update(range(lo, hi + 1))
        assert covered == set(times)

    @FAST
    @given(busy_times_strategy)
    def test_gaps_equal_spans_minus_one(self, times):
        spans = spans_of_busy_times(times)
        gaps = gaps_of_busy_times(times)
        if spans:
            assert gaps == len(spans) - 1
        else:
            assert gaps == 0

    @FAST
    @given(busy_times_strategy)
    def test_gap_lengths_are_positive_and_sum_to_idle_window(self, times):
        lengths = gap_lengths_of_busy_times(times)
        assert all(length >= 1 for length in lengths)
        unique = sorted(set(times))
        if unique:
            total_window = unique[-1] - unique[0] + 1
            assert sum(lengths) == total_window - len(unique)

    @FAST
    @given(busy_times_strategy, st.floats(min_value=0, max_value=20))
    def test_power_cost_bounds(self, times, alpha):
        cost = power_cost_of_busy_times(times, alpha)
        unique = sorted(set(times))
        if not unique:
            assert cost == 0
            return
        n = len(unique)
        gaps = gaps_of_busy_times(unique)
        # Lower bound: executions + first wake-up; upper bound: + alpha per gap.
        assert cost >= n + alpha - 1e-9
        assert cost <= n + alpha + gaps * alpha + 1e-9

    @FAST
    @given(busy_times_strategy, st.floats(min_value=0, max_value=10), st.floats(min_value=0, max_value=10))
    def test_power_cost_monotone_in_alpha(self, times, alpha_a, alpha_b):
        lo, hi = sorted([alpha_a, alpha_b])
        assert power_cost_of_busy_times(times, lo) <= power_cost_of_busy_times(times, hi) + 1e-9


class TestStaircaseInvariants:
    @FAST
    @given(
        st.dictionaries(
            keys=st.integers(min_value=0, max_value=15),
            values=st.tuples(
                st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=20)
            ),
            max_size=12,
        )
    )
    def test_staircase_preserves_times_and_forms_prefixes(self, assignment):
        # De-duplicate (processor, time) collisions to get a valid input.
        used = set()
        clean = {}
        for job, (proc, t) in assignment.items():
            if (proc, t) in used:
                continue
            used.add((proc, t))
            clean[job] = (proc, t)
        normalized = staircase_normalize(clean)
        assert set(normalized) == set(clean)
        # Times preserved per job.
        for job in clean:
            assert normalized[job][1] == clean[job][1]
        # Processors used at each time form the prefix 1..count.
        by_time = {}
        for job, (proc, t) in normalized.items():
            by_time.setdefault(t, []).append(proc)
        for procs in by_time.values():
            assert sorted(procs) == list(range(1, len(procs) + 1))


windows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=6)),
    min_size=1,
    max_size=6,
)


class TestSolverProperties:
    @FAST
    @given(windows_strategy, st.integers(min_value=1, max_value=3))
    def test_gap_dp_schedule_is_valid_and_matches_value(self, raw_windows, p):
        from repro import solve_multiprocessor_gap

        pairs = [(r, r + length) for r, length in raw_windows]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        solution = solve_multiprocessor_gap(instance)
        if solution.feasible:
            schedule = solution.require_schedule()
            schedule.validate()
            assert schedule.num_gaps() == solution.num_gaps
            assert schedule.used_processors() <= p

    @FAST
    @given(windows_strategy, st.floats(min_value=0, max_value=6))
    def test_power_dp_never_beats_trivial_lower_bound(self, raw_windows, alpha):
        from repro import solve_multiprocessor_power

        pairs = [(r, r + length) for r, length in raw_windows]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        solution = solve_multiprocessor_power(instance, alpha=alpha)
        if solution.feasible:
            n = instance.num_jobs
            assert solution.power >= n - 1e-9
            assert solution.power >= n + alpha - 1e-9  # at least one wake-up
            schedule = solution.require_schedule()
            assert abs(schedule.power_cost(alpha) - solution.power) < 1e-9

    @FAST
    @given(windows_strategy)
    def test_more_processors_never_hurt(self, raw_windows):
        from repro import solve_multiprocessor_gap

        pairs = [(r, r + length) for r, length in raw_windows]
        one = solve_multiprocessor_gap(
            MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        )
        two = solve_multiprocessor_gap(
            MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        )
        if one.feasible:
            assert two.feasible
            assert two.num_gaps <= one.num_gaps
