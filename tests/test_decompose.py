"""Tests for repro.core.decompose (split detection and Hall clipping).

The facade-level orchestration (component solves, merge, caching) is
covered by tests/test_api_decomposition.py; this file pins the pure
structure: seam detection thresholds per objective, Hall-saturation
clipping to a fixpoint, infeasibility proofs, and the degenerate empty /
single-job shapes through both ``canonical_form`` and
``decompose_instance``.
"""

import pytest

from repro.core.canonical import canonical_form
from repro.core.decompose import (
    Component,
    Decomposition,
    clip_windows,
    decompose_instance,
)
from repro.core.jobs import Job, MultiprocessorInstance, OneIntervalInstance


def jobs_from_pairs(pairs):
    return [Job(release=r, deadline=d, name=f"j{i}") for i, (r, d) in enumerate(pairs)]


class TestSeamDetection:
    def test_two_clusters_split_on_idle_seam(self):
        jobs = jobs_from_pairs([(0, 2), (1, 3), (10, 12), (11, 13)])
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert decomp.is_split
        assert len(decomp.components) == 2
        assert decomp.seams == (6,)
        assert decomp.components[0].job_indices == (0, 1)
        assert decomp.components[1].job_indices == (2, 3)

    def test_touching_clusters_do_not_split(self):
        # Deadline 3 then release 4: seam length 0 < min_seam 1.
        jobs = jobs_from_pairs([(0, 3), (4, 7)])
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert not decomp.is_split

    def test_seam_exactly_min_seam_splits(self):
        # Deadline 3, release 5: exactly one window-free time (t=4).
        jobs = jobs_from_pairs([(0, 3), (5, 8)])
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert decomp.is_split
        assert decomp.seams == (1,)

    def test_power_seam_threshold_scales_with_alpha(self):
        # Seam of 2 splits for alpha <= 2 but not for alpha = 3: a bridge
        # of stretch 2 would cost min(2, 3) = 2 < alpha, cheaper than the
        # second wake-up the per-component sum charges.
        jobs = jobs_from_pairs([(0, 1), (4, 5)])
        assert decompose_instance(jobs, 1, min_seam=2.0).is_split
        assert not decompose_instance(jobs, 1, min_seam=3.0).is_split

    def test_narrow_seam_power_counterexample_values(self):
        # The reason the alpha threshold exists: two unit jobs at t=0 and
        # t=2 with alpha=5.  Per-component sum would charge 2 wake-ups
        # (2 * (1 + 5) = 12); the true optimum bridges the stretch-1 idle
        # for 2 busy + 5 wake + min(1, 5) = 8.
        from repro.api import Problem, solve

        instance = OneIntervalInstance(
            jobs=jobs_from_pairs([(0, 0), (2, 2)])
        )
        result = solve(Problem(objective="power", instance=instance, alpha=5.0))
        assert result.value == pytest.approx(8.0)

    def test_running_max_deadline_blocks_false_seams(self):
        # Job 0 spans the would-be seam; sorting by release alone must not
        # split [(0, 20)], [(5, 6)], [(12, 13)].
        jobs = jobs_from_pairs([(0, 20), (5, 6), (12, 13)])
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert not decomp.is_split

    def test_components_preserve_names_and_order(self):
        jobs = [
            Job(release=10, deadline=11, name="late"),
            Job(release=0, deadline=1, name="early"),
        ]
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert decomp.is_split
        assert decomp.components[0].jobs[0].name == "early"
        assert decomp.components[0].job_indices == (1,)
        assert decomp.components[1].jobs[0].name == "late"
        assert decomp.components[1].job_indices == (0,)

    def test_multiprocessor_seams_use_the_same_rule(self):
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 1), (6, 7), (6, 7)])
        decomp = decompose_instance(jobs, num_processors=3, min_seam=1.0)
        assert decomp.is_split
        assert [c.num_jobs for c in decomp.components] == [3, 2]

    def test_bad_parameters_rejected(self):
        jobs = jobs_from_pairs([(0, 1)])
        with pytest.raises(ValueError):
            decompose_instance(jobs, num_processors=0, min_seam=1.0)
        with pytest.raises(ValueError):
            decompose_instance(jobs, num_processors=1, min_seam=-0.5)


class TestHallClipping:
    def test_saturated_prefix_clips_overlapping_windows(self):
        # Jobs 0-1 exactly fill [0, 1] on one processor; job 2's release
        # clips from 0 to 2.
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 5)])
        windows, infeasible, clipped = clip_windows(jobs, num_processors=1)
        assert not infeasible
        assert windows[2] == (2, 5)
        assert clipped == 1

    def test_saturated_suffix_clips_deadlines(self):
        jobs = jobs_from_pairs([(4, 5), (4, 5), (0, 5)])
        windows, infeasible, clipped = clip_windows(jobs, num_processors=1)
        assert not infeasible
        assert windows[2] == (0, 3)
        assert clipped == 1

    def test_overloaded_window_proves_infeasibility(self):
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 1)])
        _windows, infeasible, _clipped = clip_windows(jobs, num_processors=1)
        assert infeasible
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert decomp.infeasible
        assert decomp.components == ()

    def test_clipping_cascades_across_deadline_levels(self):
        # [0, 1] x2 saturates, pushing jobs 2-3 to [2, 3]; that makes the
        # anchored prefix [0, 3] exactly full (4 jobs, 4 slots), which in
        # turn pushes job 4 past it — the cascade must propagate.
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 3), (0, 3), (0, 9)])
        windows, infeasible, clipped = clip_windows(jobs, num_processors=1)
        assert not infeasible
        assert windows[2] == (2, 3)
        assert windows[3] == (2, 3)
        assert windows[4] == (4, 9)
        assert clipped == 3

    def test_clipping_can_invert_a_window_to_infeasibility(self):
        # Jobs 0-1 saturate [0, 1] and jobs 3-4 saturate [2, 3]; job 2's
        # window [0, 3] clips empty from both sides.
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 3), (2, 3), (2, 3)])
        _windows, infeasible, _clipped = clip_windows(jobs, num_processors=1)
        assert infeasible

    def test_multiprocessor_capacity_respected(self):
        # Three unit-window jobs on two processors at [0, 1]: 3 < 2*2 = 4
        # slots, nothing saturates, nothing clips.
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 1), (0, 5)])
        windows, infeasible, clipped = clip_windows(jobs, num_processors=2)
        assert not infeasible
        assert clipped == 0
        assert windows[3] == (0, 5)

    def test_clipped_windows_feed_component_bounds(self):
        # After clipping, job 2 lives in [2, 5]; no seam opens (the clip
        # lands adjacent to the saturated prefix) but the component carries
        # the tightened window.
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 5)])
        decomp = decompose_instance(jobs, num_processors=1, min_seam=1.0)
        assert not decomp.is_split
        component = decomp.components[0]
        assert component.jobs[2].release == 2
        assert decomp.clipped_jobs == 1


class TestDegenerateShapes:
    def test_empty_instance_decomposes_to_nothing(self):
        decomp = decompose_instance([], num_processors=2, min_seam=1.0)
        assert decomp.components == ()
        assert decomp.seams == ()
        assert not decomp.infeasible
        assert not decomp.is_split

    def test_single_job_is_one_component(self):
        decomp = decompose_instance(
            jobs_from_pairs([(3, 7)]), num_processors=1, min_seam=1.0
        )
        assert not decomp.is_split
        assert len(decomp.components) == 1
        assert decomp.components[0].start == 3
        assert decomp.components[0].end == 7

    def test_empty_and_single_job_canonical_form_round_trip(self):
        # The satellite checklist: the degenerate shapes flow through both
        # canonicalization and decomposition without special-casing.
        empty = MultiprocessorInstance(jobs=[], num_processors=2)
        form = canonical_form(empty)
        assert form.job_windows == ()
        single = OneIntervalInstance(jobs=jobs_from_pairs([(2, 4)]))
        form = canonical_form(single)
        assert len(form.job_windows) == 1
        decomp = decompose_instance(single.jobs, 1, min_seam=1.0)
        assert len(decomp.components) == 1

    def test_component_structures_are_frozen(self):
        decomp = decompose_instance(
            jobs_from_pairs([(0, 1), (5, 6)]), num_processors=1, min_seam=1.0
        )
        with pytest.raises(AttributeError):
            decomp.components[0].start = 99  # type: ignore[misc]
        with pytest.raises(AttributeError):
            decomp.min_seam = 0.0  # type: ignore[misc]
        assert isinstance(decomp, Decomposition)
        assert isinstance(decomp.components[0], Component)
