"""Hypothesis property suites for the verification subsystem.

These complement the seeded fuzz driver with shrinking: when a property
fails, hypothesis minimizes the counterexample, which the fixed-seed fuzzer
cannot do.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    solve,
)
from repro.verify import (
    certify_result,
    independent_gap_count,
    independent_power_cost,
    run_differential,
    run_metamorphic,
)

SLOW_OK = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

window_pairs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=3)
    ),
    min_size=1,
    max_size=5,
)

busy_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=12)


class TestAccountingProperties:
    @given(busy_sets)
    def test_gap_count_matches_span_count(self, busy):
        from repro.core.schedule import spans_of_busy_times

        expected = max(0, len(spans_of_busy_times(busy)) - 1)
        assert independent_gap_count(busy) == expected

    @given(busy_sets, st.sampled_from([0.0, 0.5, 1.0, 3.0]))
    def test_power_cost_bounds(self, busy, alpha):
        cost = independent_power_cost(busy, alpha)
        if not busy:
            assert cost == 0.0
        else:
            n = len(busy)
            assert cost >= n + alpha - 1e-9  # work plus first wake-up
            assert cost <= n + alpha + (n - 1) * alpha + 1e-9  # sleep every gap

    @given(busy_sets, st.integers(min_value=1, max_value=50))
    def test_accounting_is_shift_invariant(self, busy, delta):
        shifted = {t + delta for t in busy}
        assert independent_gap_count(busy) == independent_gap_count(shifted)
        assert independent_power_cost(busy, 2.0) == independent_power_cost(shifted, 2.0)


class TestDifferentialProperties:
    @SLOW_OK
    @given(window_pairs, st.integers(min_value=1, max_value=2))
    def test_gaps_matrix_holds(self, raw_windows, p):
        pairs = [(r, r + length) for r, length in raw_windows]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        report = run_differential(Problem(objective="gaps", instance=instance))
        assert report.ok, report.issues

    @SLOW_OK
    @given(window_pairs, st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    def test_power_matrix_holds(self, raw_windows, alpha):
        pairs = [(r, r + length) for r, length in raw_windows]
        instance = OneIntervalInstance.from_pairs(pairs)
        report = run_differential(
            Problem(objective="power", instance=instance, alpha=alpha)
        )
        assert report.ok, report.issues

    @SLOW_OK
    @given(window_pairs)
    def test_every_result_certifies(self, raw_windows):
        pairs = [(r, r + length) for r, length in raw_windows]
        problem = Problem(
            objective="gaps", instance=OneIntervalInstance.from_pairs(pairs)
        )
        for solver in ("gap-dp", "greedy-gap", "online-edf"):
            result = solve(problem, solver=solver)
            cert = certify_result(problem, result)
            assert cert.ok, f"{solver}: {cert.issues}"


class TestMetamorphicProperties:
    @SLOW_OK
    @given(window_pairs, st.integers(min_value=0, max_value=2**31 - 1))
    def test_relations_hold_for_gaps(self, raw_windows, meta_seed):
        pairs = [(r, r + length) for r, length in raw_windows]
        problem = Problem(
            objective="gaps", instance=OneIntervalInstance.from_pairs(pairs)
        )
        assert run_metamorphic(problem, rng=random.Random(meta_seed)) == []

    @SLOW_OK
    @given(window_pairs, st.sampled_from([0.0, 1.0, 2.5]))
    def test_relations_hold_for_power(self, raw_windows, alpha):
        pairs = [(r, r + length) for r, length in raw_windows]
        problem = Problem(
            objective="power",
            instance=MultiprocessorInstance.from_pairs(pairs, num_processors=2),
            alpha=alpha,
        )
        assert run_metamorphic(problem, rng=random.Random(0)) == []
