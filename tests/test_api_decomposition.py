"""Tests for repro.api.decomposition (decomposed facade solves).

The decomposed path must be *invisible* except for speed: identical
values, schedules and serialized results to the monolithic DP, across
objectives, processor counts and execution backends, fresh or from
cache.  These tests pin that contract, plus the orchestration details —
per-component cache population, the infeasible-component short-circuit,
the synthesized ``decomposition`` metadata block, and the config gates.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    clear_solve_cache,
    configure_decomposition,
    configure_solve_cache,
    decomposition_config,
    decomposition_stats,
    reset_decomposition_stats,
    solve,
    solve_cache_bypass,
    solve_cache_stats,
    to_json,
)
from repro.api.decomposition import DEFAULT_MIN_JOBS
from repro.core.jobs import Job
from repro.generators import splittable_instance


@pytest.fixture(autouse=True)
def decomposition_sandbox():
    """Fresh cache + a permissive decomposition config, restored afterwards."""
    saved = decomposition_config()
    configure_solve_cache(256)
    clear_solve_cache()
    configure_decomposition(enabled=True, min_jobs=2, backend="serial", workers=None)
    reset_decomposition_stats()
    yield
    configure_decomposition(**saved)
    configure_solve_cache(256)
    clear_solve_cache()


def jobs_from_pairs(pairs):
    return [Job(release=r, deadline=d, name=f"j{i}") for i, (r, d) in enumerate(pairs)]


def gap_problem(num_jobs=18, num_processors=2, seed=0, **kwargs):
    instance = splittable_instance(
        num_jobs=num_jobs,
        num_clusters=3,
        cluster_horizon=8,
        seam=4,
        seed=seed,
        num_processors=num_processors,
        **kwargs,
    )
    return Problem(objective="gaps", instance=instance)


def monolithic(problem, solver):
    """The reference answer: bypass skips both the cache and decomposition."""
    with solve_cache_bypass():
        return solve(problem, solver=solver)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("num_processors", [None, 1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gap_values_match_monolithic(self, num_processors, seed):
        instance = splittable_instance(
            num_jobs=15,
            num_clusters=3,
            cluster_horizon=8,
            seam=4,
            seed=seed,
            num_processors=num_processors,
        )
        problem = Problem(objective="gaps", instance=instance)
        decomposed = solve(problem, solver="gap-dp")
        reference = monolithic(problem, "gap-dp")
        assert decomposed.status == reference.status
        assert decomposed.value == reference.value
        if decomposed.schedule is not None:
            decomposed.schedule.validate()

    @pytest.mark.parametrize("alpha", [0.5, 2.0, 3.0])
    @pytest.mark.parametrize("num_processors", [None, 2])
    def test_power_values_match_monolithic(self, alpha, num_processors):
        # The default seam (8) exceeds every alpha here, so decomposition
        # stays sound for the power objective.
        instance = splittable_instance(
            num_jobs=14,
            num_clusters=3,
            cluster_horizon=7,
            seed=5,
            num_processors=num_processors,
        )
        problem = Problem(objective="power", instance=instance, alpha=alpha)
        decomposed = solve(problem, solver="power-dp")
        reference = monolithic(problem, "power-dp")
        assert decomposed.status == reference.status
        assert decomposed.value == pytest.approx(reference.value)

    def test_decomposition_actually_ran(self):
        solve(gap_problem(), solver="gap-dp")
        stats = decomposition_stats()
        assert stats["attempts"] >= 1
        assert stats["decomposed"] >= 1
        assert stats["component_solves"] >= 2

    def test_seam_stretch_power_accounting_hand_case(self):
        # Two unit jobs 10 apart, alpha = 2: the monolithic optimum is
        # busy 2 + wake 2 + bridge min(9, 2) = 6, and the per-component
        # sum (1 + 2) + (1 + 2) = 6 matches exactly because the seam
        # bridge saturates at alpha and replaces the second wake-up.
        instance = OneIntervalInstance(jobs=jobs_from_pairs([(0, 0), (10, 10)]))
        problem = Problem(objective="power", instance=instance, alpha=2.0)
        result = solve(problem, solver="power-dp")
        assert result.value == pytest.approx(6.0)
        assert "decomposition" in result.extra["engine"]
        assert result.value == pytest.approx(monolithic(problem, "power-dp").value)

    @settings(max_examples=15, deadline=None)
    @given(
        num_jobs=st.integers(min_value=6, max_value=16),
        num_clusters=st.integers(min_value=2, max_value=4),
        cluster_horizon=st.integers(min_value=4, max_value=9),
        seam=st.integers(min_value=1, max_value=5),
        num_processors=st.sampled_from([None, 2, 3]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_splittable_instances_agree(
        self, num_jobs, num_clusters, cluster_horizon, seam, num_processors, seed
    ):
        instance = splittable_instance(
            num_jobs=num_jobs,
            num_clusters=num_clusters,
            cluster_horizon=cluster_horizon,
            seam=seam,
            seed=seed,
            num_processors=num_processors,
        )
        problem = Problem(objective="gaps", instance=instance)
        decomposed = solve(problem, solver="gap-dp")
        reference = monolithic(problem, "gap-dp")
        assert decomposed.status == reference.status
        assert decomposed.value == reference.value


class TestByteIdentity:
    def test_identical_across_backends(self):
        problem = gap_problem(num_jobs=12, num_processors=2, seed=3)
        serialized = {}
        for backend in ("serial", "thread", "process"):
            clear_solve_cache()
            configure_decomposition(backend=backend, workers=2)
            serialized[backend] = to_json(solve(problem, solver="gap-dp"))
        assert serialized["serial"] == serialized["thread"] == serialized["process"]

    def test_power_identical_across_backends(self):
        instance = splittable_instance(
            num_jobs=10, num_clusters=2, cluster_horizon=6, seed=7
        )
        problem = Problem(objective="power", instance=instance, alpha=2.0)
        serialized = {}
        for backend in ("serial", "thread"):
            clear_solve_cache()
            configure_decomposition(backend=backend)
            serialized[backend] = to_json(solve(problem, solver="power-dp"))
        assert serialized["serial"] == serialized["thread"]

    def test_cache_hit_replays_fresh_result_verbatim(self):
        problem = gap_problem(num_jobs=12, num_processors=2, seed=4)
        fresh = solve(problem, solver="gap-dp")
        hits_before = solve_cache_stats()["hits"]
        replay = solve(problem, solver="gap-dp")
        assert solve_cache_stats()["hits"] > hits_before
        assert to_json(fresh) == to_json(replay)
        assert "decomposition" in replay.extra["engine"]


class TestComponentCaching:
    def test_components_populate_the_cache_independently(self):
        # Two time-shifted copies of the same cluster: canonicalization is
        # shift-invariant, so the second component must hit the entry the
        # first one stored.
        pairs = [(0, 2), (1, 3), (2, 4)]
        shifted = [(r + 10, d + 10) for r, d in pairs]
        instance = OneIntervalInstance(jobs=jobs_from_pairs(pairs + shifted))
        problem = Problem(objective="gaps", instance=instance)
        solve(problem, solver="gap-dp")
        assert solve_cache_stats()["hits"] >= 1

    def test_standalone_component_solve_hits_the_warm_cache(self):
        pairs = [(0, 2), (1, 3), (2, 4)]
        shifted = [(r + 10, d + 10) for r, d in pairs]
        full = OneIntervalInstance(jobs=jobs_from_pairs(pairs + shifted))
        solve(Problem(objective="gaps", instance=full), solver="gap-dp")
        hits_before = solve_cache_stats()["hits"]
        alone = OneIntervalInstance(jobs=jobs_from_pairs(pairs))
        result = solve(Problem(objective="gaps", instance=alone), solver="gap-dp")
        assert solve_cache_stats()["hits"] > hits_before
        assert result.status == "optimal"


class TestInfeasibility:
    def test_hall_infeasible_short_circuits_without_solving(self):
        # Anchored Hall counting proves this infeasible outright; no
        # component DP may run.
        jobs = jobs_from_pairs([(0, 1), (0, 1), (0, 1), (10, 11), (10, 11)])
        problem = Problem(
            objective="gaps",
            instance=OneIntervalInstance(jobs=jobs),
        )
        result = solve(problem, solver="gap-dp")
        assert result.status == "infeasible"
        stats = decomposition_stats()
        assert stats["infeasible_short_circuits"] == 1
        assert stats["component_solves"] == 0
        assert result.status == monolithic(problem, "gap-dp").status

    def test_interior_overloaded_component_stops_remaining_solves(self):
        # Five jobs crammed into the 4 slots of [10, 11] x p=2 escape the
        # *anchored* prefix/suffix Hall counts (the surrounding slack
        # absorbs them), so the infeasibility only surfaces when the middle
        # component's DP runs — and then the third cluster must never be
        # solved (serial backend, in-flight window of one).
        jobs = jobs_from_pairs(
            [(0, 1), (0, 1)]
            + [(10, 11)] * 5
            + [(20, 21), (20, 21)]
        )
        instance = MultiprocessorInstance(jobs=jobs, num_processors=2)
        problem = Problem(objective="gaps", instance=instance)
        result = solve(problem, solver="gap-dp")
        assert result.status == "infeasible"
        stats = decomposition_stats()
        # Frontier order is component-major with u descending: cluster 0
        # solves at u=2 and u=1, then cluster 1 at u=2 proves infeasible.
        assert stats["component_solves"] == 3
        assert result.status == monolithic(problem, "gap-dp").status


class TestMetadataAndConfig:
    def test_decomposition_block_describes_the_split(self):
        result = solve(gap_problem(num_jobs=12, num_processors=2, seed=9), solver="gap-dp")
        block = result.extra["engine"]["decomposition"]
        assert block["components"] == 3
        assert len(block["seams"]) == 2
        assert all(seam >= block["min_seam"] for seam in block["seams"])
        assert len(block["per_component"]) == 3
        assert len(block["processors"]) == 3
        for per in block["per_component"]:
            assert per["jobs"] >= 1
            assert per["start"] <= per["end"]
        # Engine stats keep their aggregate integer shape.
        assert all(
            isinstance(v, int) for v in result.extra["engine"]["stats"].values()
        )

    def test_disabled_configuration_runs_the_monolith(self):
        configure_decomposition(enabled=False)
        result = solve(gap_problem(), solver="gap-dp")
        assert "decomposition" not in result.extra["engine"]
        assert decomposition_stats()["attempts"] == 0

    def test_min_jobs_threshold_gates_decomposition(self):
        configure_decomposition(min_jobs=1000)
        result = solve(gap_problem(), solver="gap-dp")
        assert "decomposition" not in result.extra["engine"]

    def test_config_snapshot_round_trips(self):
        snapshot = configure_decomposition(min_jobs=7, backend="thread", workers=3)
        configure_decomposition(min_jobs=99, backend=None, workers=None)
        restored = configure_decomposition(**snapshot)
        assert restored["min_jobs"] == 7
        assert restored["backend"] == "thread"
        assert restored["workers"] == 3

    def test_default_min_jobs_protects_small_instances(self):
        assert DEFAULT_MIN_JOBS >= 8
