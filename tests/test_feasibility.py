"""Unit tests for matching-based feasibility and the baseline schedulers."""

import pytest

from repro import (
    InfeasibleInstanceError,
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
    complete_partial_schedule,
    edf_schedule,
    feasible_schedule,
    feasible_schedule_multiproc,
    is_feasible,
    is_feasible_multiproc,
)


class TestFeasibility:
    def test_feasible_one_interval(self):
        instance = OneIntervalInstance.from_pairs([(0, 2), (0, 2), (0, 2)])
        assert is_feasible(instance)

    def test_infeasible_one_interval(self):
        instance = OneIntervalInstance.from_pairs([(0, 1), (0, 1), (0, 1)])
        assert not is_feasible(instance)

    def test_empty_instance_is_feasible(self):
        assert is_feasible(OneIntervalInstance(jobs=[]))
        assert is_feasible_multiproc(
            MultiprocessorInstance(jobs=[], num_processors=2)
        )

    def test_multiprocessor_capacity_matters(self):
        pairs = [(0, 0), (0, 0)]
        assert not is_feasible_multiproc(
            MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        )
        assert is_feasible_multiproc(
            MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        )

    def test_multi_interval_feasibility(self):
        feasible = MultiIntervalInstance.from_time_lists([[0, 5], [5]])
        infeasible = MultiIntervalInstance.from_time_lists([[5], [5]])
        assert is_feasible(feasible)
        assert not is_feasible(infeasible)


class TestFeasibleSchedule:
    def test_returns_valid_schedule(self):
        instance = OneIntervalInstance.from_pairs([(0, 3), (1, 2), (2, 4)])
        schedule = feasible_schedule(instance)
        schedule.validate()
        assert schedule.is_complete()

    def test_raises_with_hall_certificate(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        with pytest.raises(InfeasibleInstanceError) as err:
            feasible_schedule(instance)
        assert "window" in str(err.value)

    def test_multiprocessor_schedule(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 0), (0, 0), (1, 1)], num_processors=2
        )
        schedule = feasible_schedule_multiproc(instance)
        schedule.validate()

    def test_multiprocessor_infeasible(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 0), (0, 0), (0, 0)], num_processors=2
        )
        with pytest.raises(InfeasibleInstanceError):
            feasible_schedule_multiproc(instance)


class TestEDF:
    def test_edf_schedules_in_deadline_order(self):
        instance = OneIntervalInstance.from_pairs([(0, 5), (0, 1), (0, 3)])
        schedule = edf_schedule(instance)
        schedule.validate()
        assert schedule.assignment[1] == 0  # tightest deadline first

    def test_edf_work_conserving_runs_immediately(self):
        instance = OneIntervalInstance.from_pairs([(0, 10), (5, 6)])
        schedule = edf_schedule(instance)
        assert schedule.assignment[0] == 0

    def test_edf_detects_infeasibility(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        with pytest.raises(InfeasibleInstanceError):
            edf_schedule(instance)

    def test_edf_empty_instance(self):
        schedule = edf_schedule(OneIntervalInstance(jobs=[]))
        assert schedule.num_scheduled == 0

    def test_edf_skips_idle_periods(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (10, 10)])
        schedule = edf_schedule(instance)
        assert schedule.assignment == {0: 0, 1: 10}


class TestCompletePartialSchedule:
    def test_lemma3_extension_bounds_extra_gaps(self):
        instance = MultiIntervalInstance.from_time_lists(
            [[0, 1], [1, 2], [2, 3], [10, 11]]
        )
        partial = {0: 0, 1: 1}
        complete = complete_partial_schedule(instance, partial)
        complete.validate()
        # Lemma 3: at most (n - n') new gaps beyond those of the partial schedule.
        partial_gaps = 0
        assert complete.num_gaps() <= partial_gaps + (4 - 2)

    def test_extension_preserves_existing_assignments_when_possible(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 5], [5, 9]])
        complete = complete_partial_schedule(instance, {0: 0})
        assert complete.assignment[0] in (0, 5)
        assert complete.is_complete()

    def test_raises_when_unextendable(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [0]])
        with pytest.raises(InfeasibleInstanceError):
            complete_partial_schedule(instance, {})
