"""Tests for the ``repro.runtime`` execution layer.

Covers the backend registry and selection chain, the generic ``run_tasks``
primitive, the ``solve_stream`` pipeline (ordering, laziness, in-flight
dedupe, error capture), the two-tier canonical solve cache (thread-safe
accounting, disk replay, version invalidation), and the cross-backend
equivalence acceptance suite.
"""

import copy
import itertools
import json
import os

import pytest

from repro.api import Problem, SolveResult, from_json, solve, solve_batch, to_json
from repro.api.solvers import seed_solve_cache, solve_cache_stats
from repro.api import clear_solve_cache, configure_solve_cache
from repro.core.exceptions import SolverError
from repro.generators import (
    random_multi_interval_instance,
    random_multiprocessor_instance,
    random_one_interval_instance,
)
from repro.runtime import (
    Backend,
    DiskSolveCache,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    configure_backend,
    configure_disk_cache,
    default_backend_name,
    disk_cache_dir,
    get_disk_cache,
    register_backend,
    resolve_backend,
    run_tasks,
    solve_stream,
)
from repro.runtime.diskcache import cache_key_digest


@pytest.fixture(autouse=True)
def clean_runtime_state(monkeypatch):
    """Isolate every test from configured backends, env vars and caches."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    configure_backend(None)
    configure_disk_cache(None)
    configure_solve_cache(256)
    clear_solve_cache()
    yield
    configure_backend(None)
    configure_disk_cache(None)
    configure_solve_cache(256)
    clear_solve_cache()


def shifted_problem(shift, seed=7, objective="gaps", alpha=None):
    """A gap/power problem whose instance is the seed instance time-shifted.

    All shifts of one seed are canonically identical (isomorphic), so they
    share a canonical digest and an optimal value.
    """
    base = random_one_interval_instance(num_jobs=5, horizon=14, max_window=4, seed=seed)
    from repro.api import OneIntervalInstance

    instance = OneIntervalInstance.from_pairs(
        [(job.release + shift, job.deadline + shift) for job in base.jobs]
    )
    return Problem(objective=objective, instance=instance, alpha=alpha)


def mixed_workload(count=18):
    """Seeded mixed gap/power/throughput workload over all instance shapes."""
    problems = []
    for seed in range(count):
        kind = seed % 3
        if kind == 0:
            instance = random_one_interval_instance(
                num_jobs=5, horizon=15, max_window=4, seed=seed
            )
            problems.append(Problem(objective="gaps", instance=instance))
        elif kind == 1:
            instance = random_multiprocessor_instance(
                num_jobs=5, num_processors=2, horizon=10, max_window=4, seed=seed
            )
            problems.append(
                Problem(objective="power", instance=instance, alpha=1.0 + seed % 3)
            )
        else:
            instance = random_multi_interval_instance(
                num_jobs=4, horizon=12, intervals_per_job=2, interval_length=2, seed=seed
            )
            problems.append(
                Problem(objective="throughput", instance=instance, max_gaps=1 + seed % 2)
            )
    return problems


# ---------------------------------------------------------------------------
# backends: registry and selection chain
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_legacy_workers_rule(self):
        assert isinstance(resolve_backend(None, workers=None), SerialBackend)
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)
        assert isinstance(resolve_backend(None, workers=4), ProcessBackend)

    def test_configured_default_beats_workers_rule(self):
        configure_backend("thread")
        assert default_backend_name() == "thread"
        assert isinstance(resolve_backend(None, workers=4), ThreadBackend)

    def test_env_var_beats_workers_rule(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert default_backend_name() == "thread"
        assert isinstance(resolve_backend(None, workers=4), ThreadBackend)

    def test_configure_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        configure_backend("serial")
        assert default_backend_name() == "serial"

    def test_unknown_names_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            configure_backend("quantum")
        with pytest.raises(ValueError):
            resolve_backend("quantum")
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(ValueError):
            default_backend_name()

    def test_register_backend_validation(self):
        with pytest.raises(ValueError):
            register_backend("serial", SerialBackend)
        with pytest.raises(TypeError):
            register_backend("not-a-backend", object)

    def test_explicit_argument_beats_configured_default(self):
        configure_backend("process")
        assert isinstance(resolve_backend("serial"), SerialBackend)


class TestThreadBackendSizing:
    """Regression: effective_workers must equal the real pool size.

    ThreadBackend used to inherit the base class's raw ``cpu_count``
    while ``ThreadPoolExecutor`` defaulted to ``min(32, cpu_count + 4)``,
    so the stream layer sized its in-flight window from a parallelism the
    pool did not have.
    """

    def test_default_matches_executor_default_formula(self):
        assert ThreadBackend().effective_workers == min(
            32, (os.cpu_count() or 1) + 4
        )

    def test_explicit_workers_override(self):
        assert ThreadBackend(workers=3).effective_workers == 3

    def test_session_pool_sized_from_effective_workers(self):
        for backend in (ThreadBackend(), ThreadBackend(workers=2)):
            session = backend.session(lambda x: x)
            try:
                assert (
                    session._executor._max_workers == backend.effective_workers
                )
            finally:
                session.close()


# ---------------------------------------------------------------------------
# run_tasks: the generic primitive
# ---------------------------------------------------------------------------
def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


class TestRunTasks:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_ordered_results_all_backends(self, backend):
        items = list(range(12))
        out = list(run_tasks(_square, items, backend=backend, workers=3))
        assert [index for index, _ in out] == items
        assert [o.value for _, o in out] == [x * x for x in items]
        assert all(o.ok for _, o in out)

    def test_unordered_covers_all_indices(self):
        out = list(
            run_tasks(_square, range(10), backend="thread", workers=4, ordered=False)
        )
        assert sorted(index for index, _ in out) == list(range(10))
        assert all(o.value == i * i for i, o in out)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_per_task_error_capture(self, backend):
        out = list(run_tasks(_fail_on_odd, range(6), backend=backend, workers=2))
        for index, outcome in out:
            if index % 2:
                assert not outcome.ok
                assert outcome.error_type == "ValueError"
                assert f"odd input {index}" in outcome.error
                assert "Traceback" in outcome.traceback
                with pytest.raises(RuntimeError):
                    outcome.unwrap()
            else:
                assert outcome.ok and outcome.unwrap() == index

    def test_lazy_bounded_consumption(self):
        consumed = []

        def producer():
            for i in itertools.count():
                consumed.append(i)
                yield i

        stream = run_tasks(_square, producer(), backend="serial", window=4)
        for _ in range(3):
            next(stream)
        # A bounded window must not have drained an unbounded input.
        assert len(consumed) <= 4 + 3
        stream.close()

    def test_chunksize_roundtrip(self):
        items = list(range(23))
        out = list(
            run_tasks(_square, items, backend="process", workers=2, chunksize=5)
        )
        assert [o.value for _, o in out] == [x * x for x in items]

    def test_empty_input(self):
        assert list(run_tasks(_square, [], backend="thread")) == []

    def test_window_validation(self):
        with pytest.raises(ValueError):
            list(run_tasks(_square, [1], window=0))


# ---------------------------------------------------------------------------
# solve_stream: the pipeline
# ---------------------------------------------------------------------------
class TestSolveStream:
    def test_ordered_stream_matches_individual_solves(self):
        problems = mixed_workload(9)
        results = list(solve_stream(problems, backend="serial"))
        assert results == [solve(p) for p in problems]

    def test_unordered_with_index_reassembles(self):
        problems = mixed_workload(12)
        pairs = list(
            solve_stream(
                problems, backend="thread", workers=4, ordered=False, with_index=True
            )
        )
        assert sorted(index for index, _ in pairs) == list(range(12))
        by_index = dict(pairs)
        expected = [solve(p) for p in problems]
        assert [by_index[i] for i in range(12)] == expected

    def test_stream_is_lazy(self):
        consumed = []

        def producer():
            for seed in itertools.count():
                consumed.append(seed)
                yield shifted_problem(0, seed=seed % 5)

        stream = solve_stream(producer(), backend="serial", window=4)
        for _ in range(3):
            next(stream)
        assert len(consumed) <= 4 + 3
        stream.close()

    def test_exact_duplicates_solved_once(self):
        clear_solve_cache()
        problems = [shifted_problem(0)] * 6
        results = list(solve_stream(problems, backend="serial"))
        assert len(results) == 6
        assert len({id(r) for r in results}) == 6  # independent objects
        assert results[0] == results[5]
        # One DP run for six tasks: dedupe, not the cache, absorbed 5.
        stats = solve_cache_stats()
        assert stats["fresh_solves"] == 1
        assert stats["misses"] == 1 and stats["hits"] == 0

    def test_isomorphic_duplicates_replay_remapped(self):
        clear_solve_cache()
        problems = [shifted_problem(shift) for shift in (0, 3, 11, 7)]
        results = list(solve_stream(problems, backend="serial"))
        stats = solve_cache_stats()
        assert stats["fresh_solves"] == 1
        # Every shifted result witnesses its own instance with the same value.
        values = {r.value for r in results}
        assert len(values) == 1
        for problem, result in zip(problems, results):
            assert result.require_schedule().instance == problem.instance
            # Replays carry the representative's engine metadata verbatim.
            assert result.extra["engine"] == results[0].extra["engine"]

    def test_dedupe_false_solves_each(self):
        clear_solve_cache()
        problems = [shifted_problem(0)] * 4
        list(solve_stream(problems, backend="serial", dedupe=False))
        stats = solve_cache_stats()
        # No stream dedupe: first solve is fresh, the rest hit the cache.
        assert stats["fresh_solves"] == 1 and stats["hits"] == 3

    def test_dedupe_with_cache_disabled_still_collapses_exact(self):
        configure_solve_cache(0)
        clear_solve_cache()
        problems = [shifted_problem(0)] * 5
        results = list(solve_stream(problems, backend="serial"))
        assert results[0] == results[4]
        # Stream dedupe still collapsed the five exact duplicates onto one
        # DP run even though the cache tiers were off.
        assert solve_cache_stats()["fresh_solves"] == 1
        assert solve_cache_stats()["hits"] == 0

    def test_on_error_validation(self):
        with pytest.raises(ValueError):
            list(solve_stream([], on_error="explode"))

    def test_error_result_round_trips_json(self):
        result = solve_batch([shifted_problem(0)], solver="no-such-solver")[0]
        assert result.status == "error"
        clone = from_json(to_json(result))
        assert clone == result
        assert clone.extra["error_type"] == "SolverError"

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_mixed_failures_keep_positions(self, backend):
        # Alternate solvable gap problems with throughput problems that the
        # forced solver cannot handle: failures land exactly at their input
        # positions on every backend.
        problems = mixed_workload(9)
        results = list(
            solve_stream(problems, solver="gap-dp", backend=backend, workers=2)
        )
        for problem, result in zip(problems, results):
            if problem.objective == "gaps":
                assert result.solver == "gap-dp"
            else:
                assert result.status == "error"


# ---------------------------------------------------------------------------
# the disk tier
# ---------------------------------------------------------------------------
class TestDiskSolveCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), (1, (0, 2), (((0, 1), 2),)))
        entry = (True, 3, ((0, 1), (1, 4)), {"name": "interval-dp", "stats": {"m": 1}})
        cache.put(key, entry)
        assert cache.get(key) == entry
        assert cache.counters() == {"hits": 1, "misses": 0, "writes": 1}

    def test_miss_on_absent_and_corrupt(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), (1,))
        assert cache.get(key) is None
        path = cache._entry_path(cache_key_digest(key))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert cache.get(key) is None
        assert cache.counters()["misses"] == 2

    def test_key_mismatch_treated_as_miss(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), (1, (2,)))
        cache.put(key, (True, 0, (), None))
        path = cache._entry_path(cache_key_digest(key))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["key"] = "something else"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        assert cache.get(key) is None

    def test_engine_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), (1,))
        cache.put(key, (True, 2, (), None))
        assert cache.stats()["entries"] == 1
        # A new engine version addresses a fresh namespace: the old entry
        # is invisible (stale), not replayed.
        monkeypatch.setattr(
            "repro.runtime.diskcache.ENGINE_VERSION", "99.0", raising=True
        )
        bumped = DiskSolveCache(str(tmp_path))
        assert bumped.get(key) is None
        stats = bumped.stats()
        assert stats["entries"] == 0 and stats["stale_entries"] == 1

    def test_clear_removes_all_versions(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        cache.put((("gaps",), (1,)), (True, 0, (), None))
        cache.put((("power", 2.0), (1,)), (False, None, None, None))
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_configure_handle_semantics(self, tmp_path):
        first = configure_disk_cache(str(tmp_path))
        again = configure_disk_cache(str(tmp_path))
        assert first is again  # same directory keeps the live handle
        other = configure_disk_cache(str(tmp_path / "other"))
        assert other is not first
        configure_disk_cache(None)
        assert get_disk_cache() is None and disk_cache_dir() is None

    def test_env_var_enables_lazily(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # The autouse fixture configured the cache off explicitly, which
        # outranks the env var; reset to the unconfigured state first.
        import repro.runtime.diskcache as diskcache

        monkeypatch.setattr(diskcache, "_DISK", None)
        monkeypatch.setattr(diskcache, "_EXPLICIT", False)
        cache = get_disk_cache()
        assert cache is not None and cache.root == str(tmp_path)


# ---------------------------------------------------------------------------
# the two tiers together
# ---------------------------------------------------------------------------
class TestTwoTierCache:
    def test_disk_hit_replays_byte_identically(self, tmp_path):
        configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        problems = [
            shifted_problem(0),
            shifted_problem(0, objective="power", alpha=2.0),
        ]
        first = [to_json(solve(p)) for p in problems]
        assert solve_cache_stats()["disk"]["writes"] == 2
        # Drop the memory tier (simulating a new process) and re-solve.
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        second = [to_json(solve(p)) for p in problems]
        stats = solve_cache_stats()
        assert second == first
        assert stats["fresh_solves"] == 0
        assert stats["disk"]["hits"] == 2

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        problem = shifted_problem(0)
        solve(problem)
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        solve(problem)  # memory miss -> disk hit -> promotion
        solve(problem)  # memory hit, no further disk traffic
        stats = solve_cache_stats()
        assert stats["hits"] == 1 and stats["disk"]["hits"] == 1

    def test_disk_only_mode_works(self, tmp_path):
        configure_disk_cache(str(tmp_path))
        configure_solve_cache(0)  # memory tier off, disk tier on
        clear_solve_cache()
        problem = shifted_problem(0)
        first = to_json(solve(problem))
        second = to_json(solve(problem))
        assert first == second
        stats = solve_cache_stats()
        assert stats["fresh_solves"] == 1
        assert stats["disk"]["hits"] == 1 and stats["disk"]["writes"] == 1

    def test_seed_solve_cache_eligibility(self, tmp_path):
        problem = shifted_problem(0)
        result = solve(problem)
        clear_solve_cache()
        from repro.api.solvers import _SOLVE_CACHE

        _SOLVE_CACHE.clear()
        assert seed_solve_cache(problem, result) is True
        replay = solve(problem)
        assert to_json(replay) == to_json(result)
        assert solve_cache_stats()["fresh_solves"] == 0
        # Non-exact results are not eligible.
        greedy = solve(problem, solver="greedy-gap")
        assert seed_solve_cache(problem, greedy) is False
        # Throughput problems have no canonical objective key.
        tp = mixed_workload(3)[2]
        assert seed_solve_cache(tp, solve(tp)) is False


# ---------------------------------------------------------------------------
# satellite: robustness against on-disk entry corruption
# ---------------------------------------------------------------------------
class TestDiskCacheCorruption:
    """A corrupted or truncated entry must read as a miss, never a crash."""

    def _entry_path(self, cache, problem):
        # There is exactly one entry after a single fresh solve; find it on
        # disk rather than re-deriving the canonical key by hand.
        paths = list(cache._walk_entries())
        assert len(paths) == 1
        return paths[0]

    @pytest.mark.parametrize(
        "payload",
        [
            "",  # truncated to nothing
            '{"format": 1',  # torn mid-write
            '"just a string"',  # valid JSON, not an entry object
            json.dumps(
                {
                    "format": 1,
                    "engine_version": "",  # wrong engine tag
                    "key": "x",
                    "feasible": True,
                    "value": 0,
                    "assignment": [],
                    "engine_meta": None,
                }
            ),
        ],
        ids=["empty", "torn", "non-object", "version-mismatch"],
    )
    def test_corrupt_entry_is_a_miss_and_resolves_fresh(self, tmp_path, payload):
        cache = configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        problem = shifted_problem(0)
        first = to_json(solve(problem))
        path = self._entry_path(cache, problem)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        # New process simulation: drop the memory tier so the disk entry
        # is the only warm copy left.
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        cache.reset_counters()
        second = to_json(solve(problem))
        assert second == first
        counters = cache.counters()
        assert counters["hits"] == 0
        assert counters["misses"] == 1
        assert counters["writes"] == 1  # the fresh result overwrote the entry
        # The overwrite healed the entry: the next cold read is a hit.
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        assert to_json(solve(problem)) == first
        assert cache.counters()["hits"] == 1

    def test_malformed_entry_body_is_a_miss(self, tmp_path):
        # Valid JSON, right format/version/key envelope — but the stored
        # assignment is garbage.  json.load succeeds; decoding must not.
        cache = configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        problem = shifted_problem(0)
        first = to_json(solve(problem))
        path = self._entry_path(cache, problem)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["assignment"] = [["not-a-slot", {}]]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        cache.reset_counters()
        assert to_json(solve(problem)) == first
        assert cache.counters() == {"hits": 0, "misses": 1, "writes": 1}

    def test_missing_entry_field_is_a_miss(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), (1, (0, 2)))
        cache.put(key, (True, 1, ((0, 1),), None))
        path = cache._entry_path(cache_key_digest(key))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        del data["feasible"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        assert cache.get(key) is None
        assert cache.counters()["misses"] == 1

    def test_stream_survives_corrupted_entries(self, tmp_path):
        cache = configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        problems = [shifted_problem(0), shifted_problem(0, seed=11)]
        first = [to_json(solve(p)) for p in problems]
        for path in list(cache._walk_entries()):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"format": 1, "engine_')
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        results = list(solve_stream(problems))
        assert [to_json(r) for r in results] == first


# ---------------------------------------------------------------------------
# satellite: cache accounting under concurrency
# ---------------------------------------------------------------------------
class TestConcurrentAccounting:
    def test_thread_backend_hit_miss_counts_exact(self):
        clear_solve_cache()
        shifts = (0, 2, 5, 9, 13, 21)
        problems = [shifted_problem(shift) for shift in shifts]
        results = list(solve_stream(problems, backend="thread", workers=4))
        stats = solve_cache_stats()
        # The canonical dedupe parks the five isomorphic duplicates behind
        # one in-flight representative: exactly one miss-then-fresh-solve,
        # then exactly one cache replay per duplicate — even with four
        # worker threads racing.
        assert stats["fresh_solves"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == len(shifts) - 1
        assert len({r.value for r in results}) == 1

    def test_thread_backend_no_dedupe_counts_exact(self):
        clear_solve_cache()
        # Distinct seeds: no two problems share a canonical key, so every
        # solve is a miss and the counters must sum exactly.
        problems = [shifted_problem(0, seed=seed) for seed in range(8)]
        list(solve_stream(problems, backend="thread", workers=4, dedupe=False))
        stats = solve_cache_stats()
        assert stats["hits"] + stats["misses"] == 8
        assert stats["fresh_solves"] == stats["misses"]

    def test_disk_replay_byte_identical_across_processes(self, tmp_path):
        configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        problems = [shifted_problem(0, seed=seed) for seed in range(4)]
        baseline = [to_json(solve(p)) for p in problems]  # warms the disk tier
        assert solve_cache_stats()["disk"]["writes"] == 4
        # Fresh pool workers have cold memory tiers; the payload-carried
        # cache directory points them at the warm disk tier, and their
        # replayed engine metadata must serialize byte-identically here.
        results = solve_batch(problems, workers=2, backend="process", dedupe=False)
        assert [to_json(r) for r in results] == baseline
        for result in results:
            assert result.extra["engine"]["stats"]  # metadata rode along


# ---------------------------------------------------------------------------
# acceptance: cross-backend equivalence
# ---------------------------------------------------------------------------
class TestCrossBackendEquivalence:
    def test_identical_ordered_results_and_warm_cache_zero_dp(self, tmp_path):
        problems = mixed_workload(18)

        serialized = {}
        for backend in ("serial", "thread", "process"):
            clear_solve_cache()
            results = list(
                solve_stream(problems, backend=backend, workers=3, chunksize=2)
            )
            assert [r.status for r in results] == [
                "optimal" if p.objective in ("gaps", "power") else "approximate"
                for p in problems
            ]
            serialized[backend] = [to_json(r) for r in results]
        assert serialized["serial"] == serialized["thread"] == serialized["process"]

        # Warm-disk pass: populate the disk tier once, drop every in-memory
        # entry, then re-run the whole set — zero DP evaluations, and the
        # JSON output is byte-identical to the cold run.
        configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        cold = [to_json(r) for r in solve_stream(problems, backend="serial")]
        assert cold == serialized["serial"]
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        warm = [to_json(r) for r in solve_stream(problems, backend="serial")]
        stats = solve_cache_stats()
        assert warm == cold
        assert stats["fresh_solves"] == 0  # every DP answer came from disk
        assert stats["disk"]["hits"] > 0

    def test_solve_batch_backend_parameter(self):
        problems = mixed_workload(6)
        assert solve_batch(problems, backend="thread", workers=2) == solve_batch(
            problems
        )


class TestCustomBackend:
    def test_registered_backend_usable_by_name(self):
        class CountingBackend(SerialBackend):
            name = "counting-test"
            sessions = 0

            def session(self, fn, chunksize=1):
                type(self).sessions += 1
                return super().session(fn, chunksize)

        try:
            register_backend("counting-test", CountingBackend)
            results = solve_batch(mixed_workload(3), backend="counting-test")
            assert len(results) == 3
            assert CountingBackend.sessions == 1
        finally:
            import repro.runtime.backends as backends

            backends._BACKENDS.pop("counting-test", None)


class TestErrorEnvelope:
    def test_error_result_invariants(self):
        with pytest.raises(ValueError):
            SolveResult(status="error", objective="gaps", value=3, schedule=None)
        result = SolveResult(status="error", objective="gaps", value=None, schedule=None)
        assert not result.feasible
        with pytest.raises(SolverError):
            result.raise_for_status()

    def test_copyable_and_comparable(self):
        result = solve_batch([shifted_problem(0)], solver="no-such-solver")[0]
        clone = copy.deepcopy(result)
        assert clone == result


class TestErrorDedupeRetry:
    """A failed representative must not speak for its duplicates."""

    def test_transient_failure_retries_duplicates(self):
        from repro.api.registry import _REGISTRY, register_solver
        from repro.api import OneIntervalInstance

        attempts = {"count": 0}

        @register_solver(
            "flaky-test",
            objective="gaps",
            kind="baseline",
            instance_types=(OneIntervalInstance,),
        )
        def _flaky(problem):
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("transient failure")
            return solve(problem, solver="gap-dp")

        try:
            problems = [shifted_problem(0)] * 3
            results = list(
                solve_stream(problems, solver="flaky-test", backend="serial")
            )
            # The representative failed once; both duplicates were retried
            # (the first was promoted to representative, the second then
            # collapsed onto it), so exactly one error escapes.
            assert [r.status for r in results] == ["error", "optimal", "optimal"]
            assert attempts["count"] == 2
        finally:
            _REGISTRY.pop("flaky-test", None)

    def test_error_not_remembered_for_later_duplicates(self):
        from repro.api.registry import _REGISTRY, register_solver
        from repro.api import OneIntervalInstance

        attempts = {"count": 0}

        @register_solver(
            "flaky-later-test",
            objective="gaps",
            kind="baseline",
            instance_types=(OneIntervalInstance,),
        )
        def _flaky(problem):
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("transient failure")
            return solve(problem, solver="gap-dp")

        try:
            # window=4 forces the later duplicates to arrive after the
            # failed representative already completed: they must re-solve,
            # not replay the stale error from the dedupe LRU.
            problems = [shifted_problem(0)] * 2

            def trickle():
                yield problems[0]
                yield problems[1]

            results = list(
                solve_stream(
                    trickle(), solver="flaky-later-test", backend="serial", window=1
                )
            )
            assert [r.status for r in results] == ["error", "optimal"]
            assert attempts["count"] == 2
        finally:
            _REGISTRY.pop("flaky-later-test", None)


class TestCacheContains:
    def test_contains_tracks_both_tiers(self, tmp_path):
        from repro.api.solvers import _SOLVE_CACHE, solve_cache_contains

        problem = shifted_problem(0)
        assert solve_cache_contains(problem) is False
        solve(problem)
        assert solve_cache_contains(problem) is True
        # Evicted from memory, no disk tier: no longer cheaply replayable.
        _SOLVE_CACHE.clear()
        assert solve_cache_contains(problem) is False
        # With a disk tier the entry survives memory eviction.
        configure_disk_cache(str(tmp_path))
        clear_solve_cache()
        solve(problem)
        _SOLVE_CACHE.clear()
        assert solve_cache_contains(problem) is True

    def test_contains_is_counter_neutral(self):
        from repro.api.solvers import solve_cache_contains

        problem = shifted_problem(0)
        solve(problem)
        before = solve_cache_stats()
        solve_cache_contains(problem)
        assert solve_cache_stats() == before


class TestRegisterBackendDecorator:
    def test_decorator_factory_form(self):
        import repro.runtime.backends as backends

        try:

            @register_backend("decorated-test")
            class DecoratedBackend(SerialBackend):
                name = "decorated-test"

            assert isinstance(resolve_backend("decorated-test"), DecoratedBackend)
        finally:
            backends._BACKENDS.pop("decorated-test", None)


class TestFuzzCorpusPersistence:
    def test_generation_crash_flushed_immediately_and_sorted(self, tmp_path, monkeypatch):
        import importlib

        # The package re-exports the fuzz *function* under the same name as
        # the submodule, so attribute access cannot reach the module.
        fuzz_mod = importlib.import_module("repro.verify.fuzz")

        real_generate = fuzz_mod.generate_problem
        calls = {"count": 0}

        def crashing_generate(rng, objective):
            calls["count"] += 1
            if calls["count"] == 2:  # crash exactly at case index 1
                raise RuntimeError("generator exploded")
            return real_generate(rng, objective)

        monkeypatch.setattr(fuzz_mod, "generate_problem", crashing_generate)
        flush_sizes = []
        real_save = fuzz_mod.save_corpus

        def recording_save(failures, path):
            flush_sizes.append(len(failures))
            real_save(failures, path)

        monkeypatch.setattr(fuzz_mod, "save_corpus", recording_save)
        corpus = tmp_path / "corpus.json"
        report = fuzz_mod.fuzz(seed=0, n=6, corpus_path=str(corpus))
        # The generation crash was flushed during phase 1 (before any
        # evaluation), and the final corpus is index-sorted.
        assert flush_sizes[0] == 1
        crash_failures = [f for f in report.failures if f.kind == "crash"]
        assert [f.index for f in crash_failures] == [1]
        indices = [f.index for f in report.failures]
        assert indices == sorted(indices)
