"""Unit tests for the persistent job store (repro.service.queue)."""

import threading

import pytest

from repro.api import OneIntervalInstance, Problem, from_json, to_json
from repro.service import JOB_STATES, TERMINAL_STATES, JobQueue, JobRecord


def _problem_json(pairs=((0, 2), (1, 3))) -> str:
    instance = OneIntervalInstance.from_pairs(list(pairs))
    return to_json(Problem(objective="gaps", instance=instance))


@pytest.fixture
def store(tmp_path):
    queue = JobQueue(str(tmp_path / "jobs.db"))
    yield queue
    queue.close()


class TestSubmitAndLookup:
    def test_submit_returns_queued_record(self, store):
        record = store.submit(_problem_json(), client_id="alice", priority=3)
        assert record.state == "queued"
        assert record.client_id == "alice"
        assert record.priority == 3
        assert record.attempts == 0
        assert store.get(record.id) == record

    def test_unknown_id_is_none(self, store):
        assert store.get("nope") is None

    def test_problem_round_trips_through_record(self, store):
        text = _problem_json()
        record = store.submit(text)
        assert to_json(record.problem_obj()) == text

    def test_list_jobs_newest_first_and_state_filter(self, store):
        first = store.submit(_problem_json())
        second = store.submit(_problem_json())
        assert [r.id for r in store.list_jobs()] == [second.id, first.id]
        store.request_cancel(first.id)
        assert [r.id for r in store.list_jobs(state="queued")] == [second.id]


class TestClaim:
    def test_claim_moves_to_running_and_counts_attempt(self, store):
        record = store.submit(_problem_json())
        (claimed,) = store.claim(5)
        assert claimed.id == record.id
        assert claimed.state == "running"
        assert claimed.attempts == 1
        assert store.get(record.id).state == "running"

    def test_claim_orders_by_priority_then_fifo(self, store):
        low = store.submit(_problem_json(), priority=0)
        high = store.submit(_problem_json(), priority=5)
        mid_a = store.submit(_problem_json(), priority=1)
        mid_b = store.submit(_problem_json(), priority=1)
        order = [r.id for r in store.claim(10)]
        assert order == [high.id, mid_a.id, mid_b.id, low.id]

    def test_claim_respects_limit(self, store):
        for _ in range(5):
            store.submit(_problem_json())
        assert len(store.claim(2)) == 2
        assert store.counts()["running"] == 2

    def test_claim_finalizes_cancel_requested_queued_jobs(self, store):
        record = store.submit(_problem_json())
        store.request_cancel(record.id)
        assert store.claim(5) == []
        assert store.get(record.id).state == "cancelled"


class TestComplete:
    def test_complete_done(self, store):
        record = store.submit(_problem_json())
        store.claim(1)
        state = store.complete(record.id, result_json='{"ok":1}')
        assert state == "done"
        final = store.get(record.id)
        assert final.state == "done"
        assert final.result == '{"ok":1}'
        assert final.finished_at is not None

    def test_complete_failed_records_error(self, store):
        record = store.submit(_problem_json())
        store.claim(1)
        state = store.complete(
            record.id, result_json='{"status":"error"}', error="boom", failed=True
        )
        assert state == "error"
        assert store.get(record.id).error == "boom"

    def test_cancel_requested_wins_and_discards_result(self, store):
        record = store.submit(_problem_json())
        store.claim(1)
        assert store.request_cancel(record.id) == "cancelling"
        state = store.complete(record.id, result_json='{"ok":1}')
        assert state == "cancelled"
        final = store.get(record.id)
        assert final.state == "cancelled"
        assert final.result is None

    def test_complete_non_running_is_noop(self, store):
        record = store.submit(_problem_json())
        assert store.complete(record.id, result_json="{}") == "queued"
        assert store.get(record.id).state == "queued"
        assert store.complete("nope", result_json="{}") is None


class TestCancel:
    def test_cancel_queued_is_immediate(self, store):
        record = store.submit(_problem_json())
        assert store.request_cancel(record.id) == "cancelled"
        assert store.get(record.id).state == "cancelled"

    def test_cancel_terminal_returns_state(self, store):
        record = store.submit(_problem_json())
        store.claim(1)
        store.complete(record.id, result_json="{}")
        assert store.request_cancel(record.id) == "done"

    def test_cancel_unknown_is_none(self, store):
        assert store.request_cancel("nope") is None


class TestRecovery:
    def test_recover_requeues_running(self, store):
        record = store.submit(_problem_json())
        store.claim(1)
        assert store.recover() == 1
        revived = store.get(record.id)
        assert revived.state == "queued"
        assert revived.started_at is None
        assert revived.attempts == 1  # the interrupted attempt stays visible

    def test_state_survives_reopen(self, tmp_path):
        path = str(tmp_path / "jobs.db")
        first = JobQueue(path)
        record = first.submit(_problem_json(), client_id="alice")
        first.claim(1)
        first.close()

        second = JobQueue(path)
        assert second.recover() == 1
        revived = second.get(record.id)
        assert revived.state == "queued"
        assert revived.problem == record.problem
        second.close()


class TestOperationalViews:
    def test_counts_cover_every_state(self, store):
        assert store.counts() == {state: 0 for state in JOB_STATES}
        done = store.submit(_problem_json())
        store.submit(_problem_json())
        store.claim(1)
        store.complete(done.id, result_json="{}")
        counts = store.counts()
        assert counts["done"] == 1
        assert counts["queued"] == 1

    def test_pending_and_client_load(self, store):
        store.submit(_problem_json(), client_id="alice")
        store.submit(_problem_json(), client_id="alice")
        store.submit(_problem_json(), client_id="bob")
        assert store.pending_count() == 3
        assert store.client_load("alice") == 2
        assert store.client_load("ghost") == 0

    def test_oldest_queued_age(self, store):
        assert store.oldest_queued_age() is None
        record = store.submit(_problem_json())
        age = store.oldest_queued_age(now=record.submitted_at + 7.5)
        assert age == pytest.approx(7.5)


class TestConcurrency:
    def test_concurrent_claims_never_double_assign(self, store):
        ids = {store.submit(_problem_json()).id for _ in range(40)}
        claimed = []
        lock = threading.Lock()

        def worker():
            while True:
                batch = store.claim(3)
                if not batch:
                    return
                with lock:
                    claimed.extend(r.id for r in batch)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == sorted(ids)
        assert len(set(claimed)) == len(ids)


class TestJobRecordCodec:
    def test_round_trips_through_facade_json(self, store):
        record = store.submit(_problem_json(), client_id="alice", priority=2)
        store.claim(1)
        # Canonical compact text, as the daemon's to_json write-back produces:
        # the codec re-canonicalizes embedded payloads on decode.
        store.complete(record.id, result_json='{"ok":1}')
        final = store.get(record.id)
        assert isinstance(from_json(to_json(final)), JobRecord)
        assert from_json(to_json(final)) == final

    def test_terminal_states_constant(self):
        assert TERMINAL_STATES == {"done", "error", "cancelled"}
        assert TERMINAL_STATES < set(JOB_STATES)
