"""Tests for ``repro.bounds`` — certified lower bounds and their checkers.

Every bound here must be *sound* (never exceed the true optimum) and its
certificate must re-verify through ``repro.verify.certify_bound``; both
properties are checked against the exact DPs on seeded random instances,
and the checker is shown to reject tampered witnesses.
"""

import random

import pytest

from repro.api import Problem, solve
from repro.bounds import (
    BoundCertificate,
    gap_lower_bound,
    hall_deficiency,
    lower_bound_for,
    matching_feasibility,
    power_lower_bound,
    window_components,
)
from repro.core.jobs import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from repro.matching.hall import hall_violation
from repro.verify import certify_bound


def random_instance(rng, max_jobs=12):
    n = rng.randint(1, max_jobs)
    horizon = rng.randint(max(2, n // 2), 3 * n + 4)
    pairs = []
    for _ in range(n):
        r = rng.randrange(horizon)
        pairs.append((r, r + rng.randint(0, horizon - r)))
    return OneIntervalInstance.from_pairs(pairs)


class TestWindowComponents:
    def test_disjoint_windows_split(self):
        inst = OneIntervalInstance.from_pairs([(0, 2), (10, 12), (20, 22)])
        assert window_components(inst) == [(0, 2), (10, 12), (20, 22)]

    def test_touching_windows_merge(self):
        # (0,2) and (3,5) touch: an idle-free schedule across them exists.
        inst = OneIntervalInstance.from_pairs([(0, 2), (3, 5)])
        assert window_components(inst) == [(0, 5)]

    def test_overlapping_windows_merge(self):
        inst = OneIntervalInstance.from_pairs([(0, 6), (2, 4), (5, 9)])
        assert window_components(inst) == [(0, 9)]

    def test_empty_instance(self):
        assert window_components(OneIntervalInstance(())) == []


class TestGapLowerBound:
    def test_component_bound_on_separated_windows(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11), (20, 21)])
        cert = gap_lower_bound(inst)
        assert cert.kind == "gap-structure"
        assert cert.value == 2
        assert certify_bound(Problem(objective="gaps", instance=inst), cert).ok

    def test_density_bound_on_staircase(self):
        # 40 jobs, windows of length 31 stepping by 7: no single busy block
        # can be long, forcing many gaps even though windows overlap.
        inst = OneIntervalInstance.from_pairs(
            [(7 * i, 7 * i + 30) for i in range(40)]
        )
        cert = gap_lower_bound(inst)
        assert cert.value > 0
        assert cert.witness["density"] is not None
        assert certify_bound(Problem(objective="gaps", instance=inst), cert).ok

    def test_sound_against_exact_dp(self):
        rng = random.Random(7)
        checked = 0
        for _ in range(120):
            inst = random_instance(rng)
            problem = Problem(objective="gaps", instance=inst)
            exact = solve(problem, solver="gap-dp")
            if exact.status == "infeasible":
                continue
            cert = gap_lower_bound(inst)
            assert cert.value <= exact.value + 1e-9, (
                inst.jobs,
                cert.to_dict(),
                exact.value,
            )
            assert certify_bound(problem, cert).ok
            checked += 1
        assert checked >= 60

    def test_tampered_witness_rejected(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11)])
        cert = gap_lower_bound(inst)
        bad = cert.to_dict()
        bad["value"] = cert.value + 5
        problem = Problem(objective="gaps", instance=inst)
        assert not certify_bound(problem, bad).ok


class TestPowerLowerBound:
    def test_sound_against_exact_dp(self):
        rng = random.Random(11)
        checked = 0
        for _ in range(120):
            inst = random_instance(rng)
            alpha = rng.choice([0.5, 1.0, 2.0, 3.5])
            problem = Problem(objective="power", instance=inst, alpha=alpha)
            exact = solve(problem, solver="power-dp")
            if exact.status == "infeasible":
                continue
            cert = power_lower_bound(inst, alpha)
            assert cert.value <= exact.value + 1e-9
            assert certify_bound(problem, cert).ok
            checked += 1
        assert checked >= 60

    def test_empty_instance_costs_nothing(self):
        cert = power_lower_bound(OneIntervalInstance(()), 2.0)
        assert cert.value == 0.0

    def test_tampered_seam_rejected(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11)])
        cert = power_lower_bound(inst, 2.0)
        bad = cert.to_dict()
        bad["witness"]["seams"] = [999]
        problem = Problem(objective="power", instance=inst, alpha=2.0)
        assert not certify_bound(problem, bad).ok


class TestHallDeficiency:
    def test_matches_quadratic_reference(self):
        rng = random.Random(3)
        for _ in range(250):
            inst = random_instance(rng, max_jobs=10)
            windows = [(j.release, j.deadline) for j in inst.jobs]
            cert = hall_deficiency(inst)
            violation = hall_violation(windows, 1)
            if violation is None:
                assert cert.value <= 0, (windows, cert.to_dict())
            else:
                x, y, demand, capacity = violation
                assert cert.value >= demand - capacity > 0 or cert.value > 0

    def test_multiprocessor_capacity(self):
        pairs = [(0, 1), (0, 1), (0, 1), (0, 1)]
        single = MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        double = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        assert hall_deficiency(single).value == 2
        assert hall_deficiency(double).value <= 0

    def test_certificate_roundtrip_and_check(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (0, 1), (0, 1)])
        cert = hall_deficiency(inst)
        assert cert.proves_infeasible
        problem = Problem(objective="gaps", instance=inst)
        assert certify_bound(problem, cert.to_dict()).ok
        bad = cert.to_dict()
        bad["witness"]["y"] = bad["witness"]["y"] + 3
        assert not certify_bound(problem, bad).ok


class TestMatchingFeasibility:
    def test_feasible_instance_has_zero_deficiency(self):
        inst = OneIntervalInstance.from_pairs([(0, 2), (1, 3), (2, 4)])
        cert = matching_feasibility(inst)
        assert cert.value == 0
        assert not cert.proves_infeasible
        assert certify_bound(Problem(objective="gaps", instance=inst), cert).ok

    def test_infeasible_instance_counts_unmatched(self):
        inst = OneIntervalInstance.from_pairs([(0, 0), (0, 0), (0, 0)])
        cert = matching_feasibility(inst)
        assert cert.value == 2
        assert cert.proves_infeasible

    def test_agrees_with_hall_on_feasibility(self):
        rng = random.Random(19)
        for _ in range(100):
            inst = random_instance(rng, max_jobs=9)
            hall = hall_deficiency(inst)
            matching = matching_feasibility(inst)
            assert (hall.value > 0) == (matching.value > 0)


class TestLowerBoundFor:
    def test_dispatches_by_objective(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11)])
        gaps = lower_bound_for(Problem(objective="gaps", instance=inst))
        power = lower_bound_for(
            Problem(objective="power", instance=inst, alpha=2.0)
        )
        assert gaps.kind == "gap-structure"
        assert power.kind == "power-structure"

    def test_unwraps_single_processor_multiproc(self):
        inst = MultiprocessorInstance.from_pairs(
            [(0, 1), (10, 11)], num_processors=1
        )
        cert = lower_bound_for(Problem(objective="gaps", instance=inst))
        assert cert is not None and cert.value == 1

    def test_none_for_unsupported_instances(self):
        multi = MultiIntervalInstance.from_time_lists([[0, 1], [4, 5]])
        assert (
            lower_bound_for(Problem(objective="power", instance=multi, alpha=1.0))
            is None
        )
        two_proc = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1)], num_processors=2
        )
        assert lower_bound_for(Problem(objective="gaps", instance=two_proc)) is None


class TestBoundCertificate:
    def test_roundtrip(self):
        cert = BoundCertificate(
            kind="gap-structure",
            objective="gaps",
            value=3,
            witness={"components": [[0, 2], [5, 6]], "density": None},
        )
        again = BoundCertificate.from_dict(cert.to_dict())
        assert again == cert

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            BoundCertificate(
                kind="vibes", objective="gaps", value=1, witness={}
            )
