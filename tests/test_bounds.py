"""Tests for ``repro.bounds`` — certified lower bounds and their checkers.

Every bound here must be *sound* (never exceed the true optimum) and its
certificate must re-verify through ``repro.verify.certify_bound``; both
properties are checked against the exact DPs on seeded random instances,
and the checker is shown to reject tampered witnesses.
"""

import random

import pytest

from repro.api import Problem, solve
from repro.bounds import (
    BoundCertificate,
    gap_lower_bound,
    hall_deficiency,
    lower_bound_for,
    matching_feasibility,
    power_lower_bound,
    window_components,
)
from repro.core.jobs import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from repro.matching.hall import hall_violation
from repro.verify import certify_bound


def random_instance(rng, max_jobs=12):
    n = rng.randint(1, max_jobs)
    horizon = rng.randint(max(2, n // 2), 3 * n + 4)
    pairs = []
    for _ in range(n):
        r = rng.randrange(horizon)
        pairs.append((r, r + rng.randint(0, horizon - r)))
    return OneIntervalInstance.from_pairs(pairs)


class TestWindowComponents:
    def test_disjoint_windows_split(self):
        inst = OneIntervalInstance.from_pairs([(0, 2), (10, 12), (20, 22)])
        assert window_components(inst) == [(0, 2), (10, 12), (20, 22)]

    def test_touching_windows_merge(self):
        # (0,2) and (3,5) touch: an idle-free schedule across them exists.
        inst = OneIntervalInstance.from_pairs([(0, 2), (3, 5)])
        assert window_components(inst) == [(0, 5)]

    def test_overlapping_windows_merge(self):
        inst = OneIntervalInstance.from_pairs([(0, 6), (2, 4), (5, 9)])
        assert window_components(inst) == [(0, 9)]

    def test_empty_instance(self):
        assert window_components(OneIntervalInstance(())) == []


class TestGapLowerBound:
    def test_component_bound_on_separated_windows(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11), (20, 21)])
        cert = gap_lower_bound(inst)
        assert cert.kind == "gap-structure"
        assert cert.value == 2
        assert certify_bound(Problem(objective="gaps", instance=inst), cert).ok

    def test_density_bound_on_staircase(self):
        # 40 jobs, windows of length 31 stepping by 7: no single busy block
        # can be long, forcing many gaps even though windows overlap.
        inst = OneIntervalInstance.from_pairs(
            [(7 * i, 7 * i + 30) for i in range(40)]
        )
        cert = gap_lower_bound(inst)
        assert cert.value > 0
        assert cert.witness["density"] is not None
        assert certify_bound(Problem(objective="gaps", instance=inst), cert).ok

    def test_sound_against_exact_dp(self):
        rng = random.Random(7)
        checked = 0
        for _ in range(120):
            inst = random_instance(rng)
            problem = Problem(objective="gaps", instance=inst)
            exact = solve(problem, solver="gap-dp")
            if exact.status == "infeasible":
                continue
            cert = gap_lower_bound(inst)
            assert cert.value <= exact.value + 1e-9, (
                inst.jobs,
                cert.to_dict(),
                exact.value,
            )
            assert certify_bound(problem, cert).ok
            checked += 1
        assert checked >= 60

    def test_tampered_witness_rejected(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11)])
        cert = gap_lower_bound(inst)
        bad = cert.to_dict()
        bad["value"] = cert.value + 5
        problem = Problem(objective="gaps", instance=inst)
        assert not certify_bound(problem, bad).ok


class TestPowerLowerBound:
    def test_sound_against_exact_dp(self):
        rng = random.Random(11)
        checked = 0
        for _ in range(120):
            inst = random_instance(rng)
            alpha = rng.choice([0.5, 1.0, 2.0, 3.5])
            problem = Problem(objective="power", instance=inst, alpha=alpha)
            exact = solve(problem, solver="power-dp")
            if exact.status == "infeasible":
                continue
            cert = power_lower_bound(inst, alpha)
            assert cert.value <= exact.value + 1e-9
            assert certify_bound(problem, cert).ok
            checked += 1
        assert checked >= 60

    def test_empty_instance_costs_nothing(self):
        cert = power_lower_bound(OneIntervalInstance(()), 2.0)
        assert cert.value == 0.0

    def test_tampered_seam_rejected(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11)])
        cert = power_lower_bound(inst, 2.0)
        bad = cert.to_dict()
        bad["witness"]["seams"] = [999]
        problem = Problem(objective="power", instance=inst, alpha=2.0)
        assert not certify_bound(problem, bad).ok


class TestHallDeficiency:
    def test_matches_quadratic_reference(self):
        rng = random.Random(3)
        for _ in range(250):
            inst = random_instance(rng, max_jobs=10)
            windows = [(j.release, j.deadline) for j in inst.jobs]
            cert = hall_deficiency(inst)
            violation = hall_violation(windows, 1)
            if violation is None:
                assert cert.value <= 0, (windows, cert.to_dict())
            else:
                x, y, demand, capacity = violation
                assert cert.value >= demand - capacity > 0 or cert.value > 0

    def test_multiprocessor_capacity(self):
        pairs = [(0, 1), (0, 1), (0, 1), (0, 1)]
        single = MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        double = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        assert hall_deficiency(single).value == 2
        assert hall_deficiency(double).value <= 0

    def test_certificate_roundtrip_and_check(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (0, 1), (0, 1)])
        cert = hall_deficiency(inst)
        assert cert.proves_infeasible
        problem = Problem(objective="gaps", instance=inst)
        assert certify_bound(problem, cert.to_dict()).ok
        bad = cert.to_dict()
        bad["witness"]["y"] = bad["witness"]["y"] + 3
        assert not certify_bound(problem, bad).ok


class TestMatchingFeasibility:
    def test_feasible_instance_has_zero_deficiency(self):
        inst = OneIntervalInstance.from_pairs([(0, 2), (1, 3), (2, 4)])
        cert = matching_feasibility(inst)
        assert cert.value == 0
        assert not cert.proves_infeasible
        assert certify_bound(Problem(objective="gaps", instance=inst), cert).ok

    def test_infeasible_instance_counts_unmatched(self):
        inst = OneIntervalInstance.from_pairs([(0, 0), (0, 0), (0, 0)])
        cert = matching_feasibility(inst)
        assert cert.value == 2
        assert cert.proves_infeasible

    def test_agrees_with_hall_on_feasibility(self):
        rng = random.Random(19)
        for _ in range(100):
            inst = random_instance(rng, max_jobs=9)
            hall = hall_deficiency(inst)
            matching = matching_feasibility(inst)
            assert (hall.value > 0) == (matching.value > 0)


class TestLowerBoundFor:
    def test_dispatches_by_objective(self):
        inst = OneIntervalInstance.from_pairs([(0, 1), (10, 11)])
        gaps = lower_bound_for(Problem(objective="gaps", instance=inst))
        power = lower_bound_for(
            Problem(objective="power", instance=inst, alpha=2.0)
        )
        assert gaps.kind == "gap-structure"
        assert power.kind == "power-structure"

    def test_unwraps_single_processor_multiproc(self):
        inst = MultiprocessorInstance.from_pairs(
            [(0, 1), (10, 11)], num_processors=1
        )
        cert = lower_bound_for(Problem(objective="gaps", instance=inst))
        assert cert is not None and cert.value == 1

    def test_multiproc_and_multi_interval_are_now_bounded(self):
        # Historically these returned None, leaving large portfolio solves
        # uncertified; both regimes now get finite certified bounds.
        multi = MultiIntervalInstance.from_time_lists([[0, 1], [4, 5]])
        cert = lower_bound_for(
            Problem(objective="power", instance=multi, alpha=1.0)
        )
        assert cert is not None
        assert cert.kind == "multiinterval-power-structure"
        two_proc = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1)], num_processors=2
        )
        cert = lower_bound_for(Problem(objective="gaps", instance=two_proc))
        assert cert is not None
        assert cert.kind == "multiproc-gap-structure"

    def test_none_for_throughput(self):
        multi = MultiIntervalInstance.from_time_lists([[0, 1], [4, 5]])
        assert (
            lower_bound_for(
                Problem(objective="throughput", instance=multi, max_gaps=1)
            )
            is None
        )


class TestMultiprocBounds:
    def test_components_needing_many_processors(self):
        # Two well-separated triple-overloaded windows on 2 processors:
        # each component needs 3 processors busy, so >= 3 + 3 - 2 = 4 gaps.
        pairs = [(0, 0)] * 3 + [(10, 10)] * 3
        inst = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        problem = Problem(objective="gaps", instance=inst)
        cert = lower_bound_for(problem)
        assert cert.value == 4
        assert certify_bound(problem, cert).ok

    def test_roundtrips_through_dict(self):
        inst = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (8, 9)], num_processors=2
        )
        problem = Problem(objective="power", instance=inst, alpha=2.0)
        cert = lower_bound_for(problem)
        assert certify_bound(problem, cert.to_dict()).ok

    def test_sound_against_exact_dp(self):
        rng = random.Random(7)
        for _ in range(40):
            n = rng.randint(1, 8)
            horizon = rng.randint(2, 12)
            pairs = []
            for _ in range(n):
                r = rng.randrange(horizon)
                pairs.append((r, r + rng.randint(0, horizon - r)))
            inst = MultiprocessorInstance.from_pairs(
                pairs, num_processors=rng.randint(2, 3)
            )
            for problem in (
                Problem(objective="gaps", instance=inst),
                Problem(objective="power", instance=inst, alpha=1.5),
            ):
                cert = lower_bound_for(problem)
                assert certify_bound(problem, cert).ok
                result = solve(problem, on_infeasible="result")
                if result.status == "optimal":
                    assert cert.value <= result.value + 1e-9

    def test_rejects_inflated_processor_claim(self):
        inst = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (0, 1), (0, 1)], num_processors=2
        )
        problem = Problem(objective="gaps", instance=inst)
        cert = lower_bound_for(problem)
        tampered = cert.to_dict()
        entry = tampered["witness"]["components"][0]
        entry["processors"] += 1
        tampered["value"] += 1
        assert not certify_bound(problem, tampered).ok


class TestMultiIntervalBounds:
    def test_pinned_components_force_gaps(self):
        # Job 0 straddles both runs (pins nothing); jobs 1 and 2 are each
        # stuck in their own run, forcing one gap between them.
        inst = MultiIntervalInstance.from_time_lists(
            [[1, 11], [0, 1], [10, 11]]
        )
        problem = Problem(objective="gaps", instance=inst)
        cert = lower_bound_for(problem)
        assert cert.value == 1
        assert cert.witness["components"] == [[0, 1], [10, 11]]
        assert certify_bound(problem, cert).ok

    def test_straddling_jobs_pin_nothing(self):
        inst = MultiIntervalInstance.from_time_lists([[0, 9], [1, 10]])
        problem = Problem(objective="gaps", instance=inst)
        cert = lower_bound_for(problem)
        assert cert.value == 0
        assert certify_bound(problem, cert).ok

    def test_power_charges_uncovered_seams(self):
        # 6 uncovered slots between the two pinned runs, alpha = 2.5:
        # n + alpha + min(6, alpha) = 2 + 2.5 + 2.5.
        inst = MultiIntervalInstance.from_time_lists([[0, 1], [8, 9]])
        problem = Problem(objective="power", instance=inst, alpha=2.5)
        cert = lower_bound_for(problem)
        assert cert.value == pytest.approx(7.0)
        assert certify_bound(problem, cert).ok

    def test_sound_against_brute_force(self):
        rng = random.Random(11)
        for _ in range(40):
            lists = [
                sorted(rng.sample(range(14), rng.randint(1, 4)))
                for _ in range(rng.randint(1, 6))
            ]
            inst = MultiIntervalInstance.from_time_lists(lists)
            problem = Problem(objective="gaps", instance=inst)
            cert = lower_bound_for(problem)
            assert certify_bound(problem, cert).ok
            result = solve(
                problem, solver="brute-force-gaps", on_infeasible="result"
            )
            if result.status == "optimal":
                assert cert.value <= result.value

    def test_rejects_fabricated_pin(self):
        inst = MultiIntervalInstance.from_time_lists([[0, 9], [1, 10]])
        problem = Problem(objective="gaps", instance=inst)
        cert = lower_bound_for(problem)
        tampered = cert.to_dict()
        tampered["witness"]["pinned"] = [[0, 0], [1, 1]]
        tampered["value"] = 1
        assert not certify_bound(problem, tampered).ok


class TestBoundCertificate:
    def test_roundtrip(self):
        cert = BoundCertificate(
            kind="gap-structure",
            objective="gaps",
            value=3,
            witness={"components": [[0, 2], [5, 6]], "density": None},
        )
        again = BoundCertificate.from_dict(cert.to_dict())
        assert again == cert

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            BoundCertificate(
                kind="vibes", objective="gaps", value=1, witness={}
            )
