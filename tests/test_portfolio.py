"""Tests for the budget-raced solver portfolio (``repro.portfolio``).

Includes the PR's acceptance criterion: a seeded n = 10^5 instance solved
under ``budget=5.0`` must return a feasible schedule with a finite
certified optimality gap in well under 1.5x the budget, and both the
result and the attached lower bound must re-verify independently.
"""

import random
import time

import pytest

from repro.api import (
    DEFAULT_EXACT_JOB_LIMIT,
    Problem,
    default_members,
    run_portfolio,
    solve,
)
from repro.core.exceptions import SolverError
from repro.core.jobs import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from repro.verify import certify_bound, certify_result


def small_instance():
    return OneIntervalInstance.from_pairs(
        [(0, 3), (2, 6), (5, 9), (9, 14), (13, 17)]
    )


class TestDefaultMembers:
    def test_small_gaps_roster_includes_exact(self):
        roster = default_members(
            Problem(objective="gaps", instance=small_instance())
        )
        assert roster == ["edf-gap", "localsearch-gap", "gap-dp"]

    def test_large_instance_keeps_exact_in_roster(self):
        # Admission moved from roster construction to dispatch time: the
        # exact DP is always rostered; preemptive sessions race it under
        # hard kill, cooperative ones refuse it at dispatch ("admission").
        inst = OneIntervalInstance.from_pairs(
            [(3 * i, 3 * i + 5) for i in range(DEFAULT_EXACT_JOB_LIMIT + 1)]
        )
        roster = default_members(Problem(objective="gaps", instance=inst))
        assert roster == ["edf-gap", "localsearch-gap", "gap-dp"]

    def test_power_roster(self):
        roster = default_members(
            Problem(objective="power", instance=small_instance(), alpha=2.0)
        )
        assert roster == ["edf-power", "localsearch-power", "power-dp"]

    def test_multiproc_falls_back_to_auto(self):
        inst = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1)], num_processors=2
        )
        roster = default_members(Problem(objective="gaps", instance=inst))
        assert roster == ["gap-dp"]

    def test_throughput_falls_back_to_auto(self):
        inst = MultiIntervalInstance.from_time_lists([[0, 1], [2, 3]])
        roster = default_members(
            Problem(objective="throughput", instance=inst, max_gaps=1)
        )
        assert len(roster) == 1


class TestRunPortfolio:
    def test_small_instance_is_proven_optimal(self):
        problem = Problem(objective="gaps", instance=small_instance())
        result = run_portfolio(problem, budget=5.0)
        exact = solve(problem, solver="gap-dp")
        assert result.status == "optimal"
        assert result.value == exact.value
        assert result.solver == "portfolio"
        gap = result.extra["optimality_gap"]
        assert gap["lower"] == gap["upper"] == exact.value
        assert gap["ratio"] == pytest.approx(1.0)
        assert certify_result(problem, result).ok

    def test_power_instance_is_proven_optimal(self):
        problem = Problem(objective="power", instance=small_instance(), alpha=2.5)
        result = run_portfolio(problem, budget=5.0)
        exact = solve(problem, solver="power-dp")
        assert result.status == "optimal"
        assert result.value == pytest.approx(exact.value)
        assert certify_result(problem, result).ok

    def test_member_records_cover_roster(self):
        problem = Problem(objective="gaps", instance=small_instance())
        result = run_portfolio(problem, budget=5.0)
        race = result.extra["portfolio"]
        names = [member["name"] for member in race["members"]]
        assert names == ["edf-gap", "localsearch-gap", "gap-dp"]
        for member in race["members"]:
            # Preemptive racing may hard-kill beaten members; every record
            # still carries its state, kill reason and wall time.
            assert member["state"] in ("ran", "killed", "cancelled")
            if member["state"] == "ran":
                assert member["kill_reason"] is None
                assert member["wall_time"] >= 0
            elif member["state"] == "killed":
                assert member["kill_reason"] in ("beaten", "deadline", "error")
        assert any(member["state"] == "ran" for member in race["members"])
        assert race["winner"] in names
        assert race["budget"] == 5.0
        assert race["backend"] in ("serial", "thread", "process", "process-cold")

    def test_serial_backend_runs_every_member(self):
        # The cooperative path keeps the historical guarantee: with budget
        # headroom every rostered member actually runs to completion.
        problem = Problem(objective="gaps", instance=small_instance())
        result = run_portfolio(problem, budget=5.0, backend="serial")
        race = result.extra["portfolio"]
        assert race["preemptive"] is False
        assert all(member["state"] == "ran" for member in race["members"])

    def test_infeasible_instance_attaches_hall_certificate(self):
        bad = OneIntervalInstance.from_pairs([(0, 1), (0, 1), (0, 1)])
        problem = Problem(objective="gaps", instance=bad)
        result = run_portfolio(problem, budget=5.0)
        assert result.status == "infeasible"
        assert result.value is None and result.schedule is None
        cert = result.extra["portfolio"]["infeasibility"]
        assert cert["value"] > 0
        assert certify_bound(problem, cert).ok
        assert certify_result(problem, result).ok

    def test_budget_must_be_positive(self):
        problem = Problem(objective="gaps", instance=small_instance())
        with pytest.raises(ValueError):
            run_portfolio(problem, budget=0.0)

    def test_deterministic_given_budget_headroom(self):
        # Preemptive racing fixes the value, status and certified gap given
        # headroom; the winning member's *name* is timing-dependent by
        # design (whoever pins first kills the rest).
        problem = Problem(objective="gaps", instance=small_instance())
        first = run_portfolio(problem, budget=5.0)
        second = run_portfolio(problem, budget=5.0)
        assert first.value == second.value
        assert first.status == second.status
        assert first.extra["optimality_gap"] == second.extra["optimality_gap"]

    def test_serial_backend_fully_deterministic(self):
        # The cooperative path additionally fixes the winner and schedule.
        problem = Problem(objective="gaps", instance=small_instance())
        first = run_portfolio(problem, budget=5.0, backend="serial")
        second = run_portfolio(problem, budget=5.0, backend="serial")
        assert first.value == second.value
        assert first.extra["portfolio"]["winner"] == (
            second.extra["portfolio"]["winner"]
        )
        assert first.schedule.assignment == second.schedule.assignment

    def test_explicit_members_are_honored(self):
        problem = Problem(objective="gaps", instance=small_instance())
        result = run_portfolio(problem, budget=5.0, members=["edf-gap"])
        race = result.extra["portfolio"]
        assert [member["name"] for member in race["members"]] == ["edf-gap"]

    def test_tight_budget_cancels_exact_member(self):
        # A sub-millisecond budget still returns a feasible answer, and the
        # exact DP must not be allowed to blow the deadline: the
        # cooperative path refuses to dispatch it ("cancelled"), the
        # preemptive path hard-kills it ("killed" at the deadline).
        inst = OneIntervalInstance.from_pairs(
            [(3 * i, 3 * i + 5) for i in range(300)]
        )
        problem = Problem(objective="gaps", instance=inst)
        result = run_portfolio(problem, budget=1e-4)
        members = {
            member["name"]: member
            for member in result.extra["portfolio"]["members"]
        }
        assert result.feasible
        assert members["gap-dp"]["state"] in ("cancelled", "killed")

    def test_tight_budget_serial_cancels_with_reason(self):
        inst = OneIntervalInstance.from_pairs(
            [(3 * i, 3 * i + 5) for i in range(300)]
        )
        problem = Problem(objective="gaps", instance=inst)
        result = run_portfolio(problem, budget=1e-4, backend="serial")
        members = {
            member["name"]: member
            for member in result.extra["portfolio"]["members"]
        }
        assert result.feasible
        assert members["gap-dp"]["state"] == "cancelled"
        assert members["gap-dp"]["kill_reason"] == "deadline"


class TestFacadeBudget:
    def test_budget_routes_to_portfolio(self):
        result = solve(
            Problem(objective="gaps", instance=small_instance()), budget=5.0
        )
        assert result.solver == "portfolio"
        assert "optimality_gap" in result.extra

    def test_budget_rejects_forced_solver(self):
        with pytest.raises(ValueError):
            solve(
                Problem(objective="gaps", instance=small_instance()),
                solver="gap-dp",
                budget=1.0,
            )

    def test_on_infeasible_raise_still_works(self):
        from repro.core.exceptions import InfeasibleInstanceError

        bad = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        with pytest.raises(InfeasibleInstanceError):
            solve(
                Problem(objective="gaps", instance=bad),
                budget=1.0,
                on_infeasible="raise",
            )


class TestLargeNAcceptance:
    def test_n_100k_certified_under_budget(self):
        n = 100_000
        inst = OneIntervalInstance.from_pairs(
            [(7 * i, 7 * i + 30) for i in range(n)]
        )
        problem = Problem(objective="gaps", instance=inst)
        start = time.perf_counter()
        result = run_portfolio(problem, budget=5.0)
        wall = time.perf_counter() - start
        assert wall < 7.5  # ~1.5x budget
        assert result.feasible
        assert result.schedule is not None
        assert len(result.schedule.assignment) == n
        gap = result.extra["optimality_gap"]
        assert gap["ratio"] is not None and gap["ratio"] < float("inf")
        assert gap["lower"] <= result.value <= gap["upper"]
        assert certify_result(problem, result).ok
        bound = result.extra["portfolio"]["lower_bound"]
        assert bound is not None
        assert certify_bound(problem, bound).ok

    def test_large_power_instance_within_budget(self):
        rng = random.Random(0)
        pairs = []
        for cluster in range(400):
            base = 300 * cluster
            for _ in range(50):
                release = base + rng.randrange(100)
                pairs.append((release, base + 150 + rng.randrange(50)))
        inst = OneIntervalInstance.from_pairs(pairs)
        problem = Problem(objective="power", instance=inst, alpha=4.0)
        start = time.perf_counter()
        result = run_portfolio(problem, budget=5.0)
        wall = time.perf_counter() - start
        assert wall < 7.5
        assert result.feasible
        gap = result.extra["optimality_gap"]
        assert gap["ratio"] is not None
        assert certify_result(problem, result).ok
