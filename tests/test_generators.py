"""Unit tests for the instance generators."""

import pytest

from repro.core.exceptions import InvalidInstanceError
from repro.core.feasibility import is_feasible, is_feasible_multiproc
from repro.generators import (
    batch_queue_instance,
    bursty_server_instance,
    periodic_sensor_instance,
    random_multi_interval_instance,
    random_multiprocessor_instance,
    random_one_interval_instance,
    random_set_cover_instance,
)


class TestRandomGenerators:
    def test_one_interval_generator_is_feasible_and_seeded(self):
        a = random_one_interval_instance(num_jobs=8, horizon=20, seed=1)
        b = random_one_interval_instance(num_jobs=8, horizon=20, seed=1)
        c = random_one_interval_instance(num_jobs=8, horizon=20, seed=2)
        assert a.jobs == b.jobs
        assert a.jobs != c.jobs or a is not c
        assert is_feasible(a)

    def test_one_interval_respects_horizon(self):
        instance = random_one_interval_instance(num_jobs=10, horizon=15, seed=3)
        lo, hi = instance.horizon
        assert lo >= 0 and hi <= 14

    def test_multiprocessor_generator(self):
        instance = random_multiprocessor_instance(
            num_jobs=9, num_processors=3, horizon=12, seed=4
        )
        assert instance.num_processors == 3
        assert is_feasible_multiproc(instance)

    def test_multi_interval_generator(self):
        instance = random_multi_interval_instance(
            num_jobs=6, horizon=20, intervals_per_job=2, interval_length=3, seed=5
        )
        assert instance.num_jobs == 6
        assert is_feasible(instance)
        assert all(job.num_times <= 6 for job in instance.jobs)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_one_interval_instance(num_jobs=3, horizon=0)
        with pytest.raises(InvalidInstanceError):
            random_multiprocessor_instance(num_jobs=3, num_processors=0, horizon=5)
        with pytest.raises(InvalidInstanceError):
            random_multi_interval_instance(num_jobs=3, horizon=5, intervals_per_job=0)

    def test_impossible_feasibility_raises(self):
        # 10 jobs cannot fit into a 2-slot horizon on one processor.
        with pytest.raises(InvalidInstanceError):
            random_one_interval_instance(num_jobs=10, horizon=2, seed=1)

    def test_set_cover_generator_is_coverable_and_respects_b(self):
        instance = random_set_cover_instance(
            num_elements=8, num_sets=5, max_set_size=3, seed=6
        )
        assert instance.is_coverable()
        assert instance.max_set_size <= 3


class TestWorkloadGenerators:
    def test_bursty_server_structure(self):
        instance = bursty_server_instance(
            num_bursts=3, jobs_per_burst=4, burst_spacing=10, slack=3, num_processors=2
        )
        assert instance.num_jobs == 12
        releases = sorted(set(job.release for job in instance.jobs))
        assert releases == [0, 10, 20]
        assert all(job.deadline - job.release == 3 for job in instance.jobs)

    def test_bursty_server_feasible_with_enough_processors(self):
        instance = bursty_server_instance(
            num_bursts=2, jobs_per_burst=4, burst_spacing=12, slack=3, num_processors=2
        )
        assert is_feasible_multiproc(instance)

    def test_periodic_sensor_jobs_have_two_intervals(self):
        instance = periodic_sensor_instance(
            num_sensors=3, readings_per_sensor=2, period=10, window=2
        )
        assert instance.num_jobs == 6
        assert all(job.num_intervals == 2 for job in instance.jobs)

    def test_batch_queue_respects_slack(self):
        instance = batch_queue_instance(
            num_jobs=10, arrival_rate=0.5, slack=4, horizon=60, seed=2
        )
        assert instance.num_jobs == 10
        assert all(job.deadline - job.release <= 4 for job in instance.jobs)

    def test_workload_parameter_validation(self):
        with pytest.raises(InvalidInstanceError):
            bursty_server_instance(0, 1, 1, 1, 1)
        with pytest.raises(InvalidInstanceError):
            periodic_sensor_instance(0, 1, 5, 1)
        with pytest.raises(InvalidInstanceError):
            batch_queue_instance(0, 0.5, 1, 10)


class TestStructuredFuzzers:
    """The repro.generators.fuzzers families added with the verify subsystem."""

    def test_tight_window_windows_are_short(self):
        from repro.generators import tight_window_instance

        instance = tight_window_instance(num_jobs=10, horizon=8, seed=1)
        assert instance.num_jobs == 10
        assert all(job.window_length <= 2 for job in instance.jobs)

    def test_clustered_release_stays_in_horizon(self):
        from repro.generators import clustered_release_instance

        instance = clustered_release_instance(
            num_jobs=12, horizon=10, num_clusters=2, seed=3
        )
        assert all(0 <= j.release <= j.deadline <= 9 for j in instance.jobs)

    def test_hall_violating_is_infeasible_by_construction(self):
        from repro.core.feasibility import is_feasible, is_feasible_multiproc
        from repro.generators import hall_violating_instance
        from repro.matching import hall_violation

        for seed in range(25):
            instance = hall_violating_instance(num_jobs=5, horizon=8, seed=seed)
            assert not is_feasible(instance)
            assert hall_violation([j.window for j in instance.jobs]) is not None
        multi = hall_violating_instance(
            num_jobs=6, horizon=7, seed=0, num_processors=2
        )
        assert not is_feasible_multiproc(multi)

    def test_hall_violating_bumps_tiny_job_counts(self):
        from repro.generators import hall_violating_instance

        # overloading a width-1 window on 3 processors takes 4 jobs, so a
        # 2-job request is raised to the documented minimum p - slack
        instance = hall_violating_instance(
            num_jobs=2, horizon=6, seed=0, num_processors=3, slack=-1
        )
        assert instance.num_jobs == 4

    def test_tight_feasible_knife_edge(self):
        from repro.generators import hall_violating_instance

        # slack=0 keeps demand == capacity on the chosen window
        instance = hall_violating_instance(num_jobs=4, horizon=6, seed=2, slack=0)
        assert instance.num_jobs >= 4

    def test_splittable_clusters_are_seam_separated(self):
        from repro.generators import splittable_instance

        instance = splittable_instance(
            num_jobs=12, num_clusters=3, cluster_horizon=6, seam=4, seed=2
        )
        spans = [(k * 10, k * 10 + 5) for k in range(3)]
        for i, job in enumerate(instance.jobs):
            lo, hi = spans[i % 3]
            assert lo <= job.release <= job.deadline <= hi

    def test_periodic_splittable_tiles_one_pattern(self):
        from repro.generators import splittable_instance

        instance = splittable_instance(
            num_jobs=12,
            num_clusters=3,
            cluster_horizon=6,
            seam=4,
            seed=5,
            periodic=True,
        )
        period = 6 + 4
        windows = [(j.release, j.deadline) for j in instance.jobs]
        pattern = windows[:4]
        for k in range(3):
            chunk = windows[4 * k : 4 * (k + 1)]
            assert chunk == [(r + k * period, d + k * period) for r, d in pattern]

    def test_periodic_splittable_requires_divisible_job_count(self):
        import pytest

        from repro.core.exceptions import InvalidInstanceError
        from repro.generators import splittable_instance

        with pytest.raises(InvalidInstanceError, match="divisible"):
            splittable_instance(num_jobs=10, num_clusters=3, periodic=True)

    def test_generators_are_seed_deterministic(self):
        from repro.generators import (
            clustered_release_instance,
            hall_violating_instance,
            tight_window_instance,
        )

        for gen in (tight_window_instance, clustered_release_instance):
            assert gen(num_jobs=6, horizon=8, seed=9) == gen(
                num_jobs=6, horizon=8, seed=9
            )
        assert hall_violating_instance(num_jobs=6, horizon=8, seed=9) == (
            hall_violating_instance(num_jobs=6, horizon=8, seed=9)
        )
