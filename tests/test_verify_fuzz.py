"""Fuzz driver: determinism, corpus round-trip, replay, generator coverage."""

import json
import random

import pytest

from repro.api import OneIntervalInstance, Problem, SolveResult, register_solver, to_dict
from repro.api.registry import _REGISTRY
from repro.core.schedule import Schedule
from repro.verify import FuzzFailure, fuzz, load_corpus, replay, save_corpus
from repro.verify.fuzz import generate_problem


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = fuzz(seed=11, n=40)
        b = fuzz(seed=11, n=40)
        assert a.summary() == b.summary()
        assert [f.to_dict() for f in a.failures] == [f.to_dict() for f in b.failures]

    def test_different_seeds_differ(self):
        a = fuzz(seed=1, n=30, metamorphic=False)
        b = fuzz(seed=2, n=30, metamorphic=False)
        assert a.solver_counts != b.solver_counts or a.num_infeasible != b.num_infeasible

    def test_generate_problem_is_pure_in_rng(self):
        for objective in ("gaps", "power", "throughput"):
            g1, p1 = generate_problem(random.Random(7), objective)
            g2, p2 = generate_problem(random.Random(7), objective)
            assert g1 == g2
            assert to_dict(p1) == to_dict(p2)


class TestAcceptance:
    def test_seed0_n500_is_green_across_all_objectives(self):
        report = fuzz(seed=0, n=500)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.num_problems == 500
        # every registered solver must have been exercised
        exercised = set(report.solver_counts)
        assert {
            "gap-dp",
            "power-dp",
            "power-approx",
            "throughput-greedy",
            "greedy-gap",
            "online-edf",
            "brute-force-gaps",
            "brute-force-power",
            "brute-force-throughput",
        } <= exercised
        # brute-force oracles certify the exact solvers on small instances
        assert report.solver_counts["brute-force-gaps"] > 50
        assert report.solver_counts["brute-force-power"] > 50
        assert report.num_infeasible > 0  # near-infeasible families fire

    def test_objective_subset(self):
        report = fuzz(seed=4, n=20, objectives=("gaps",))
        assert report.ok
        assert report.objectives == ("gaps",)
        assert "throughput-greedy" not in report.solver_counts

    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            fuzz(seed=0, n=1, objectives=("makespan",))


class TestCorpus:
    def _failure(self):
        instance = OneIntervalInstance.from_pairs([(0, 3), (1, 5)])
        problem = Problem(objective="gaps", instance=instance)
        return FuzzFailure(
            index=7,
            kind="differential",
            objective="gaps",
            generator="uniform",
            issues=["made-up issue"],
            problem=to_dict(problem),
        )

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "corpus.json")
        failure = self._failure()
        save_corpus([failure], path)
        loaded = load_corpus(path)
        assert len(loaded) == 1
        assert loaded[0].to_dict() == failure.to_dict()
        # corpus is plain sorted-key JSON: inspectable and diffable
        payload = json.loads(open(path).read())
        assert payload[0]["problem"]["type"] == "problem"

    def test_replay_clean_problem_goes_green(self, tmp_path):
        # The saved failure's problem is actually fine (e.g. the bug was
        # fixed since), so replay reports no failures.
        path = str(tmp_path / "corpus.json")
        save_corpus([self._failure()], path)
        report = replay(path)
        assert report.ok
        assert report.num_problems == 1

    def test_replay_detects_live_bug(self, tmp_path):
        name = "test-replay-liar"

        @register_solver(
            name,
            objective="gaps",
            kind="exact",
            instance_types=(OneIntervalInstance,),
        )
        def _liar(problem):
            n = len(problem.instance.jobs)
            return SolveResult(
                status="optimal",
                objective="gaps",
                value=0,
                schedule=Schedule(
                    instance=problem.instance,
                    assignment={i: problem.instance.jobs[i].deadline for i in range(n)},
                ),
            )

        try:
            path = str(tmp_path / "corpus.json")
            save_corpus([self._failure()], path)
            report = replay(path)
            assert not report.ok
            assert any(name in issue for f in report.failures for issue in f.issues)
        finally:
            _REGISTRY.pop(name, None)

    def test_green_run_clears_the_corpus(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus([self._failure()], str(path))  # stale failures from a past run
        report = fuzz(seed=0, n=10, corpus_path=str(path))
        assert report.ok
        assert load_corpus(str(path)) == []  # green run rewrites, never leaves stale

    def test_meta_seed_round_trips_through_the_corpus(self, tmp_path):
        failure = self._failure()
        failure.meta_seed = 424242
        path = str(tmp_path / "corpus.json")
        save_corpus([failure], path)
        assert load_corpus(path)[0].meta_seed == 424242

    def test_crash_in_a_solver_is_captured_not_fatal(self, tmp_path):
        name = "test-crashing-solver"

        @register_solver(
            name,
            objective="gaps",
            kind="exact",
            instance_types=(OneIntervalInstance,),
        )
        def _crash(problem):
            raise IndexError("synthetic solver crash")

        try:
            path = tmp_path / "corpus.json"
            report = fuzz(seed=0, n=12, metamorphic=False, corpus_path=str(path))
            crashes = [f for f in report.failures if f.kind == "crash"]
            assert crashes, "the crashing solver should surface as crash findings"
            assert any("IndexError" in i for f in crashes for i in f.issues)
            # the run completed and the corpus captured the crashing instances
            assert report.num_problems == 12
            assert len(load_corpus(str(path))) == len(report.failures)
        finally:
            _REGISTRY.pop(name, None)


class TestGeneratorFamilies:
    def test_structured_fuzzers_are_reachable(self):
        seen = set()
        rng = random.Random(0)
        for _ in range(300):
            generator, _problem = generate_problem(rng, "gaps")
            seen.add(generator)
        assert {"uniform", "tight", "clustered", "hall"} <= seen

    def test_hall_family_produces_infeasible_instances(self):
        from repro.core.feasibility import is_feasible_multiproc, is_feasible
        from repro.generators import hall_violating_instance

        infeasible = 0
        for seed in range(30):
            instance = hall_violating_instance(num_jobs=5, horizon=8, seed=seed)
            if not is_feasible(instance):
                infeasible += 1
        assert infeasible > 20  # slack=-1 guarantees a violated Hall window

    def test_progress_callback_fires(self):
        calls = []
        fuzz(seed=0, n=5, metamorphic=False, progress=lambda i, rep: calls.append(i))
        assert calls == [0, 1, 2, 3, 4]
