"""Tests for the exception hierarchy and error-path behaviour of the public API."""

import pytest

from repro import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidScheduleError,
    Job,
    OneIntervalInstance,
    ReproError,
    Schedule,
    SolverError,
    feasible_schedule,
)


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (InvalidInstanceError, InfeasibleInstanceError, InvalidScheduleError, SolverError):
            assert issubclass(exc, ReproError)

    def test_invalid_instance_is_value_error(self):
        assert issubclass(InvalidInstanceError, ValueError)
        assert issubclass(InvalidScheduleError, ValueError)

    def test_solver_error_is_runtime_error(self):
        assert issubclass(SolverError, RuntimeError)


class TestErrorPaths:
    def test_catching_base_class_covers_instance_errors(self):
        with pytest.raises(ReproError):
            Job(release=4, deadline=2)

    def test_catching_base_class_covers_infeasibility(self):
        with pytest.raises(ReproError):
            feasible_schedule(OneIntervalInstance.from_pairs([(0, 0), (0, 0)]))

    def test_schedule_validation_error_message_names_the_job(self):
        instance = OneIntervalInstance.from_pairs([(0, 1)])
        schedule = Schedule(instance=instance, assignment={0: 9})
        with pytest.raises(InvalidScheduleError) as err:
            schedule.validate()
        assert "job 0" in str(err.value)

    def test_infeasibility_message_contains_hall_window(self):
        with pytest.raises(InfeasibleInstanceError) as err:
            feasible_schedule(OneIntervalInstance.from_pairs([(2, 3), (2, 3), (2, 3)]))
        message = str(err.value)
        assert "[2, 3]" in message and "3 jobs" in message
