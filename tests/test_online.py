"""Unit tests for the online baselines and lower-bound families."""

import pytest

from repro import InvalidInstanceError, is_feasible, minimize_gaps_single_processor
from repro.core.online import (
    compare_online_offline,
    multi_interval_online_dilemma,
    online_gap_schedule,
    online_lower_bound_alternative,
    online_lower_bound_instance,
)


class TestLowerBoundFamily:
    def test_invalid_size_rejected(self):
        with pytest.raises(InvalidInstanceError):
            online_lower_bound_instance(0)

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_online_suffers_linear_gaps(self, n):
        instance = online_lower_bound_instance(n)
        online = online_gap_schedule(instance)
        online.validate()
        assert online.num_gaps() >= n - 1

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_offline_optimum_is_constant(self, n):
        instance = online_lower_bound_instance(n)
        offline = minimize_gaps_single_processor(instance)
        assert offline.feasible
        assert offline.num_gaps <= 1

    def test_alternative_continuation_forces_immediate_execution(self):
        # In the alternative instance the flexible jobs MUST be executed before
        # time n, otherwise the 2n urgent jobs leave no room.
        n = 3
        instance = online_lower_bound_alternative(n)
        assert is_feasible(instance)
        schedule = online_gap_schedule(instance)
        flexible_times = [schedule.assignment[i] for i in range(n)]
        assert max(flexible_times) < n

    def test_comparison_helper(self):
        n = 4
        instance = online_lower_bound_instance(n)
        offline = minimize_gaps_single_processor(instance).num_gaps
        comparison = compare_online_offline(instance, offline)
        assert comparison.online_gaps >= n - 1
        assert comparison.ratio >= n - 1


class TestMultiIntervalDilemma:
    def test_both_continuations_are_individually_feasible(self):
        first, second = multi_interval_online_dilemma()
        assert is_feasible(first)
        assert is_feasible(second)

    def test_no_single_time0_choice_serves_both(self):
        # Whatever job runs at time 0, one continuation becomes infeasible for
        # an online algorithm: check by removing the chosen job's time-0 slot.
        first, second = multi_interval_online_dilemma()
        job_a_times = set(first.jobs[0].times)
        job_b_times = set(first.jobs[1].times)
        # If A runs at 0, then in the second instance B must run at 1 or 3 and
        # C2 needs 2 -> still feasible; if B runs at 0, in the first instance A
        # must avoid 1 (C1 needs it) leaving A only time 2 -> feasible; the
        # dilemma is about time 1/2 commitments: at time 1 the algorithm cannot
        # know whether to save slot 2.  We verify the structural facts used by
        # the argument instead of simulating every online algorithm.
        assert 0 in job_a_times and 0 in job_b_times
        assert first.jobs[2].times == (1,)
        assert second.jobs[2].times == (2,)
