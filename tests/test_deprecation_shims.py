"""The PR-1 deprecation shims: warn exactly once per call, match the façade."""

import warnings

import pytest

import repro
from repro.api import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    solve,
)

ONE = OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)])
MP = MultiprocessorInstance.from_pairs(
    [(0, 1), (0, 1), (1, 2), (5, 6)], num_processors=2
)
MI = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6], [6, 7]])


def call_counting_warnings(func, *args, **kwargs):
    """Invoke ``func`` and return (result, [DeprecationWarning instances])."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func(*args, **kwargs)
    return result, [w for w in caught if issubclass(w.category, DeprecationWarning)]


SHIM_CASES = [
    ("solve_multiprocessor_gap", (MP,), {}),
    ("solve_multiprocessor_power", (MP, 2.0), {}),
    ("minimize_gaps_single_processor", (ONE,), {}),
    ("minimize_power_single_processor", (ONE, 2.0), {}),
    ("approximate_power_schedule", (MI, 1.0), {}),
    ("greedy_throughput_schedule", (MI, 2), {}),
]


class TestWarningDiscipline:
    @pytest.mark.parametrize("name,args,kwargs", SHIM_CASES, ids=lambda c: str(c)[:40])
    def test_exactly_one_warning_per_call(self, name, args, kwargs):
        shim = getattr(repro, name)
        _result, warned = call_counting_warnings(shim, *args, **kwargs)
        assert len(warned) == 1, f"{name} emitted {len(warned)} DeprecationWarnings"
        message = str(warned[0].message)
        assert name in message and "repro.api" in message

    @pytest.mark.parametrize("name,args,kwargs", SHIM_CASES, ids=lambda c: str(c)[:40])
    def test_warns_on_every_call_not_just_the_first(self, name, args, kwargs):
        shim = getattr(repro, name)
        for _ in range(2):
            _result, warned = call_counting_warnings(shim, *args, **kwargs)
            assert len(warned) == 1


class TestShimsMatchFacade:
    def test_solve_multiprocessor_gap(self):
        legacy, _ = call_counting_warnings(repro.solve_multiprocessor_gap, MP)
        facade = solve(Problem(objective="gaps", instance=MP))
        assert legacy.feasible == facade.feasible
        assert legacy.num_gaps == facade.value

    def test_solve_multiprocessor_power(self):
        legacy, _ = call_counting_warnings(repro.solve_multiprocessor_power, MP, 2.0)
        facade = solve(Problem(objective="power", instance=MP, alpha=2.0))
        assert legacy.power == pytest.approx(facade.value)

    def test_minimize_gaps_single_processor(self):
        legacy, _ = call_counting_warnings(repro.minimize_gaps_single_processor, ONE)
        facade = solve(Problem(objective="gaps", instance=ONE))
        assert legacy.num_gaps == facade.value

    def test_minimize_power_single_processor(self):
        legacy, _ = call_counting_warnings(
            repro.minimize_power_single_processor, ONE, 2.0
        )
        facade = solve(Problem(objective="power", instance=ONE, alpha=2.0))
        assert legacy.power == pytest.approx(facade.value)

    def test_approximate_power_schedule(self):
        legacy, _ = call_counting_warnings(repro.approximate_power_schedule, MI, 1.0)
        facade = solve(
            Problem(objective="power", instance=MI, alpha=1.0), solver="power-approx"
        )
        assert legacy.power == pytest.approx(facade.value)
        assert legacy.guarantee_factor == pytest.approx(facade.guarantee_factor)

    def test_greedy_throughput_schedule(self):
        legacy, _ = call_counting_warnings(repro.greedy_throughput_schedule, MI, 2)
        facade = solve(Problem(objective="throughput", instance=MI, max_gaps=2))
        assert legacy.num_scheduled == facade.value

    def test_infeasible_shim_matches_facade_envelope(self):
        clash = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        legacy, _ = call_counting_warnings(repro.minimize_gaps_single_processor, clash)
        facade = solve(Problem(objective="gaps", instance=clash))
        assert not legacy.feasible
        assert facade.status == "infeasible"
        assert facade.value is None and facade.schedule is None
