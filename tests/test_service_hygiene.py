"""Dependency hygiene: the service layer must be stdlib + repro only.

The service is advertised as deployable with nothing but a Python
interpreter and this repository — no web framework, no queue broker, no
ORM.  This test walks the AST of every module under ``repro.service`` and
fails if any import reaches outside the standard library or the ``repro``
package itself, so an accidental third-party dependency can never sneak
into the service layer.  CI runs this file as part of the service-smoke
job.
"""

import ast
import os
import sys

import pytest

import repro.service

SERVICE_DIR = os.path.dirname(os.path.abspath(repro.service.__file__))
MODULES = sorted(
    name for name in os.listdir(SERVICE_DIR) if name.endswith(".py")
)


def _imported_roots(path):
    """Yield (root module, level, line) for every import in the file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name.split(".")[0], 0, node.lineno
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            yield root, node.level, node.lineno


def test_service_modules_exist():
    assert "queue.py" in MODULES
    assert "daemon.py" in MODULES
    assert "server.py" in MODULES
    assert "admission.py" in MODULES
    assert "client.py" in MODULES


@pytest.mark.parametrize("module", MODULES)
@pytest.mark.skipif(
    not hasattr(sys, "stdlib_module_names"),
    reason="sys.stdlib_module_names needs Python 3.10+",
)
def test_service_imports_only_stdlib_and_repro(module):
    offenders = []
    for root, level, line in _imported_roots(os.path.join(SERVICE_DIR, module)):
        if level > 0:
            continue  # relative import — inside repro by construction
        if root == "repro":
            continue
        if root in sys.stdlib_module_names:
            continue
        offenders.append(f"{module}:{line}: {root}")
    assert not offenders, (
        "service layer imports outside stdlib/repro: " + ", ".join(offenders)
    )
