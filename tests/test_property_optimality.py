"""Property-based optimality tests: the polynomial solvers against brute force."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MultiIntervalInstance, MultiprocessorInstance
from repro.core.brute_force import (
    brute_force_gap_multi_interval,
    brute_force_gap_multiproc,
    brute_force_power_multi_interval,
    brute_force_power_multiproc,
)
from repro.core.multiproc_gap_dp import solve_multiprocessor_gap
from repro.core.multiproc_power_dp import solve_multiprocessor_power
from repro.core.power_approx import approximate_power_schedule
from repro.core.feasibility import is_feasible

SLOW_OK = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

small_jobs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=3)),
    min_size=1,
    max_size=5,
)


class TestExactSolversAreOptimal:
    @SLOW_OK
    @given(small_jobs, st.integers(min_value=1, max_value=2))
    def test_gap_dp_equals_brute_force(self, raw_windows, p):
        pairs = [(r, r + length) for r, length in raw_windows]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        dp = solve_multiprocessor_gap(instance, use_full_horizon=True)
        brute, _ = brute_force_gap_multiproc(instance)
        assert (dp.num_gaps if dp.feasible else None) == brute

    @SLOW_OK
    @given(small_jobs, st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    def test_power_dp_equals_brute_force(self, raw_windows, alpha):
        pairs = [(r, r + length) for r, length in raw_windows]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        dp = solve_multiprocessor_power(instance, alpha=alpha, use_full_horizon=True)
        brute, _ = brute_force_power_multiproc(instance, alpha=alpha)
        if brute is None:
            assert not dp.feasible
        else:
            assert abs(dp.power - brute) < 1e-9


multi_interval_jobs = st.lists(
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=4),
    min_size=1,
    max_size=5,
)


class TestApproximationProperties:
    @SLOW_OK
    @given(multi_interval_jobs, st.sampled_from([0.5, 1.0, 2.0, 4.0]))
    def test_theorem3_schedule_is_complete_and_bounded(self, time_lists, alpha):
        instance = MultiIntervalInstance.from_time_lists(time_lists)
        if not is_feasible(instance):
            return
        result = approximate_power_schedule(instance, alpha=alpha)
        result.schedule.validate()
        optimal, _ = brute_force_power_multi_interval(instance, alpha=alpha)
        assert optimal is not None
        # Guaranteed bound: every feasible schedule is within (1 + alpha) of
        # optimal; the Theorem 3 analysis tightens this to 1 + (2/3 + eps)alpha.
        assert result.power <= (1.0 + alpha) * optimal + 1e-9

    @SLOW_OK
    @given(multi_interval_jobs)
    def test_gap_optimum_invariant_under_time_translation(self, time_lists):
        instance = MultiIntervalInstance.from_time_lists(time_lists)
        if not is_feasible(instance):
            return
        shifted = MultiIntervalInstance.from_time_lists(
            [[t + 17 for t in times] for times in time_lists]
        )
        original, _ = brute_force_gap_multi_interval(instance)
        translated, _ = brute_force_gap_multi_interval(shifted)
        assert original == translated
