"""Tests for runtime task observers and disk-cache fail-fast configuration."""

import os

import pytest

from repro.api import OneIntervalInstance, Problem, to_json
from repro.cli import main
from repro.core.exceptions import CacheConfigurationError, ReproError
from repro.runtime import (
    add_task_observer,
    notify_task_observers,
    remove_task_observer,
    solve_stream,
    task_observers,
)
from repro.runtime.diskcache import DiskSolveCache


def _problems(n, offset=0):
    return [
        Problem(
            objective="gaps",
            instance=OneIntervalInstance.from_pairs(
                [(0, 2 + offset + i), (1, 3 + offset + i)]
            ),
        )
        for i in range(n)
    ]


@pytest.fixture(autouse=True)
def clean_cache_state():
    """Keep --cache-dir experiments from leaking a configured disk tier."""
    from repro.runtime import configure_disk_cache

    yield
    configure_disk_cache(None)


@pytest.fixture
def observer_log():
    seen = []

    def observer(problem, result):
        seen.append((problem, result))

    add_task_observer(observer)
    yield seen
    remove_task_observer(observer)


class TestRegistry:
    def test_add_is_idempotent_and_returns_fn(self):
        def fn(problem, result):
            pass

        try:
            assert add_task_observer(fn) is fn
            add_task_observer(fn)
            assert task_observers().count(fn) == 1
        finally:
            assert remove_task_observer(fn) is True
        assert remove_task_observer(fn) is False
        assert fn not in task_observers()

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError, match="callable"):
            add_task_observer(42)

    def test_raising_observer_is_isolated(self):
        calls = []

        def bad(problem, result):
            raise RuntimeError("observer bug")

        def good(problem, result):
            calls.append(result)

        add_task_observer(bad)
        add_task_observer(good)
        try:
            notify_task_observers("p", "r")
        finally:
            remove_task_observer(bad)
            remove_task_observer(good)
        assert calls == ["r"]  # the raising observer never blocked the good one


class TestStreamNotifications:
    def test_observer_sees_every_delivered_result(self, observer_log):
        problems = _problems(4, offset=10)
        results = list(solve_stream(problems))
        assert len(observer_log) == 4
        # Observers fire in completion order, which parallel backends do
        # not promise matches the (input-ordered) yield order — compare
        # the (problem, result) pairing, not the sequence.
        observed = {to_json(p): to_json(r) for p, r in observer_log}
        expected = {to_json(p): to_json(r) for p, r in zip(problems, results)}
        assert observed == expected

    def test_observer_sees_deduped_duplicates(self, observer_log):
        base = _problems(1, offset=20)[0]
        problems = [base, base, base]
        list(solve_stream(problems))
        # One DP solve, but three deliveries — observers count tasks, not
        # solver invocations.
        assert len(observer_log) == 3

    def test_observer_sees_error_envelopes(self, observer_log):
        problems = _problems(1, offset=30)
        results = list(
            solve_stream(problems, solver="no-such-solver", on_error="result")
        )
        assert results[0].status == "error"
        assert len(observer_log) == 1
        assert observer_log[0][1].status == "error"


class TestDiskCacheFailFast:
    def test_file_shadowed_path_is_configuration_error(self, tmp_path):
        shadow = tmp_path / "cache"
        shadow.write_text("not a directory")
        with pytest.raises(CacheConfigurationError, match="not a directory"):
            DiskSolveCache(str(shadow))

    def test_configuration_error_is_both_repro_and_os_error(self, tmp_path):
        shadow = tmp_path / "cache"
        shadow.write_text("x")
        with pytest.raises(ReproError):
            DiskSolveCache(str(shadow))
        with pytest.raises(OSError):
            DiskSolveCache(str(shadow))

    @pytest.mark.skipif(
        os.geteuid() == 0, reason="permission checks are bypassed as root"
    )
    def test_unwritable_directory_is_configuration_error(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        root.chmod(0o500)
        try:
            with pytest.raises(CacheConfigurationError, match="not writable"):
                DiskSolveCache(str(root))
        finally:
            root.chmod(0o700)

    def test_valid_directory_probe_leaves_no_droppings(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path / "cache"))
        version_dir = os.path.join(cache.root, cache.version_tag)
        assert os.listdir(version_dir) == []  # the write probe cleaned up

    def test_cli_cache_dir_pointing_at_file_is_usage_error(self, tmp_path, capsys):
        shadow = tmp_path / "cache"
        shadow.write_text("x")
        with pytest.raises(SystemExit) as excinfo:
            main(["--cache-dir", str(shadow), "cache", "stats"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "cannot use --cache-dir" in err
        assert "not a directory" in err
