"""Tests for the benchmark history file (repro.perf.history)."""

import json

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    HISTORY_SCHEMA,
    BenchSchemaError,
    append_history,
    latest_history_report,
    load_comparison_report,
    read_history,
    rolling_median_reference,
    validate_report,
    write_report,
)


def make_report(median=0.01, name="gap/test-n10-p1"):
    """A minimal report that passes validate_report."""
    timing = {"best": median, "median": median, "mean": median, "runs": [median]}
    return {
        "schema": BENCH_SCHEMA,
        "engine": {"name": "interval-dp", "version": "v2"},
        "quick": True,
        "seed": 0,
        "repeats": 1,
        "warmup": 0,
        "environment": {
            "python": "3.11",
            "implementation": "CPython",
            "platform": "test",
            "numpy": None,
        },
        "cases": [
            {
                "name": name,
                "objective": "gaps",
                "family": "uniform",
                "num_jobs": 10,
                "num_processors": 1,
                "alpha": None,
                "value": 2,
                "engine": dict(timing),
                "engine_v1": None,
                "engine_v3": None,
                "baseline": None,
                "speedup": None,
                "speedup_vs_v1": None,
                "speedup_vs_v2": None,
                "decomposed": None,
                "speedup_vs_mono": None,
                "engine_stats": {"states_computed": 5},
                "engine_v3_stats": None,
                "portfolio": None,
            }
        ],
    }


class TestAppend:
    def test_append_writes_one_line_per_run(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        entry = append_history(make_report(), path, timestamp="2026-08-07T00:00:00+00:00")
        append_history(make_report(median=0.02), path, timestamp="2026-08-07T01:00:00+00:00")
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["engine_version"] == "v2"
        assert entry["cases"] == 1
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)  # each line is self-contained JSON
            assert parsed["schema"] == HISTORY_SCHEMA

    def test_append_stamps_current_utc_time_by_default(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        entry = append_history(make_report(), path)
        assert "+00:00" in entry["timestamp"]

    def test_append_rejects_invalid_report(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        with pytest.raises(BenchSchemaError):
            append_history({"schema": "wrong"}, path)
        assert not (tmp_path / "HISTORY.jsonl").exists()  # nothing written


class TestRead:
    def test_read_returns_entries_oldest_first(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.02), path, timestamp="t2")
        entries = read_history(path)
        assert [e["timestamp"] for e in entries] == ["t1", "t2"]

    def test_read_tolerates_blank_lines(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        append_history(make_report(), str(path), timestamp="t1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(read_history(str(path))) == 1

    def test_read_rejects_garbage_with_line_number(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        append_history(make_report(), str(path), timestamp="t1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.raises(BenchSchemaError, match=":2"):
            read_history(str(path))

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "something/else"}\n')
        with pytest.raises(BenchSchemaError, match="entry"):
            read_history(str(path))


class TestLatest:
    def test_latest_is_last_entry(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.05), path, timestamp="t2")
        report = latest_history_report(path)
        assert report["cases"][0]["engine"]["median"] == 0.05

    def test_latest_on_empty_file_raises(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        path.write_text("\n")
        with pytest.raises(BenchSchemaError, match="no entries"):
            latest_history_report(str(path))


class TestRollingMedian:
    def test_window_medians_each_timing_field(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        for ts, median in [("t1", 0.01), ("t2", 0.05), ("t3", 0.03)]:
            append_history(make_report(median=median), path, timestamp=ts)
        reference, used = rolling_median_reference(path, 3)
        assert used == 3
        validate_report(reference)
        block = reference["cases"][0]["engine"]
        assert block["median"] == pytest.approx(0.03)
        assert block["best"] == pytest.approx(0.03)
        assert block["runs"] == [pytest.approx(0.03)]

    def test_window_larger_than_history_uses_everything(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.09), path, timestamp="t2")
        reference, used = rolling_median_reference(path, 50)
        assert used == 2
        # Even-count median of [0.01, 0.09].
        assert reference["cases"][0]["engine"]["median"] == pytest.approx(0.05)

    def test_window_of_one_is_the_latest_entry(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.07), path, timestamp="t2")
        reference, used = rolling_median_reference(path, 1)
        assert used == 1
        assert reference["cases"][0]["engine"]["median"] == 0.07

    def test_older_schema_entries_are_skipped(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        old = make_report(median=1.0)
        old["schema"] = "repro.perf/bench-dp/v2"
        entry = {
            "schema": HISTORY_SCHEMA,
            "timestamp": "t0",
            "engine_version": "v2",
            "quick": True,
            "cases": 1,
            "report": old,
        }
        path.write_text(json.dumps(entry) + "\n")
        append_history(make_report(median=0.02), str(path), timestamp="t1")
        reference, used = rolling_median_reference(str(path), 10)
        assert used == 1  # the v2-schema entry must not be coerced in
        assert reference["cases"][0]["engine"]["median"] == 0.02

    def test_no_current_schema_entries_raises(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        old = make_report()
        old["schema"] = "repro.perf/bench-dp/v2"
        entry = {
            "schema": HISTORY_SCHEMA,
            "timestamp": "t0",
            "engine_version": "v2",
            "quick": True,
            "cases": 1,
            "report": old,
        }
        path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(BenchSchemaError, match="no history entries"):
            rolling_median_reference(str(path), 3)

    def test_case_only_in_latest_keeps_its_numbers(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        newer = make_report(median=0.02)
        newer["cases"].append(
            dict(make_report(median=0.08, name="gap/new-case")["cases"][0])
        )
        append_history(newer, path, timestamp="t2")
        reference, _used = rolling_median_reference(path, 5)
        by_name = {case["name"]: case for case in reference["cases"]}
        assert by_name["gap/new-case"]["engine"]["median"] == 0.08

    def test_speedups_recomputed_from_synthesized_blocks(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        for ts, engine, v1 in [("t1", 0.01, 0.04), ("t2", 0.03, 0.03), ("t3", 0.02, 0.08)]:
            report = make_report(median=engine)
            case = report["cases"][0]
            case["engine_v1"] = {"best": v1, "median": v1, "mean": v1, "runs": [v1]}
            case["speedup_vs_v1"] = v1 / engine
            append_history(report, path, timestamp=ts)
        reference, _used = rolling_median_reference(path, 3)
        case = reference["cases"][0]
        # median(engine) = 0.02, median(v1) = 0.04, ratio recomputed.
        assert case["engine"]["median"] == pytest.approx(0.02)
        assert case["engine_v1"]["median"] == pytest.approx(0.04)
        assert case["speedup_vs_v1"] == pytest.approx(2.0)

    def test_bad_window_rejected(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(), path, timestamp="t1")
        with pytest.raises(ValueError, match="window"):
            rolling_median_reference(path, 0)


class TestLoadComparisonReport:
    def test_plain_report_file(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        write_report(make_report(), path)
        report, source = load_comparison_report(path)
        assert source == "report"
        assert report["schema"] == BENCH_SCHEMA

    def test_multi_line_history_file(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.07), path, timestamp="t2")
        report, source = load_comparison_report(path)
        assert source == "history"
        assert report["cases"][0]["engine"]["median"] == 0.07

    def test_single_line_history_file(self, tmp_path):
        # One appended run parses as a single JSON document; dispatch must
        # still recognize it as history, not reject it as a bad report.
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.03), path, timestamp="t1")
        report, source = load_comparison_report(path)
        assert source == "history"
        assert report["cases"][0]["engine"]["median"] == 0.03
