"""Tests for the benchmark history file (repro.perf.history)."""

import json

import pytest

from repro.perf import (
    BENCH_SCHEMA,
    HISTORY_SCHEMA,
    BenchSchemaError,
    append_history,
    latest_history_report,
    load_comparison_report,
    read_history,
    write_report,
)


def make_report(median=0.01, name="gap/test-n10-p1"):
    """A minimal report that passes validate_report."""
    timing = {"best": median, "median": median, "mean": median, "runs": [median]}
    return {
        "schema": BENCH_SCHEMA,
        "engine": {"name": "interval-dp", "version": "v2"},
        "quick": True,
        "seed": 0,
        "repeats": 1,
        "warmup": 0,
        "environment": {
            "python": "3.11",
            "implementation": "CPython",
            "platform": "test",
        },
        "cases": [
            {
                "name": name,
                "objective": "gaps",
                "family": "uniform",
                "num_jobs": 10,
                "num_processors": 1,
                "alpha": None,
                "value": 2,
                "engine": dict(timing),
                "engine_v1": None,
                "baseline": None,
                "speedup": None,
                "speedup_vs_v1": None,
                "engine_stats": {"states_computed": 5},
            }
        ],
    }


class TestAppend:
    def test_append_writes_one_line_per_run(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        entry = append_history(make_report(), path, timestamp="2026-08-07T00:00:00+00:00")
        append_history(make_report(median=0.02), path, timestamp="2026-08-07T01:00:00+00:00")
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["engine_version"] == "v2"
        assert entry["cases"] == 1
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)  # each line is self-contained JSON
            assert parsed["schema"] == HISTORY_SCHEMA

    def test_append_stamps_current_utc_time_by_default(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        entry = append_history(make_report(), path)
        assert "+00:00" in entry["timestamp"]

    def test_append_rejects_invalid_report(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        with pytest.raises(BenchSchemaError):
            append_history({"schema": "wrong"}, path)
        assert not (tmp_path / "HISTORY.jsonl").exists()  # nothing written


class TestRead:
    def test_read_returns_entries_oldest_first(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.02), path, timestamp="t2")
        entries = read_history(path)
        assert [e["timestamp"] for e in entries] == ["t1", "t2"]

    def test_read_tolerates_blank_lines(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        append_history(make_report(), str(path), timestamp="t1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(read_history(str(path))) == 1

    def test_read_rejects_garbage_with_line_number(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        append_history(make_report(), str(path), timestamp="t1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.raises(BenchSchemaError, match=":2"):
            read_history(str(path))

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "something/else"}\n')
        with pytest.raises(BenchSchemaError, match="entry"):
            read_history(str(path))


class TestLatest:
    def test_latest_is_last_entry(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.05), path, timestamp="t2")
        report = latest_history_report(path)
        assert report["cases"][0]["engine"]["median"] == 0.05

    def test_latest_on_empty_file_raises(self, tmp_path):
        path = tmp_path / "HISTORY.jsonl"
        path.write_text("\n")
        with pytest.raises(BenchSchemaError, match="no entries"):
            latest_history_report(str(path))


class TestLoadComparisonReport:
    def test_plain_report_file(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        write_report(make_report(), path)
        report, source = load_comparison_report(path)
        assert source == "report"
        assert report["schema"] == BENCH_SCHEMA

    def test_multi_line_history_file(self, tmp_path):
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.01), path, timestamp="t1")
        append_history(make_report(median=0.07), path, timestamp="t2")
        report, source = load_comparison_report(path)
        assert source == "history"
        assert report["cases"][0]["engine"]["median"] == 0.07

    def test_single_line_history_file(self, tmp_path):
        # One appended run parses as a single JSON document; dispatch must
        # still recognize it as history, not reject it as a bad report.
        path = str(tmp_path / "HISTORY.jsonl")
        append_history(make_report(median=0.03), path, timestamp="t1")
        report, source = load_comparison_report(path)
        assert source == "history"
        assert report["cases"][0]["engine"]["median"] == 0.03
