"""Tests for the portfolio bench family, --filter, and the stream microbench."""

import copy
import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA,
    STREAM_HISTORY_SCHEMA,
    STREAM_SCHEMA,
    BenchSchemaError,
    append_stream_history,
    compare_reports,
    compare_stream_history,
    portfolio_cases,
    read_stream_history,
    run_bench,
    run_stream_bench,
    validate_report,
    validate_stream_report,
    write_stream_report,
)


@pytest.fixture(scope="module")
def portfolio_report():
    """One shared quick portfolio bench run for the module."""
    return run_bench(
        quick=True,
        repeats=1,
        warmup=0,
        portfolio=True,
        name_filter=r"^portfolio/",
    )


class TestPortfolioCases:
    def test_quick_is_a_prefix_of_full(self):
        quick = [case.name for case in portfolio_cases(quick=True)]
        full = [case.name for case in portfolio_cases(quick=False)]
        assert quick == full[: len(quick)]

    def test_cases_are_marked_portfolio_with_budgets(self):
        for case in portfolio_cases(quick=False):
            assert case.portfolio
            assert case.budget is not None and case.budget > 0
            assert case.name.startswith("portfolio/")

    def test_full_matrix_reaches_100k_jobs(self):
        assert any(
            case.num_jobs >= 100_000 for case in portfolio_cases(quick=False)
        )


class TestPortfolioBenchRun:
    def test_report_is_schema_valid(self, portfolio_report):
        validate_report(portfolio_report)
        assert portfolio_report["schema"] == BENCH_SCHEMA

    def test_portfolio_block_shape(self, portfolio_report):
        cases = portfolio_report["cases"]
        assert cases and all(c["portfolio"] is not None for c in cases)
        for case in cases:
            block = case["portfolio"]
            assert block["budget"] > 0
            assert block["status"] in ("optimal", "approximate")
            member_names = [m["name"] for m in block["members"]]
            assert block["winner"] in member_names
            assert block["upper"] is not None
            if block["lower"] is not None:
                assert block["lower"] <= block["upper"] + 1e-9
            assert block["backend"] in (
                "serial", "thread", "process", "process-cold"
            )
            assert isinstance(block["preemptive"], bool)
            for member in block["members"]:
                assert member["state"] in ("ran", "killed", "cancelled")
                if member["state"] == "ran":
                    assert member["wall_time"] >= 0
                    assert member["kill_reason"] is None
                else:
                    assert member["kill_reason"] in (
                        "beaten", "deadline", "admission", "error"
                    )

    def test_dp_columns_are_null(self, portfolio_report):
        for case in portfolio_report["cases"]:
            assert case["engine_v1"] is None
            assert case["baseline"] is None
            assert case["speedup"] is None
            assert case["speedup_vs_v1"] is None
            assert case["engine"]["median"] > 0

    def test_regular_cases_have_null_portfolio_block(self):
        report = run_bench(quick=True, repeats=1, warmup=0)
        for case in report["cases"]:
            assert case["portfolio"] is None

    def test_tampered_portfolio_block_rejected(self, portfolio_report):
        bad = copy.deepcopy(portfolio_report)
        bad["cases"][0]["portfolio"]["budget"] = 0
        with pytest.raises(BenchSchemaError):
            validate_report(bad)
        bad = copy.deepcopy(portfolio_report)
        bad["cases"][0]["portfolio"]["members"][0]["state"] = "vanished"
        with pytest.raises(BenchSchemaError):
            validate_report(bad)


class TestCompareSkipsPortfolio:
    def test_portfolio_cases_are_skipped_not_gated(self, portfolio_report):
        # Wall time is pinned by the budget, so even a wildly "slower"
        # current report must not flag a portfolio case.
        slower = copy.deepcopy(portfolio_report)
        for case in slower["cases"]:
            case["engine"] = {
                key: (value * 100 if isinstance(value, float) else value)
                for key, value in case["engine"].items()
            }
        outcome = compare_reports(slower, portfolio_report)
        assert not outcome["regressions"]
        assert not outcome["compared"]
        assert set(outcome["skipped"]) >= {
            case["name"] for case in portfolio_report["cases"]
        }


class TestNameFilter:
    def test_filter_narrows_the_matrix(self):
        report = run_bench(
            quick=True, repeats=1, warmup=0, name_filter="uniform"
        )
        assert report["cases"]
        assert all("uniform" in case["name"] for case in report["cases"])

    def test_filter_with_no_match_raises(self):
        with pytest.raises(ValueError):
            run_bench(quick=True, repeats=1, warmup=0, name_filter="zebra")


class TestStreamBench:
    @pytest.fixture(scope="class")
    def stream_report(self):
        return run_stream_bench(
            seed=0, num_problems=20, num_jobs=4, repeats=1, backends=["serial"]
        )

    def test_report_is_schema_valid(self, stream_report):
        validate_stream_report(stream_report)
        assert stream_report["schema"] == STREAM_SCHEMA

    def test_throughput_is_positive(self, stream_report):
        backends = stream_report["backends"]
        assert [entry["backend"] for entry in backends] == ["serial"]
        for entry in backends:
            assert entry["problems_per_second"] > 0
            assert entry["jobs_per_second"] == pytest.approx(
                entry["problems_per_second"] * stream_report["num_jobs"]
            )

    def test_write_and_validate_roundtrip(self, stream_report, tmp_path):
        path = tmp_path / "BENCH_stream.json"
        write_stream_report(stream_report, str(path))
        with open(path, "r", encoding="utf-8") as handle:
            validate_stream_report(json.load(handle))

    def test_validation_rejects_drift(self, stream_report):
        bad = copy.deepcopy(stream_report)
        bad["surprise"] = True
        with pytest.raises(BenchSchemaError):
            validate_stream_report(bad)
        bad = copy.deepcopy(stream_report)
        bad["backends"].append(dict(bad["backends"][0]))
        with pytest.raises(BenchSchemaError):
            validate_stream_report(bad)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_stream_bench(
                seed=0, num_problems=5, num_jobs=4, repeats=1, backends=["gpu"]
            )

    def test_session_churn_is_recorded(self, stream_report):
        # v2 reports carry the session count; the default workload splits
        # the problems across several solve_stream calls so that per-session
        # spawn overhead (what the warm pool removes) is actually measured.
        assert stream_report["num_sessions"] >= 1


class TestStreamHistory:
    @pytest.fixture(scope="class")
    def stream_report(self):
        return run_stream_bench(
            seed=0, num_problems=20, num_jobs=4, repeats=1, backends=["serial"]
        )

    def test_append_and_read_roundtrip(self, stream_report, tmp_path):
        path = tmp_path / "BENCH_stream.jsonl"
        entry = append_stream_history(
            stream_report, str(path), timestamp="2026-08-08T00:00:00+00:00"
        )
        assert entry["schema"] == STREAM_HISTORY_SCHEMA
        entries = read_stream_history(str(path))
        assert len(entries) == 1
        assert entries[0]["report"] == stream_report

    def test_gate_passes_on_parity(self, stream_report, tmp_path):
        path = tmp_path / "h.jsonl"
        append_stream_history(stream_report, str(path))
        regressions, samples = compare_stream_history(
            stream_report, str(path), window=5, threshold=1.5
        )
        assert regressions == []
        assert samples == 1

    def test_gate_flags_a_throughput_collapse(self, stream_report, tmp_path):
        path = tmp_path / "h.jsonl"
        for _ in range(3):
            append_stream_history(stream_report, str(path))
        slow = copy.deepcopy(stream_report)
        for record in slow["backends"]:
            record["jobs_per_second"] /= 10.0
            record["problems_per_second"] /= 10.0
        regressions, _samples = compare_stream_history(
            slow, str(path), window=5, threshold=1.5
        )
        assert regressions and "serial" in regressions[0]

    def test_gate_skips_backends_without_history(self, stream_report, tmp_path):
        path = tmp_path / "h.jsonl"
        append_stream_history(stream_report, str(path))
        renamed = copy.deepcopy(stream_report)
        renamed["backends"][0]["backend"] = "process-cold"
        for record in renamed["backends"]:
            record["jobs_per_second"] /= 100.0
            record["problems_per_second"] /= 100.0
        regressions, samples = compare_stream_history(
            renamed, str(path), window=5, threshold=1.5
        )
        assert regressions == []
        assert samples == 0

    def test_corrupt_history_line_rejected(self, stream_report, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"schema": "something-else"}\n', encoding="utf-8")
        with pytest.raises(BenchSchemaError):
            compare_stream_history(stream_report, str(path))

    def test_window_and_threshold_validation(self, stream_report, tmp_path):
        path = tmp_path / "h.jsonl"
        append_stream_history(stream_report, str(path))
        with pytest.raises(ValueError):
            compare_stream_history(stream_report, str(path), window=0)
        with pytest.raises(ValueError):
            compare_stream_history(stream_report, str(path), threshold=1.0)


class TestPortfolioBenchCLI:
    def test_bench_filter_flag(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--quick",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--filter",
                "uniform",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        with open(out, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert all("uniform" in case["name"] for case in report["cases"])

    def test_bench_filter_no_match_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--quick", "--filter", "zebra", "--out", str(tmp_path / "b.json")])
        assert excinfo.value.code == 2

    def test_bench_portfolio_quick(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--quick",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--portfolio",
                "--filter",
                "^portfolio/",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "raced" in captured and "winner" in captured
        with open(out, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        validate_report(report)
        assert all(case["portfolio"] is not None for case in report["cases"])

    def test_bench_stream_flag(self, tmp_path, capsys):
        out = tmp_path / "stream.json"
        code = main(
            [
                "bench",
                "--stream",
                "--repeats",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "problems/s" in capsys.readouterr().out
        with open(out, "r", encoding="utf-8") as handle:
            validate_stream_report(json.load(handle))

    def test_bench_stream_rejects_check(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--stream", "--check", str(tmp_path / "x.json")])
        assert excinfo.value.code == 2

    def test_bench_check_rejects_portfolio_flags(self, tmp_path):
        for extra in (["--portfolio"], ["--filter", "dense"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["bench", "--check", str(tmp_path / "x.json"), *extra])
            assert excinfo.value.code == 2
