"""Unit tests for metrics, reporting and the experiment harness."""

import pytest

from repro import MultiprocessorInstance, OneIntervalInstance, Schedule, solve_multiprocessor_gap
from repro.analysis import (
    ALL_EXPERIMENTS,
    ExperimentTable,
    approximation_ratio,
    format_table,
    gap_statistics,
    power_breakdown,
    render_tables,
    run_experiment,
    schedule_summary,
)


class TestMetrics:
    def test_approximation_ratio(self):
        assert approximation_ratio(6, 3) == 2.0
        assert approximation_ratio(0, 0) == 1.0
        assert approximation_ratio(3, 0) == float("inf")
        with pytest.raises(ValueError):
            approximation_ratio(-1, 1)

    def make_schedule(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (3, 3), (4, 4)])
        return Schedule(instance=instance, assignment={0: 0, 1: 3, 2: 4})

    def test_gap_statistics_single(self):
        stats = gap_statistics(self.make_schedule())
        assert stats["num_gaps"] == 1
        assert stats["total_idle"] == 2
        assert stats["max_gap_length"] == 2

    def test_gap_statistics_multiproc(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 0), (2, 2), (0, 0)], num_processors=2
        )
        schedule = solve_multiprocessor_gap(instance).require_schedule()
        stats = gap_statistics(schedule)
        assert stats["num_gaps"] == schedule.num_gaps()

    def test_power_breakdown_totals(self):
        schedule = self.make_schedule()
        for alpha in (0.5, 3.0):
            breakdown = power_breakdown(schedule, alpha=alpha)
            assert breakdown["total"] == pytest.approx(schedule.power_cost(alpha))

    def test_schedule_summary(self):
        summary = schedule_summary(self.make_schedule(), alpha=1.0)
        assert summary["jobs_scheduled"] == 3
        assert summary["num_gaps"] == 1
        assert "power" in summary


class TestReporting:
    def test_add_row_checks_arity(self):
        table = ExperimentTable("EX", "title", columns=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_contains_all_cells(self):
        table = ExperimentTable("EX", "demo", columns=["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("beta", None)
        text = format_table(table)
        assert "alpha" in text and "1.5" in text and "-" in text
        assert text.splitlines()[0].startswith("[EX]")

    def test_column_accessor(self):
        table = ExperimentTable("EX", "demo", columns=["x"])
        table.add_row(3)
        table.add_row(4)
        assert table.column("x") == [3, 4]

    def test_render_tables_joins(self):
        t1 = ExperimentTable("E1", "one", columns=["a"])
        t2 = ExperimentTable("E2", "two", columns=["a"])
        text = render_tables([t1, t2])
        assert "[E1]" in text and "[E2]" in text


class TestExperimentHarness:
    def test_registry_contains_all_twelve(self):
        assert sorted(ALL_EXPERIMENTS) == [f"E{i}" for i in range(1, 13)] or len(ALL_EXPERIMENTS) == 12

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    @pytest.mark.parametrize("experiment_id", ["E1", "E2", "E5", "E9", "E12"])
    def test_smoke_scale_experiments_report_success(self, experiment_id):
        table = run_experiment(experiment_id, scale="smoke")
        assert table.rows, f"{experiment_id} produced no rows"
        if "match" in table.columns:
            assert all(value == "yes" for value in table.column("match"))

    def test_e3_within_bound(self):
        table = run_experiment("E3", scale="smoke")
        assert all(value == "yes" for value in table.column("within_bound"))

    def test_e6_relation_holds(self):
        table = run_experiment("E6", scale="smoke")
        assert all(value == "yes" for value in table.column("relation_holds"))
