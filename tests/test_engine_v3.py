"""Differential and cache-correctness suite for the v3 vectorized engine.

The v3 kernels carry a byte-identity contract with the v2 scalar evaluator
(same costs bit-for-bit, same choice tuples, same base stats counters), so
everything here compares *exact* equality — never approximate: the façade
envelopes across v1/v2/v3, a hypothesis sweep over random instances for
both objectives with the kernels forced on, the scalar fallback with numpy
masked out, and the disk-cache replay of v3 engine metadata (including the
kernel-engagement counters) across a simulated process boundary.

Every test in this file runs on installs without numpy too: v3-specific
paths degrade to asserting the guard rails (``EngineConfigurationError``,
``"auto"`` resolving to ``"v2"``) instead of being skipped wholesale.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Problem, solve, to_json
from repro.api import clear_solve_cache, configure_solve_cache
from repro.core import vector_kernels
from repro.core.dp_profile import IntervalDecomposition
from repro.core.exceptions import EngineConfigurationError
from repro.core.interval_dp import (
    ENGINE_VERSION,
    VECTOR_ENGINE_VERSION,
    GapObjective,
    IntervalDPEngine,
    PowerObjective,
    VectorizedDPEngine,
    build_engine,
    get_default_engine,
    resolve_engine,
    set_default_engine,
)
from repro.generators import (
    random_multiprocessor_instance,
    random_one_interval_instance,
)
from repro.runtime import DiskSolveCache, configure_disk_cache
from repro.runtime.diskcache import cache_key_digest

numpy_installed = vector_kernels.numpy_available()
needs_numpy = pytest.mark.skipif(not numpy_installed, reason="requires numpy")

FAST = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@pytest.fixture(autouse=True)
def clean_engine_state():
    """Every test starts and ends on the default selector with caches off."""
    saved = get_default_engine()
    configure_disk_cache(None)
    configure_solve_cache(256)
    clear_solve_cache()
    yield
    set_default_engine(saved)
    configure_disk_cache(None)
    configure_solve_cache(256)
    clear_solve_cache()


def differential_workload(count=12):
    """Seeded mixed gap/power workload over both engine-backed shapes."""
    problems = []
    for seed in range(count):
        if seed % 2 == 0:
            instance = random_one_interval_instance(
                num_jobs=6, horizon=16, max_window=5, seed=seed
            )
        else:
            instance = random_multiprocessor_instance(
                num_jobs=8, num_processors=2, horizon=12, max_window=5, seed=seed
            )
        if seed % 3 == 0:
            problems.append(
                Problem(objective="power", instance=instance, alpha=1.0 + seed % 3)
            )
        else:
            problems.append(Problem(objective="gaps", instance=instance))
    return problems


def envelope_and_engine_meta(problem):
    """Canonical envelope JSON with the engine-identity block split out.

    The engine block names the evaluator (version, numpy, stats), which
    *must* differ across engines; everything else — status, value,
    schedule, exactness — must not.
    """
    result = solve(problem)
    data = json.loads(to_json(result))
    meta = data["extra"].pop("engine")
    return json.dumps(data, sort_keys=True), meta


def build_decomp(instance):
    return IntervalDecomposition(instance)


# ---------------------------------------------------------------------------
# the differential workload: v3 == v2 == v1, byte for byte
# ---------------------------------------------------------------------------
class TestEnvelopeIdentity:
    def engine_sweep(self):
        engines = ["v1", "v2"]
        if numpy_installed:
            engines.append("v3")
        return engines

    def test_all_engines_agree_byte_for_byte(self):
        envelopes = {}
        metas = {}
        for engine in self.engine_sweep():
            set_default_engine(engine)
            clear_solve_cache()  # no engine may answer from another's cache
            pair = [envelope_and_engine_meta(p) for p in differential_workload()]
            envelopes[engine] = [env for env, _meta in pair]
            metas[engine] = [meta for _env, meta in pair]
        assert envelopes["v2"] == envelopes["v1"]
        if numpy_installed:
            assert envelopes["v3"] == envelopes["v2"]
            # The kernels account work analytically: the base counters of a
            # v3 run match the scalar evaluator's exactly; only the
            # kernel-dispatch counters are extra.
            for v3_meta, v2_meta in zip(metas["v3"], metas["v2"]):
                v3_stats = dict(v3_meta["stats"])
                for key in ("vector_nodes", "vector_fallback_nodes", "vector_splits"):
                    v3_stats.pop(key)
                assert v3_stats == v2_meta["stats"]

    def test_engine_meta_names_the_engine(self):
        set_default_engine("v2")
        _env, meta = envelope_and_engine_meta(differential_workload(1)[0])
        assert meta["version"] == "2.0"
        if numpy_installed:
            set_default_engine("v3")
            clear_solve_cache()
            _env, meta = envelope_and_engine_meta(differential_workload(1)[0])
            assert meta["version"] == VECTOR_ENGINE_VERSION
            assert meta["numpy"] == vector_kernels.numpy_version()


# ---------------------------------------------------------------------------
# hypothesis: random instances, kernels forced on, both objectives
# ---------------------------------------------------------------------------
@needs_numpy
class TestPropertyIdentity:
    def assert_engines_identical(self, instance, objective_factory):
        p = instance.num_processors
        decomp_v2 = build_decomp(instance)
        decomp_v3 = build_decomp(instance)
        scalar = IntervalDPEngine(decomp_v2, objective_factory(p))
        # vector_min_work=0 forces the kernels even where the size
        # heuristic would fall back, so the sweep exercises the dense
        # gap kernels too, not just the power default.
        vector = build_engine(
            decomp_v3, objective_factory(p), "v3", vector_min_work=0
        )
        assert isinstance(vector, VectorizedDPEngine)
        a, b = scalar.solve(), vector.solve()
        assert a.feasible == b.feasible
        assert repr(a.value) == repr(b.value)  # bit-identical, incl. floats
        assert a.assignment == b.assignment
        # With the kernels forced on, every branch node that combines
        # split children goes through them — none may silently fall back
        # (tiny instances legitimately have no branch nodes at all).
        assert vector.stats.vector_fallback_nodes == 0

    @FAST
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        num_jobs=st.integers(min_value=1, max_value=9),
        num_processors=st.integers(min_value=1, max_value=3),
    )
    def test_gap_objective(self, seed, num_jobs, num_processors):
        instance = random_multiprocessor_instance(
            num_jobs=num_jobs,
            num_processors=num_processors,
            horizon=10,
            max_window=4,
            seed=seed,
        )
        self.assert_engines_identical(instance, lambda p: GapObjective(p))

    @FAST
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        num_jobs=st.integers(min_value=1, max_value=9),
        num_processors=st.integers(min_value=1, max_value=3),
        alpha=st.sampled_from([0.5, 1.0, 2.0, 3.7]),
    )
    def test_power_objective(self, seed, num_jobs, num_processors, alpha):
        instance = random_multiprocessor_instance(
            num_jobs=num_jobs,
            num_processors=num_processors,
            horizon=10,
            max_window=4,
            seed=seed,
        )
        self.assert_engines_identical(instance, lambda p: PowerObjective(p, alpha))


# ---------------------------------------------------------------------------
# forced fallback: numpy masked out
# ---------------------------------------------------------------------------
class TestForcedFallback:
    def test_auto_degrades_to_v2_and_v3_is_refused(self, monkeypatch):
        monkeypatch.setattr(vector_kernels, "_DISABLED", True)
        assert not vector_kernels.numpy_available()
        assert resolve_engine("auto") == "v2"
        with pytest.raises(EngineConfigurationError):
            set_default_engine("v3")
        instance = random_multiprocessor_instance(
            num_jobs=8, num_processors=2, horizon=12, seed=3
        )
        with pytest.raises(EngineConfigurationError):
            build_engine(build_decomp(instance), GapObjective(2), "v3")

    def test_scalar_path_is_exercised_and_identical(self, monkeypatch):
        instance = random_multiprocessor_instance(
            num_jobs=10, num_processors=2, horizon=14, seed=5
        )
        decomp = build_decomp(instance)
        reference = IntervalDPEngine(build_decomp(instance), PowerObjective(2, 2.0))
        expected = reference.solve()
        monkeypatch.setattr(vector_kernels, "_DISABLED", True)
        # A directly-constructed v3 evaluator without numpy must not crash:
        # it runs the whole solve on the inherited scalar path.
        engine = VectorizedDPEngine(decomp, PowerObjective(2, 2.0), vector_min_work=0)
        outcome = engine.solve()
        assert outcome.feasible == expected.feasible
        assert repr(outcome.value) == repr(expected.value)
        assert outcome.assignment == expected.assignment
        # Every branch node is accounted as a fallback (numpy unavailable),
        # none as kernel-combined; the base counters match the scalar
        # evaluator's exactly.
        assert engine.stats.vector_nodes == 0
        assert engine.stats.vector_splits == 0
        assert engine.stats.vector_fallback_nodes > 0
        v3_stats = engine.stats.as_dict()
        for key in ("vector_nodes", "vector_fallback_nodes", "vector_splits"):
            v3_stats.pop(key)
        assert v3_stats == reference.stats.as_dict()

    def test_facade_answers_identically_without_numpy(self, monkeypatch):
        problems = differential_workload(6)
        set_default_engine("auto")
        with_numpy = [envelope_and_engine_meta(p)[0] for p in problems]
        monkeypatch.setattr(vector_kernels, "_DISABLED", True)
        clear_solve_cache()
        without_numpy = [envelope_and_engine_meta(p)[0] for p in problems]
        assert without_numpy == with_numpy


# ---------------------------------------------------------------------------
# disk-cache correctness across the ENGINE_VERSION bump
# ---------------------------------------------------------------------------
class TestCacheCorrectness:
    def test_engine_version_bumped_for_v3(self):
        # The namespace bump is the disk-cache invalidation mechanism: any
        # pre-v3 install's entries become invisible, never replayed.
        assert ENGINE_VERSION == "3.0"

    def test_pre_v3_entries_are_cold_misses(self, tmp_path, monkeypatch):
        key = (("gaps",), (2, (0, 5), ((0, 3), (1, 4))))
        entry = (True, 1, ((0, 1), (1, 3)), {"name": "interval-dp", "version": "2.0"})
        # Write the entry as a pre-upgrade process would have: under the
        # old engine-version namespace and stamped with the old version.
        monkeypatch.setattr("repro.runtime.diskcache.ENGINE_VERSION", "2.0")
        old = DiskSolveCache(str(tmp_path))
        old.put(key, entry)
        assert old.get(key) == entry
        monkeypatch.undo()
        upgraded = DiskSolveCache(str(tmp_path))
        assert upgraded.get(key) is None  # cold miss, not a stale replay
        stats = upgraded.stats()
        assert stats["entries"] == 0 and stats["stale_entries"] == 1
        # Same-version roundtrip still works in the new namespace.
        upgraded.put(key, entry)
        assert upgraded.get(key) == entry

    @needs_numpy
    def test_v3_disk_hit_replays_kernel_stats_verbatim(self, tmp_path):
        configure_disk_cache(str(tmp_path))
        set_default_engine("v3")
        instance = random_multiprocessor_instance(
            num_jobs=12, num_processors=2, horizon=14, seed=9
        )
        problem = Problem(objective="power", instance=instance, alpha=2.0)
        first = solve(problem)
        meta = first.extra["engine"]
        assert meta["version"] == VECTOR_ENGINE_VERSION
        assert meta["numpy"] == vector_kernels.numpy_version()
        assert meta["stats"]["vector_nodes"] > 0  # the kernels really ran
        # Simulate a new process: drop the memory tier, keep the disk tier,
        # and flip the default engine — a verbatim replay must still carry
        # the original v3 metadata, not the new process's configuration.
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        set_default_engine("v2")
        second = solve(problem)
        assert to_json(second) == to_json(first)
        assert second.extra["engine"] == meta
        assert second.extra["engine"]["stats"]["vector_nodes"] == (
            meta["stats"]["vector_nodes"]
        )

    @needs_numpy
    def test_v2_and_v3_share_cache_entries_safely(self, tmp_path):
        # Byte-identity makes the engines interchangeable *within* the
        # shared version namespace: a v2-populated entry answers a v3
        # solve with the identical envelope (modulo the replayed meta).
        configure_disk_cache(str(tmp_path))
        instance = random_one_interval_instance(
            num_jobs=8, horizon=16, max_window=5, seed=4
        )
        problem = Problem(objective="gaps", instance=instance)
        set_default_engine("v2")
        first = solve(problem)
        configure_solve_cache(0)
        configure_solve_cache(256)
        clear_solve_cache()
        set_default_engine("v3")
        second = solve(problem)
        assert to_json(second) == to_json(first)

    def test_cache_key_digest_is_stable(self):
        key = (("power", 2.0), (1, (0, 3)))
        assert cache_key_digest(key) == cache_key_digest(key)
