"""Unit tests for the candidate-time-column computation."""

from repro import Job, MultiprocessorInstance, OneIntervalInstance
from repro.core.timeutils import candidate_times, candidate_times_for_jobs


class TestCandidateTimes:
    def test_small_horizon_uses_every_time(self):
        jobs = [Job(0, 3), Job(2, 6)]
        assert candidate_times_for_jobs(jobs) == list(range(0, 7))

    def test_empty_job_list(self):
        assert candidate_times_for_jobs([]) == []

    def test_full_horizon_flag(self):
        jobs = [Job(0, 500)]
        times = candidate_times_for_jobs(jobs, use_full_horizon=True)
        assert times == list(range(0, 501))

    def test_sparse_horizon_restricts_to_neighbourhoods(self):
        jobs = [Job(0, 2), Job(1000, 1002)]
        times = candidate_times_for_jobs(jobs)
        assert 0 in times and 1002 in times
        assert 500 not in times
        # Within distance n of a release or a deadline.
        n = len(jobs)
        for t in times:
            assert any(
                job.release - n <= t <= job.release + n
                or job.deadline - n <= t <= job.deadline + n
                for job in jobs
            )

    def test_candidates_are_sorted_and_unique(self):
        jobs = [Job(0, 100), Job(3, 120), Job(90, 200)]
        times = candidate_times_for_jobs(jobs)
        assert times == sorted(set(times))

    def test_instance_wrappers(self):
        one = OneIntervalInstance.from_pairs([(0, 4), (2, 5)])
        multi = MultiprocessorInstance.from_pairs([(0, 4), (2, 5)], num_processors=2)
        assert candidate_times(one) == candidate_times(multi)

    def test_candidates_include_all_releases_and_deadlines(self):
        jobs = [Job(0, 3), Job(400, 405), Job(800, 808)]
        times = set(candidate_times_for_jobs(jobs))
        for job in jobs:
            assert job.release in times
            assert job.deadline in times
