"""Tests for the repro.perf benchmark subsystem (runner, schema, CLI)."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA,
    BenchCase,
    BenchSchemaError,
    default_cases,
    run_bench,
    time_callable,
    validate_report,
    validate_report_file,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    """One shared quick bench run (repeats=1, no warmup) for the module."""
    return run_bench(quick=True, repeats=1, warmup=0)


class TestRunner:
    def test_quick_report_is_schema_valid(self, quick_report):
        validate_report(quick_report)
        assert quick_report["schema"] == BENCH_SCHEMA
        assert quick_report["quick"] is True

    def test_every_case_has_baseline_and_speedup(self, quick_report):
        for case in quick_report["cases"]:
            assert case["baseline"] is not None
            assert case["speedup"] > 0
            assert case["engine_stats"]["states_computed"] > 0

    def test_quick_matrix_is_a_prefix_of_the_full_matrix(self):
        quick = [case.name for case in default_cases(quick=True)]
        full = [case.name for case in default_cases(quick=False)]
        assert full[: len(quick)] == quick
        assert len(full) > len(quick)
        # The headline medium instances are in the full matrix.
        assert any(
            case.num_jobs >= 40 and case.num_processors >= 3
            for case in default_cases(quick=False)
        )

    def test_engine_only_mode_has_null_baseline(self):
        cases = [BenchCase("gap/tiny", "gaps", "uniform", 4, 1, 6)]
        report = run_bench(quick=True, repeats=1, warmup=0, baseline=False, cases=cases)
        validate_report(report)
        assert report["cases"][0]["baseline"] is None
        assert report["cases"][0]["speedup"] is None

    def test_bad_timing_discipline_rejected(self):
        with pytest.raises(ValueError):
            run_bench(repeats=0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            BenchCase("x", "gaps", "nope", 4, 1, 6).make_instance(0)

    def test_time_callable_counts_runs(self):
        timing = time_callable(lambda: sum(range(50)), repeats=3, warmup=1)
        assert len(timing["runs"]) == 3
        assert timing["best"] <= timing["median"] <= max(timing["runs"])


class TestSchemaValidation:
    def test_missing_top_level_key_is_drift(self, quick_report):
        broken = dict(quick_report)
        del broken["engine"]
        with pytest.raises(BenchSchemaError, match="missing keys"):
            validate_report(broken)

    def test_unexpected_key_is_drift(self, quick_report):
        broken = dict(quick_report)
        broken["surprise"] = 1
        with pytest.raises(BenchSchemaError, match="unexpected keys"):
            validate_report(broken)

    def test_wrong_schema_id_is_drift(self, quick_report):
        broken = dict(quick_report)
        broken["schema"] = "repro.perf/bench-dp/v999"
        with pytest.raises(BenchSchemaError, match="schema id"):
            validate_report(broken)

    def test_case_drift_detected(self, quick_report):
        broken = json.loads(json.dumps(quick_report))
        del broken["cases"][0]["speedup"]
        with pytest.raises(BenchSchemaError, match="missing keys"):
            validate_report(broken)

    def test_duplicate_case_names_rejected(self, quick_report):
        broken = json.loads(json.dumps(quick_report))
        broken["cases"].append(broken["cases"][0])
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_report(broken)

    def test_write_and_validate_roundtrip(self, quick_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(quick_report, str(path))
        data = validate_report_file(str(path))
        assert data == json.loads(path.read_text())


class TestBenchCLI:
    def test_bench_quick_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        code = main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup", "0"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "speedup" in captured
        validate_report_file(str(out))

    def test_bench_check_accepts_valid_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        main(["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup", "0"])
        capsys.readouterr()
        assert main(["bench", "--check", str(out)]) == 0
        assert "schema ok" in capsys.readouterr().out

    def test_bench_check_fails_on_drift(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        main(["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup", "0"])
        data = json.loads(out.read_text())
        del data["cases"]
        out.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["bench", "--check", str(out)]) == 1
        assert "schema drift" in capsys.readouterr().out

    def test_bench_check_rejects_conflicting_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", "x.json", "--quick"])

    def test_bench_check_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", str(tmp_path / "missing.json")])

    def test_committed_report_is_schema_valid(self):
        # BENCH_dp.json at the repo root is a released artifact; CI fails on
        # drift, and so does the tier-1 suite.
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "BENCH_dp.json")
        data = validate_report_file(root)
        assert data["quick"] is False
        medium = [
            case
            for case in data["cases"]
            if case["num_jobs"] >= 40 and case["num_processors"] >= 3
        ]
        assert medium, "full report must include the medium instances"
        assert all(case["speedup"] >= 1.5 for case in medium)


class TestFuzzProfile:
    def test_fuzz_profile_prints_engine_stats(self, capsys):
        code = main(["fuzz", "--seed", "2", "--n", "12", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine profile:" in out
        assert "states_computed" in out
        assert "memo_hits" in out
