"""Tests for the repro.perf benchmark subsystem (runner, schema, gate, CLI)."""

import json
import statistics

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_SCHEMA,
    BenchCase,
    BenchSchemaError,
    compare_reports,
    default_cases,
    run_bench,
    time_callable,
    validate_report,
    validate_report_file,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    """One shared quick bench run (repeats=1, no warmup) for the module."""
    return run_bench(quick=True, repeats=1, warmup=0)


class TestRunner:
    def test_quick_report_is_schema_valid(self, quick_report):
        validate_report(quick_report)
        assert quick_report["schema"] == BENCH_SCHEMA
        assert quick_report["quick"] is True

    def test_every_case_has_all_three_columns(self, quick_report):
        seedless = {c.name for c in default_cases(quick=True) if not c.seed_baseline}
        for case in quick_report["cases"]:
            if case["name"] in seedless:
                assert case["baseline"] is None and case["speedup"] is None
            else:
                assert case["baseline"] is not None
                assert case["speedup"] > 0
            assert case["engine_v1"] is not None
            assert case["speedup_vs_v1"] > 0
            assert case["engine_stats"]["states_computed"] > 0

    def test_quick_matrix_covers_the_decomposed_column(self, quick_report):
        decomposed = [
            case for case in quick_report["cases"] if case["decomposed"] is not None
        ]
        assert decomposed, "quick matrix must exercise the decomposition path"
        for case in decomposed:
            assert case["family"] == "splittable"
            assert case["speedup_vs_mono"] > 0
        plain = [case for case in quick_report["cases"] if case["decomposed"] is None]
        assert all(case["speedup_vs_mono"] is None for case in plain)

    def test_quick_matrix_is_a_prefix_of_the_full_matrix(self):
        quick = [case.name for case in default_cases(quick=True)]
        full = [case.name for case in default_cases(quick=False)]
        assert full[: len(quick)] == quick
        assert len(full) > len(quick)
        # The headline medium and large instances are in the full matrix.
        assert any(
            case.num_jobs >= 40 and case.num_processors >= 3
            for case in default_cases(quick=False)
        )
        assert any(case.num_jobs >= 60 for case in default_cases(quick=False))
        assert any(case.num_processors >= 4 for case in default_cases(quick=False))

    def test_engine_only_mode_has_null_columns(self):
        cases = [BenchCase("gap/tiny", "gaps", "uniform", 4, 1, 6)]
        report = run_bench(
            quick=True,
            repeats=1,
            warmup=0,
            baseline=False,
            compare_v1=False,
            cases=cases,
        )
        validate_report(report)
        case = report["cases"][0]
        assert case["baseline"] is None and case["speedup"] is None
        assert case["engine_v1"] is None and case["speedup_vs_v1"] is None

    def test_case_level_seed_baseline_skip(self):
        cases = [
            BenchCase("gap/tiny", "gaps", "uniform", 4, 1, 6, seed_baseline=False)
        ]
        report = run_bench(quick=True, repeats=1, warmup=0, cases=cases)
        case = report["cases"][0]
        assert case["baseline"] is None and case["speedup"] is None
        assert case["engine_v1"] is not None  # v1 comparison still runs

    def test_bad_timing_discipline_rejected(self):
        with pytest.raises(ValueError):
            run_bench(repeats=0)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            BenchCase("x", "gaps", "nope", 4, 1, 6).make_instance(0)

    def test_time_callable_counts_runs(self):
        timing = time_callable(lambda: sum(range(50)), repeats=3, warmup=1)
        assert len(timing["runs"]) == 3
        assert timing["best"] <= timing["median"] <= max(timing["runs"])


class TestSchemaValidation:
    def test_missing_top_level_key_is_drift(self, quick_report):
        broken = dict(quick_report)
        del broken["engine"]
        with pytest.raises(BenchSchemaError, match="missing keys"):
            validate_report(broken)

    def test_unexpected_key_is_drift(self, quick_report):
        broken = dict(quick_report)
        broken["surprise"] = 1
        with pytest.raises(BenchSchemaError, match="unexpected keys"):
            validate_report(broken)

    def test_wrong_schema_id_is_drift(self, quick_report):
        broken = dict(quick_report)
        broken["schema"] = "repro.perf/bench-dp/v999"
        with pytest.raises(BenchSchemaError, match="schema id"):
            validate_report(broken)

    def test_old_v1_schema_id_is_drift(self, quick_report):
        broken = dict(quick_report)
        broken["schema"] = "repro.perf/bench-dp/v1"
        with pytest.raises(BenchSchemaError, match="schema id"):
            validate_report(broken)

    def test_case_drift_detected(self, quick_report):
        broken = json.loads(json.dumps(quick_report))
        del broken["cases"][0]["speedup"]
        with pytest.raises(BenchSchemaError, match="missing keys"):
            validate_report(broken)

    def test_v1_column_without_ratio_is_drift(self, quick_report):
        broken = json.loads(json.dumps(quick_report))
        broken["cases"][0]["speedup_vs_v1"] = None
        with pytest.raises(BenchSchemaError, match="speedup_vs_v1"):
            validate_report(broken)

    def test_duplicate_case_names_rejected(self, quick_report):
        broken = json.loads(json.dumps(quick_report))
        broken["cases"].append(broken["cases"][0])
        with pytest.raises(BenchSchemaError, match="duplicate"):
            validate_report(broken)

    def test_write_and_validate_roundtrip(self, quick_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(quick_report, str(path))
        data = validate_report_file(str(path))
        assert data == json.loads(path.read_text())


def _gateable_report(report, drop_v1=False):
    """A deep copy with medians floored above the noise floor (and the v1
    column optionally removed, forcing the absolute-median fallback)."""
    copied = json.loads(json.dumps(report))
    for case in copied["cases"]:
        case["engine"]["median"] = max(case["engine"]["median"], 0.01)
        if drop_v1:
            case["engine_v1"] = None
            case["speedup_vs_v1"] = None
    return copied


class TestRegressionGate:
    def test_identical_reports_pass(self, quick_report):
        committed = _gateable_report(quick_report)
        fresh = json.loads(json.dumps(committed))
        outcome = compare_reports(fresh, committed)
        assert outcome["regressions"] == []
        assert outcome["compared"]
        assert outcome["unmatched"] == []

    def test_shrunk_v1_speedup_is_a_regression(self, quick_report):
        # The primary metric is the within-run v2-over-v1 speedup from
        # best-of-runs (machine independent); v2 slowing to half its
        # advantage must flag.
        committed = _gateable_report(quick_report)
        fresh = json.loads(json.dumps(committed))
        for case in fresh["cases"]:
            case["engine"]["best"] *= 2.0
        outcome = compare_reports(fresh, committed, threshold=1.25)
        assert outcome["regressions"]
        worst = outcome["regressions"][0]
        assert worst["metric"] == "speedup_vs_v1"
        assert worst["ratio"] == pytest.approx(2.0)

    def test_uniformly_slower_machine_does_not_flag(self, quick_report):
        # Same v2-over-v1 advantage, 3x slower absolute timings (a slower
        # CI runner): not a regression.
        committed = _gateable_report(quick_report)
        fresh = json.loads(json.dumps(committed))
        for case in fresh["cases"]:
            for block in (case["engine"], case["engine_v1"]):
                block["best"] *= 3.0
                block["median"] *= 3.0
        assert compare_reports(fresh, committed)["regressions"] == []

    def test_median_fallback_without_v1_column(self, quick_report):
        committed = _gateable_report(quick_report, drop_v1=True)
        fresh = json.loads(json.dumps(committed))
        for case in fresh["cases"]:
            case["engine"]["median"] *= 2.0
        outcome = compare_reports(fresh, committed, threshold=1.25)
        assert outcome["regressions"]
        worst = outcome["regressions"][0]
        assert worst["metric"] == "engine_median"
        assert worst["ratio"] == pytest.approx(2.0)

    def test_speedup_never_flags(self, quick_report):
        committed = _gateable_report(quick_report, drop_v1=True)
        fresh = json.loads(json.dumps(committed))
        for case in fresh["cases"]:
            case["engine"]["median"] *= 0.5
        assert compare_reports(fresh, committed)["regressions"] == []

    def test_noise_floor_skips_micro_cases(self, quick_report):
        committed = _gateable_report(quick_report)
        fresh = json.loads(json.dumps(committed))
        for case in fresh["cases"]:
            case["engine"]["best"] *= 100.0
        outcome = compare_reports(fresh, committed, min_median=1e9)
        assert outcome["regressions"] == []
        assert set(outcome["skipped"]) == {c["name"] for c in committed["cases"]}

    def test_unmatched_cases_reported_both_ways(self, quick_report):
        committed = _gateable_report(quick_report)
        fresh = json.loads(json.dumps(committed))
        fresh["cases"][0]["name"] = "gap/brand-new-case"
        outcome = compare_reports(fresh, committed)
        assert "gap/brand-new-case" in outcome["unmatched"]
        assert committed["cases"][0]["name"] in outcome["unmatched"]

    def test_bad_threshold_rejected(self, quick_report):
        with pytest.raises(ValueError):
            compare_reports(quick_report, quick_report, threshold=0.0)


class TestBenchCLI:
    def test_bench_quick_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_smoke.json"
        code = main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup", "0"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "v2" in captured and "seed" in captured
        validate_report_file(str(out))

    def test_bench_check_accepts_valid_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        main(["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup", "0"])
        capsys.readouterr()
        assert main(["bench", "--check", str(out)]) == 0
        assert "schema ok" in capsys.readouterr().out

    def test_bench_check_fails_on_drift(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        main(["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup", "0"])
        data = json.loads(out.read_text())
        del data["cases"]
        out.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["bench", "--check", str(out)]) == 1
        assert "schema drift" in capsys.readouterr().out

    def test_bench_check_rejects_conflicting_flags(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", "x.json", "--quick"])

    def test_bench_check_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", str(tmp_path / "missing.json")])

    def test_bench_compare_passes_against_itself(self, tmp_path, capsys):
        committed = tmp_path / "committed.json"
        main(
            ["bench", "--quick", "--out", str(committed), "--repeats", "1",
             "--warmup", "0", "--no-v1", "--no-baseline"]
        )
        capsys.readouterr()
        out = tmp_path / "fresh.json"
        code = main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup",
             "0", "--no-v1", "--no-baseline", "--compare", str(committed),
             "--threshold", "1000"]
        )
        assert code == 0
        assert "regression gate" in capsys.readouterr().out

    def test_bench_compare_fails_on_regression(self, tmp_path, capsys):
        committed = tmp_path / "committed.json"
        main(
            ["bench", "--quick", "--out", str(committed), "--repeats", "1",
             "--warmup", "0", "--no-v1", "--no-baseline"]
        )
        # Shrink the committed medians so the fresh run regresses massively
        # on every case above the noise floor.
        data = json.loads(committed.read_text())
        for case in data["cases"]:
            case["engine"]["median"] = 0.006
        committed.write_text(json.dumps(data))
        capsys.readouterr()
        out = tmp_path / "fresh.json"
        code = main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1", "--warmup",
             "0", "--no-v1", "--no-baseline", "--compare", str(committed),
             "--threshold", "0.0000001"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_threshold_requires_compare(self):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--threshold", "2.0"])

    def test_bench_append_writes_history_line(self, tmp_path, capsys):
        from repro.perf import read_history

        out = tmp_path / "bench.json"
        history = tmp_path / "HISTORY.jsonl"
        for _ in range(2):
            code = main(
                ["bench", "--quick", "--out", str(out), "--repeats", "1",
                 "--warmup", "0", "--no-v1", "--no-baseline",
                 "--append", str(history)]
            )
            assert code == 0
        assert "history appended" in capsys.readouterr().out
        entries = read_history(str(history))
        assert len(entries) == 2
        assert all(entry["quick"] for entry in entries)

    def test_bench_compare_accepts_history_file(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        history = tmp_path / "HISTORY.jsonl"
        main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1",
             "--warmup", "0", "--no-v1", "--no-baseline", "--append", str(history)]
        )
        capsys.readouterr()
        code = main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1",
             "--warmup", "0", "--no-v1", "--no-baseline",
             "--compare", str(history), "--threshold", "1000",
             "--append", str(history)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "latest history entry" in captured
        assert "regression gate" in captured

    def test_bench_check_rejects_append(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", "x.json", "--append", "HISTORY.jsonl"])

    def test_bench_median_window_gates_on_rolling_reference(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        history = tmp_path / "HISTORY.jsonl"
        for _ in range(2):
            main(
                ["bench", "--quick", "--out", str(out), "--repeats", "1",
                 "--warmup", "0", "--no-v1", "--no-baseline",
                 "--append", str(history)]
            )
        capsys.readouterr()
        code = main(
            ["bench", "--quick", "--out", str(out), "--repeats", "1",
             "--warmup", "0", "--no-v1", "--no-baseline",
             "--compare", str(history), "--median-window", "5",
             "--threshold", "1000"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "rolling median of last 2 entries" in captured
        assert "regression gate" in captured

    def test_bench_median_window_requires_compare(self):
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--median-window", "3"])

    def test_bench_median_window_rejects_plain_report(self, tmp_path, capsys):
        committed = tmp_path / "committed.json"
        main(
            ["bench", "--quick", "--out", str(committed), "--repeats", "1",
             "--warmup", "0", "--no-v1", "--no-baseline"]
        )
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(
                ["bench", "--quick", "--repeats", "1", "--warmup", "0",
                 "--compare", str(committed), "--median-window", "2"]
            )

    def test_bench_check_rejects_median_window(self):
        with pytest.raises(SystemExit):
            main(["bench", "--check", "x.json", "--median-window", "2"])

    def test_committed_report_is_schema_valid(self):
        # BENCH_dp.json at the repo root is a released artifact; CI fails on
        # drift, and so does the tier-1 suite.
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "BENCH_dp.json")
        data = validate_report_file(root)
        assert data["quick"] is False
        medium = [
            case
            for case in data["cases"]
            if case["num_jobs"] >= 40 and case["num_processors"] >= 3
        ]
        assert medium, "full report must include the medium instances"
        exact = [case for case in medium if case["value"] is not None]
        assert exact, "full report must include exactly-solved n >= 40 cases"
        # Acceptance: engine v2 at least doubles the v1 engine's median
        # across the n >= 40 exact cases that carry the v1 column (the
        # periodic splittable cases skip it), and every one of them improves
        # substantially on its own.
        ratios = [
            case["speedup_vs_v1"]
            for case in exact
            if case["speedup_vs_v1"] is not None
        ]
        assert ratios
        assert statistics.median(ratios) >= 2.0
        assert all(ratio >= 1.5 for ratio in ratios)
        # The frozen seed baseline column keeps the full trajectory.
        seeded = [case for case in exact if case["baseline"] is not None]
        assert seeded and all(case["speedup"] >= 1.5 for case in seeded)
        # Acceptance for the decomposition PR: on the large splittable
        # families with process-backend component solves, the decomposed
        # facade beats the monolithic v2 engine by >= 1.5x wall clock.
        headline = [
            case
            for case in data["cases"]
            if case["family"] == "splittable" and case["num_jobs"] >= 60
        ]
        assert headline, "full report must include the large splittable cases"
        assert all(case["speedup_vs_mono"] >= 1.5 for case in headline)
        # Acceptance for the v3 vectorization PR: the committed report was
        # produced with numpy, and on the n >= 60 exact cases where the
        # kernels engaged (vector_nodes > 0 — the objective-aware size
        # heuristic keeps gap and p = 1 tables on the scalar path, which
        # is parity by design), v3 at least doubles the v2 median.
        assert data["environment"]["numpy"] is not None
        large = [
            case
            for case in data["cases"]
            if case["num_jobs"] >= 60
            and case["value"] is not None
            and case["engine_v3"] is not None
        ]
        assert large, "full report must carry the v3 column on n >= 60 exact cases"
        engaged = [
            case for case in large if case["engine_v3_stats"]["vector_nodes"] > 0
        ]
        assert engaged, "the kernels must engage on the large power cases"
        assert statistics.median(
            [case["speedup_vs_v2"] for case in engaged]
        ) >= 2.0
        fallback = [
            case for case in large if case["engine_v3_stats"]["vector_nodes"] == 0
        ]
        # Fallback cases ride the scalar path: no regression beyond noise.
        assert all(case["speedup_vs_v2"] >= 0.75 for case in fallback)


class TestFuzzProfile:
    def test_fuzz_profile_prints_engine_stats(self, capsys):
        code = main(["fuzz", "--seed", "2", "--n", "12", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine profile:" in out
        assert "states_computed" in out
        assert "memo_hits" in out
