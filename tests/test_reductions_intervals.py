"""Tests for the Theorem 7/8 interval gadgets and the Section 2 arithmetic view."""

import pytest

from repro import MultiIntervalInstance, MultiprocessorInstance, solve_multiprocessor_gap
from repro.core.brute_force import brute_force_gap_multi_interval
from repro.core.exceptions import InvalidInstanceError
from repro.core.feasibility import is_feasible
from repro.reductions import (
    build_three_unit_gadget,
    build_two_interval_gadget,
    multiprocessor_as_multi_interval,
)
from repro.reductions.multiproc_as_intervals import gap_correspondence


@pytest.fixture
def three_interval_instance() -> MultiIntervalInstance:
    """Two jobs with three unit intervals each plus one simple job."""
    return MultiIntervalInstance.from_time_lists(
        [[0, 4, 8], [1, 5, 9], [4, 5]]
    )


class TestTwoIntervalGadget:
    def test_every_job_has_at_most_two_intervals(self, three_interval_instance):
        gadget = build_two_interval_gadget(three_interval_instance)
        assert gadget.max_intervals() <= 2

    def test_jobs_with_two_intervals_pass_through(self):
        source = MultiIntervalInstance.from_time_lists([[0, 5], [1, 2]])
        gadget = build_two_interval_gadget(source)
        assert gadget.instance.num_jobs == 2
        assert gadget.dummy_jobs == []

    def test_gadget_is_feasible_when_source_is(self, three_interval_instance):
        assert is_feasible(three_interval_instance)
        gadget = build_two_interval_gadget(three_interval_instance)
        assert is_feasible(gadget.instance)

    def test_optimum_preserved_up_to_extra_block(self, three_interval_instance):
        gadget = build_two_interval_gadget(three_interval_instance)
        source_opt, _ = brute_force_gap_multi_interval(three_interval_instance)
        gadget_opt, _ = brute_force_gap_multi_interval(gadget.instance)
        assert source_opt <= gadget_opt <= source_opt + 1

    def test_replacement_bookkeeping(self, three_interval_instance):
        gadget = build_two_interval_gadget(three_interval_instance)
        # Job 0 has three intervals -> three replacements; job 2 passes through.
        assert len(gadget.replacement_of[0]) == 3
        assert len(gadget.replacement_of[2]) == 1

    def test_empty_source_rejected(self):
        with pytest.raises(InvalidInstanceError):
            build_two_interval_gadget(MultiIntervalInstance(jobs=[]))


class TestThreeUnitGadget:
    def test_every_job_has_at_most_three_times(self):
        source = MultiIntervalInstance.from_time_lists([[0, 3, 6, 9, 12], [1, 2]])
        gadget = build_three_unit_gadget(source)
        assert gadget.max_unit_times() <= 3

    def test_gadget_is_feasible_when_source_is(self):
        source = MultiIntervalInstance.from_time_lists([[0, 3, 6, 9], [1, 4]])
        assert is_feasible(source)
        gadget = build_three_unit_gadget(source)
        assert is_feasible(gadget.instance)

    def test_optimum_preserved_up_to_extra_block(self):
        source = MultiIntervalInstance.from_time_lists([[0, 3, 6, 9], [1, 2]])
        gadget = build_three_unit_gadget(source)
        source_opt, _ = brute_force_gap_multi_interval(source)
        gadget_opt, _ = brute_force_gap_multi_interval(gadget.instance)
        assert source_opt <= gadget_opt <= source_opt + 1

    def test_small_jobs_pass_through(self):
        source = MultiIntervalInstance.from_time_lists([[0, 5, 9]])
        gadget = build_three_unit_gadget(source)
        assert gadget.instance.num_jobs == 1
        assert gadget.dummy_jobs == []

    def test_empty_source_rejected(self):
        with pytest.raises(InvalidInstanceError):
            build_three_unit_gadget(MultiIntervalInstance(jobs=[]))


class TestArithmeticView:
    def test_job_intervals_form_arithmetic_progression(self):
        instance = MultiprocessorInstance.from_pairs([(0, 2), (1, 3)], num_processors=3)
        view = multiprocessor_as_multi_interval(instance)
        job = view.instance.jobs[0]
        intervals = job.intervals()
        assert len(intervals) == 3
        starts = [lo for lo, _hi in intervals]
        diffs = {b - a for a, b in zip(starts, starts[1:])}
        assert diffs == {view.period}

    def test_slot_mapping_roundtrip(self):
        instance = MultiprocessorInstance.from_pairs([(2, 4)], num_processors=2)
        view = multiprocessor_as_multi_interval(instance)
        for proc in (1, 2):
            for t in (2, 3, 4):
                position = view.to_multi_interval_time(proc, t)
                assert view.to_processor_time(position) == (proc, t)

    def test_gap_correspondence_relation(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (3, 4), (3, 4)], num_processors=2
        )
        solution = solve_multiprocessor_gap(instance)
        view = multiprocessor_as_multi_interval(instance)
        mp_gaps, mi_gaps, used = gap_correspondence(view, solution.require_schedule())
        assert mi_gaps == mp_gaps + used - 1

    def test_short_period_rejected(self):
        instance = MultiprocessorInstance.from_pairs([(0, 9)], num_processors=2)
        with pytest.raises(InvalidInstanceError):
            multiprocessor_as_multi_interval(instance, period=5)

    def test_empty_instance_rejected(self):
        with pytest.raises(InvalidInstanceError):
            multiprocessor_as_multi_interval(
                MultiprocessorInstance(jobs=[], num_processors=1)
            )
