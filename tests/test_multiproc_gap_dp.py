"""Unit tests for the exact multiprocessor gap solver (Theorem 1)."""

import random

import pytest

from repro import (
    InfeasibleInstanceError,
    MultiprocessorInstance,
    OneIntervalInstance,
    MultiprocessorGapSolver,
    solve_multiprocessor_gap,
)
from repro.core.brute_force import brute_force_gap_multiproc
from tests.conftest import random_window_pairs


class TestSmallInstances:
    def test_empty_instance(self):
        solution = solve_multiprocessor_gap(
            MultiprocessorInstance(jobs=[], num_processors=2)
        )
        assert solution.feasible and solution.num_gaps == 0

    def test_single_job(self):
        solution = solve_multiprocessor_gap(
            MultiprocessorInstance.from_pairs([(3, 7)], num_processors=1)
        )
        assert solution.num_gaps == 0
        assert solution.require_schedule().is_complete()

    def test_forced_gap(self):
        solution = solve_multiprocessor_gap(
            MultiprocessorInstance.from_pairs([(0, 0), (2, 2)], num_processors=1)
        )
        assert solution.num_gaps == 1

    def test_flexible_jobs_avoid_gaps(self):
        solution = solve_multiprocessor_gap(
            MultiprocessorInstance.from_pairs([(0, 5), (0, 5), (3, 8)], num_processors=1)
        )
        assert solution.num_gaps == 0

    def test_second_processor_removes_gaps(self):
        # Two jobs pinned to time 0 and one pinned to time 2: on one processor
        # this is infeasible; on two processors the optimum has one gap.
        pairs = [(0, 0), (0, 0), (2, 2)]
        single = MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        double = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        assert not solve_multiprocessor_gap(single).feasible
        solution = solve_multiprocessor_gap(double)
        assert solution.feasible and solution.num_gaps == 1

    def test_infeasible_reports_cleanly(self):
        solution = solve_multiprocessor_gap(
            MultiprocessorInstance.from_pairs([(0, 0), (0, 0)], num_processors=1)
        )
        assert not solution.feasible
        assert solution.num_gaps is None
        with pytest.raises(InfeasibleInstanceError):
            solution.require_schedule()

    def test_accepts_one_interval_instance(self):
        solution = solve_multiprocessor_gap(OneIntervalInstance.from_pairs([(0, 2), (4, 6)]))
        assert solution.num_gaps == 1

    def test_schedule_matches_reported_value(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 4), (0, 2), (3, 6), (6, 9), (8, 10)], num_processors=2
        )
        solution = solve_multiprocessor_gap(instance)
        schedule = solution.require_schedule()
        schedule.validate()
        assert schedule.num_gaps() == solution.num_gaps

    def test_staircase_property_of_output(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (0, 3), (2, 4), (4, 5)], num_processors=3
        )
        schedule = solve_multiprocessor_gap(instance).require_schedule()
        profile = schedule.occupancy_profile()
        for _job, (proc, t) in schedule.assignment.items():
            assert proc <= profile[t]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances_match_brute_force(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        p = rng.randint(1, 3)
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 9), max_window=4)
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        dp = solve_multiprocessor_gap(instance, use_full_horizon=True)
        brute, _ = brute_force_gap_multiproc(instance)
        assert (dp.num_gaps if dp.feasible else None) == brute

    @pytest.mark.parametrize("seed", range(6))
    def test_candidate_columns_do_not_change_optimum(self, seed):
        rng = random.Random(100 + seed)
        pairs = []
        for _ in range(rng.randint(2, 5)):
            r = rng.randint(0, 40)
            pairs.append((r, r + rng.randint(0, 5)))
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=2)
        restricted = solve_multiprocessor_gap(instance, use_full_horizon=False)
        brute, _ = brute_force_gap_multiproc(instance)
        assert (restricted.num_gaps if restricted.feasible else None) == brute


class TestLemma1:
    def test_staircase_stacking_is_optimal_for_tiny_instances(self):
        # Lemma 1: re-stacking jobs onto prefix processors never increases gaps,
        # so the staircase brute force equals the exhaustive brute force.
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 2), (2, 3), (3, 3)], num_processors=2
        )
        stacked, _ = brute_force_gap_multiproc(instance)
        exhaustive, _ = brute_force_gap_multiproc(instance, exhaustive_processors=True)
        assert stacked == exhaustive


class TestSolverObject:
    def test_optimal_gaps_wrapper(self):
        solver = MultiprocessorGapSolver(
            MultiprocessorInstance.from_pairs([(0, 0), (5, 5)], num_processors=1)
        )
        assert solver.optimal_gaps() == 1

    def test_tables_are_reused_between_calls(self):
        solver = MultiprocessorGapSolver(
            MultiprocessorInstance.from_pairs([(0, 3), (1, 4), (2, 6)], num_processors=2)
        )
        first = solver.solve()
        tables_after_first = solver.engine._tables
        states_after_first = solver.engine.stats.states_computed
        second = solver.solve()
        assert first.num_gaps == second.num_gaps
        # The second solve re-reads the root from the same table pass; no
        # state is recomputed.
        assert solver.engine._tables is tables_after_first
        assert solver.engine.stats.states_computed == states_after_first
