"""Certificate checkers: genuine results certify, corrupted results are caught."""

import pytest

from repro.api import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    SolveResult,
    solve,
)
from repro.core.schedule import MultiprocessorSchedule, Schedule
from repro.verify import (
    certify_result,
    independent_gap_count,
    independent_power_cost,
    recompute_value,
)


@pytest.fixture
def gap_problem():
    return Problem(
        objective="gaps",
        instance=OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)]),
    )


@pytest.fixture
def power_problem():
    return Problem(
        objective="power",
        instance=OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)]),
        alpha=2.0,
    )


@pytest.fixture
def multiproc_problem():
    return Problem(
        objective="gaps",
        instance=MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (1, 2), (5, 6)], num_processors=2
        ),
    )


class TestIndependentAccounting:
    def test_gap_count_basics(self):
        assert independent_gap_count([]) == 0
        assert independent_gap_count([3]) == 0
        assert independent_gap_count([0, 1, 2]) == 0
        assert independent_gap_count([0, 2]) == 1
        assert independent_gap_count([0, 5, 9]) == 2

    def test_power_cost_basics(self):
        assert independent_power_cost([], 3.0) == 0.0
        # one busy slot: 1 unit of work plus the first wake-up
        assert independent_power_cost([4], 3.0) == 4.0
        # short gap cheaper than sleeping: stay active
        assert independent_power_cost([0, 2], 3.0) == 2.0 + 3.0 + 1.0
        # long gap: sleep and pay alpha again
        assert independent_power_cost([0, 10], 3.0) == 2.0 + 3.0 + 3.0

    def test_agrees_with_core_accounting(self):
        from repro.core.schedule import gaps_of_busy_times, power_cost_of_busy_times

        for busy in [[0, 1, 5], [2], [], [0, 3, 4, 9, 17]]:
            assert independent_gap_count(busy) == gaps_of_busy_times(busy)
            for alpha in (0.0, 1.0, 2.5):
                assert independent_power_cost(busy, alpha) == pytest.approx(
                    power_cost_of_busy_times(busy, alpha)
                )


class TestGenuineResultsCertify:
    def test_all_solvers_all_objectives(self, gap_problem, power_problem):
        mi = Problem(
            objective="throughput",
            instance=MultiIntervalInstance.from_time_lists(
                [[0, 1], [1, 2], [5, 6], [6, 7]]
            ),
            max_gaps=2,
        )
        for problem, solver in [
            (gap_problem, "gap-dp"),
            (gap_problem, "greedy-gap"),
            (gap_problem, "online-edf"),
            (gap_problem, "brute-force-gaps"),
            (power_problem, "power-dp"),
            (power_problem, "brute-force-power"),
            (mi, "throughput-greedy"),
            (mi, "brute-force-throughput"),
        ]:
            result = solve(problem, solver=solver)
            cert = certify_result(problem, result)
            assert cert.ok, f"{solver}: {cert.issues}"
            assert cert.recomputed_value == pytest.approx(result.value)

    def test_genuine_infeasible_certifies(self):
        problem = Problem(
            objective="gaps",
            instance=OneIntervalInstance.from_pairs([(0, 0), (0, 0)]),
        )
        cert = certify_result(problem, solve(problem))
        assert cert.ok, cert.issues

    def test_multiproc_result_certifies(self, multiproc_problem):
        cert = certify_result(multiproc_problem, solve(multiproc_problem))
        assert cert.ok, cert.issues


class TestCorruptedResultsAreCaught:
    def test_tampered_value(self, gap_problem):
        result = solve(gap_problem)
        result.value = result.value + 1
        cert = certify_result(gap_problem, result)
        assert not cert.ok
        assert any("recomputed" in issue for issue in cert.issues)

    def test_job_moved_outside_window(self, gap_problem):
        result = solve(gap_problem)
        result.schedule.assignment[2] = 0  # job 2 has window (10, 13)
        cert = certify_result(gap_problem, result)
        assert not cert.ok
        assert any("disallowed" in issue for issue in cert.issues)

    def test_double_booked_time(self, gap_problem):
        result = solve(gap_problem)
        times = dict(result.schedule.assignment)
        times[1] = times[0]
        result.schedule.assignment = times
        cert = certify_result(gap_problem, result)
        assert not cert.ok
        assert any("double-booked" in issue for issue in cert.issues)

    def test_missing_job(self, gap_problem):
        result = solve(gap_problem)
        del result.schedule.assignment[0]
        cert = certify_result(gap_problem, result)
        assert not cert.ok
        assert any("not scheduled" in issue for issue in cert.issues)

    def test_unknown_job_index(self, gap_problem):
        result = solve(gap_problem)
        result.schedule.assignment[99] = 20
        cert = certify_result(gap_problem, result)
        assert not cert.ok

    def test_false_infeasibility_claim(self, gap_problem):
        fake = SolveResult(
            status="infeasible", objective="gaps", value=None, schedule=None
        )
        cert = certify_result(gap_problem, fake)
        assert not cert.ok
        assert any("matching oracle" in issue for issue in cert.issues)

    def test_feasible_claim_without_schedule(self, gap_problem):
        fake = SolveResult(status="optimal", objective="gaps", value=0, schedule=None)
        cert = certify_result(gap_problem, fake)
        assert not cert.ok

    def test_objective_mismatch(self, gap_problem):
        result = solve(gap_problem)
        result.objective = "power"
        cert = certify_result(gap_problem, result)
        assert not cert.ok

    def test_bogus_guarantee_factor(self, gap_problem):
        result = solve(gap_problem)
        result.guarantee_factor = 0.5
        cert = certify_result(gap_problem, result)
        assert not cert.ok

    def test_multiproc_invalid_processor(self, multiproc_problem):
        result = solve(multiproc_problem)
        job = next(iter(result.schedule.assignment))
        _proc, t = result.schedule.assignment[job]
        result.schedule.assignment[job] = (99, t)
        cert = certify_result(multiproc_problem, result)
        assert not cert.ok

    def test_multiproc_tampered_power(self):
        problem = Problem(
            objective="power",
            instance=MultiprocessorInstance.from_pairs(
                [(0, 1), (0, 1), (4, 5)], num_processors=2
            ),
            alpha=1.5,
        )
        result = solve(problem)
        result.value = result.value * 2 + 1
        cert = certify_result(problem, result)
        assert not cert.ok

    def test_raise_on_failure(self, gap_problem):
        result = solve(gap_problem)
        result.value = 17
        with pytest.raises(AssertionError):
            certify_result(gap_problem, result).raise_on_failure()


class TestEnvelopeInvariant:
    def test_infeasible_result_cannot_carry_value(self):
        with pytest.raises(ValueError):
            SolveResult(status="infeasible", objective="gaps", value=3, schedule=None)

    def test_infeasible_result_cannot_carry_schedule(self):
        instance = OneIntervalInstance.from_pairs([(0, 1)])
        schedule = Schedule(instance=instance, assignment={0: 0})
        with pytest.raises(ValueError):
            SolveResult(
                status="infeasible", objective="gaps", value=None, schedule=schedule
            )

    def test_throughput_budget_violation_is_caught(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [4], [9]])
        problem = Problem(objective="throughput", instance=instance, max_gaps=1)
        fake = SolveResult(
            status="approximate",
            objective="throughput",
            value=3,
            schedule=Schedule(instance=instance, assignment={0: 0, 1: 4, 2: 9}),
        )
        cert = certify_result(problem, fake)
        assert not cert.ok
        assert any("budget" in issue for issue in cert.issues)

    def test_throughput_within_budget_certifies(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [4], [9]])
        problem = Problem(objective="throughput", instance=instance, max_gaps=2)
        ok_result = SolveResult(
            status="approximate",
            objective="throughput",
            value=3,
            schedule=Schedule(instance=instance, assignment={0: 0, 1: 4, 2: 9}),
        )
        assert certify_result(problem, ok_result).ok

    def test_throughput_never_infeasible(self):
        problem = Problem(
            objective="throughput",
            instance=MultiIntervalInstance.from_time_lists([[0], [0]]),
            max_gaps=1,
        )
        fake = SolveResult(
            status="infeasible", objective="throughput", value=None, schedule=None
        )
        cert = certify_result(problem, fake)
        assert not cert.ok


class TestRecomputeValue:
    def test_throughput_counts_scheduled_jobs(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [0], [5]])
        problem = Problem(objective="throughput", instance=instance, max_gaps=1)
        result = solve(problem, solver="throughput-greedy")
        assert recompute_value(problem, result) == result.schedule.num_scheduled

    def test_none_without_schedule(self):
        problem = Problem(
            objective="gaps", instance=OneIntervalInstance.from_pairs([(0, 1)])
        )
        fake = SolveResult(status="optimal", objective="gaps", value=0, schedule=None)
        assert recompute_value(problem, fake) is None
