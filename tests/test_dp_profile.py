"""Unit tests for the shared interval-decomposition machinery of the exact DPs."""

import pytest

from repro import Job, MultiprocessorInstance
from repro.core.dp_profile import IntervalDecomposition
from repro.core.exceptions import InvalidInstanceError


@pytest.fixture
def decomposition() -> IntervalDecomposition:
    instance = MultiprocessorInstance.from_pairs(
        [(0, 3), (2, 5), (2, 8), (7, 9)], num_processors=2
    )
    return IntervalDecomposition(instance)


class TestColumns:
    def test_columns_cover_horizon_for_small_instances(self, decomposition):
        assert decomposition.columns == list(range(0, 10))
        assert decomposition.num_columns == 10

    def test_index_of_and_column_roundtrip(self, decomposition):
        for idx in range(decomposition.num_columns):
            assert decomposition.index_of(decomposition.column(idx)) == idx

    def test_first_column_after(self, decomposition):
        assert decomposition.first_column_after(3) == decomposition.index_of(4)
        assert decomposition.first_column_after(9) is None

    def test_columns_between(self, decomposition):
        indices = decomposition.columns_between(2, 4)
        assert [decomposition.column(i) for i in indices] == [2, 3, 4]
        assert decomposition.columns_between(20, 30) == []


class TestJobQueries:
    def test_deadline_order_is_by_deadline_then_release(self, decomposition):
        order = decomposition.deadline_order
        deadlines = [decomposition.jobs[j].deadline for j in order]
        assert deadlines == sorted(deadlines)

    def test_jobs_released_in_range(self, decomposition):
        released = decomposition.jobs_released_in(2, 5)
        assert set(released) == {1, 2}

    def test_node_jobs_prefix_and_overflow(self, decomposition):
        assert decomposition.node_jobs(0, 9, 4) is not None
        assert decomposition.node_jobs(0, 9, 5) is None
        first_two = decomposition.node_jobs(0, 9, 2)
        deadlines = [decomposition.jobs[j].deadline for j in first_two]
        assert deadlines == sorted(deadlines)

    def test_count_released_after(self, decomposition):
        all_jobs = decomposition.node_jobs(0, 9, 4)
        assert decomposition.count_released_after(all_jobs, 6) == 1
        assert decomposition.count_released_after(all_jobs, -1) == 4

    def test_candidate_columns_for_job_clipped_to_interval(self, decomposition):
        cols = decomposition.candidate_columns_for_job(2, 4, 6)
        assert [decomposition.column(i) for i in cols] == [4, 5, 6]
        assert decomposition.candidate_columns_for_job(0, 5, 9) == []

    def test_range_query_is_cached(self, decomposition):
        first = decomposition.jobs_released_in(0, 9)
        second = decomposition.jobs_released_in(0, 9)
        assert first is second


class TestJobSplitQueries:
    """The queries the interval-DP engine uses to split subproblems."""

    @pytest.fixture
    def split_decomposition(self) -> IntervalDecomposition:
        instance = MultiprocessorInstance.from_pairs(
            [(0, 5), (1, 3), (1, 5), (4, 7), (6, 8)], num_processors=2
        )
        return IntervalDecomposition(instance)

    def test_split_partitions_node_jobs(self, split_decomposition):
        decomp = split_decomposition
        node = decomp.node_jobs(0, 8, 5)
        # Branching at t' = 3 must partition jobs into released-before and
        # released-after exactly the way the DP's left/right children do.
        num_right = decomp.count_released_after(node, 3)
        left = [j for j in node if decomp.jobs[j].release <= 3]
        assert len(left) + num_right == len(node)
        assert num_right == 2  # releases 4 and 6

    def test_node_jobs_prefix_is_stable_under_k(self, split_decomposition):
        decomp = split_decomposition
        for k in range(1, 5):
            smaller = decomp.node_jobs(0, 8, k)
            larger = decomp.node_jobs(0, 8, k + 1)
            assert larger[: len(smaller)] == smaller

    def test_subinterval_release_filtering(self, split_decomposition):
        released = split_decomposition.jobs_released_in(4, 8)
        assert set(released) == {3, 4}
        assert split_decomposition.jobs_released_in(9, 20) == []

    def test_candidate_columns_empty_outside_window(self, split_decomposition):
        # Job 1 has window [1, 3]; clipped to [5, 8] nothing remains.
        assert split_decomposition.candidate_columns_for_job(1, 5, 8) == []

    def test_candidate_columns_clip_both_ends(self, split_decomposition):
        cols = split_decomposition.candidate_columns_for_job(0, 2, 4)
        assert [split_decomposition.column(i) for i in cols] == [2, 3, 4]


class TestRangeCache:
    def test_distinct_ranges_get_distinct_entries(self, decomposition):
        a = decomposition.jobs_released_in(0, 5)
        b = decomposition.jobs_released_in(0, 9)
        assert a is not b
        assert decomposition.jobs_released_in(0, 5) is a
        assert decomposition.jobs_released_in(0, 9) is b

    def test_cache_key_is_the_time_range(self, decomposition):
        before = len(decomposition._range_cache)
        decomposition.jobs_released_in(2, 8)
        decomposition.jobs_released_in(2, 8)
        assert len(decomposition._range_cache) == before + 1

    def test_empty_range_is_cached_too(self, decomposition):
        assert decomposition.jobs_released_in(100, 200) == []
        assert decomposition.jobs_released_in(100, 200) is decomposition.jobs_released_in(
            100, 200
        )


class TestDeadlineOrderDeterminism:
    def test_ties_break_by_release_then_index(self):
        instance = MultiprocessorInstance.from_pairs(
            [(2, 5), (0, 5), (0, 5), (1, 3)], num_processors=1
        )
        decomp = IntervalDecomposition(instance)
        # Deadline 3 first, then the three deadline-5 jobs by (release, index).
        assert decomp.deadline_order == [3, 1, 2, 0]

    def test_sparse_candidates_are_sorted_and_unique(self):
        pairs = [(0, 2), (300, 302), (600, 603)]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        decomp = IntervalDecomposition(instance)
        assert decomp.columns == sorted(set(decomp.columns))
        # Sparse: far below the 604-slot full horizon.
        assert len(decomp.columns) < 604
        for job in instance.jobs:
            assert job.release in decomp.column_index
            assert job.deadline in decomp.column_index


class TestValidation:
    def test_requires_at_least_one_processor(self):
        # MultiprocessorInstance itself rejects p = 0, so build a valid one and
        # check the decomposition accepts it; the p >= 1 guard is defensive.
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        decomposition = IntervalDecomposition(instance)
        assert decomposition.num_processors == 1

    def test_full_horizon_flag(self):
        instance = MultiprocessorInstance.from_pairs([(0, 2), (100, 102)], num_processors=1)
        sparse = IntervalDecomposition(instance)
        dense = IntervalDecomposition(instance, use_full_horizon=True)
        assert len(dense.columns) == 103
        assert len(sparse.columns) < len(dense.columns)
