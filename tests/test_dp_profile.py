"""Unit tests for the shared interval-decomposition machinery of the exact DPs."""

import pytest

from repro import Job, MultiprocessorInstance
from repro.core.dp_profile import IntervalDecomposition
from repro.core.exceptions import InvalidInstanceError


@pytest.fixture
def decomposition() -> IntervalDecomposition:
    instance = MultiprocessorInstance.from_pairs(
        [(0, 3), (2, 5), (2, 8), (7, 9)], num_processors=2
    )
    return IntervalDecomposition(instance)


class TestColumns:
    def test_columns_cover_horizon_for_small_instances(self, decomposition):
        assert decomposition.columns == list(range(0, 10))
        assert decomposition.num_columns == 10

    def test_index_of_and_column_roundtrip(self, decomposition):
        for idx in range(decomposition.num_columns):
            assert decomposition.index_of(decomposition.column(idx)) == idx

    def test_first_column_after(self, decomposition):
        assert decomposition.first_column_after(3) == decomposition.index_of(4)
        assert decomposition.first_column_after(9) is None

    def test_columns_between(self, decomposition):
        indices = decomposition.columns_between(2, 4)
        assert [decomposition.column(i) for i in indices] == [2, 3, 4]
        assert decomposition.columns_between(20, 30) == []


class TestJobQueries:
    def test_deadline_order_is_by_deadline_then_release(self, decomposition):
        order = decomposition.deadline_order
        deadlines = [decomposition.jobs[j].deadline for j in order]
        assert deadlines == sorted(deadlines)

    def test_jobs_released_in_range(self, decomposition):
        released = decomposition.jobs_released_in(2, 5)
        assert set(released) == {1, 2}

    def test_node_jobs_prefix_and_overflow(self, decomposition):
        assert decomposition.node_jobs(0, 9, 4) is not None
        assert decomposition.node_jobs(0, 9, 5) is None
        first_two = decomposition.node_jobs(0, 9, 2)
        deadlines = [decomposition.jobs[j].deadline for j in first_two]
        assert deadlines == sorted(deadlines)

    def test_count_released_after(self, decomposition):
        all_jobs = decomposition.node_jobs(0, 9, 4)
        assert decomposition.count_released_after(all_jobs, 6) == 1
        assert decomposition.count_released_after(all_jobs, -1) == 4

    def test_candidate_columns_for_job_clipped_to_interval(self, decomposition):
        cols = decomposition.candidate_columns_for_job(2, 4, 6)
        assert [decomposition.column(i) for i in cols] == [4, 5, 6]
        assert decomposition.candidate_columns_for_job(0, 5, 9) == []

    def test_range_query_is_cached(self, decomposition):
        first = decomposition.jobs_released_in(0, 9)
        second = decomposition.jobs_released_in(0, 9)
        assert first is second


class TestValidation:
    def test_requires_at_least_one_processor(self):
        # MultiprocessorInstance itself rejects p = 0, so build a valid one and
        # check the decomposition accepts it; the p >= 1 guard is defensive.
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        decomposition = IntervalDecomposition(instance)
        assert decomposition.num_processors == 1

    def test_full_horizon_flag(self):
        instance = MultiprocessorInstance.from_pairs([(0, 2), (100, 102)], num_processors=1)
        sparse = IntervalDecomposition(instance)
        dense = IntervalDecomposition(instance, use_full_horizon=True)
        assert len(dense.columns) == 103
        assert len(sparse.columns) < len(dense.columns)
