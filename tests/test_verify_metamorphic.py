"""Metamorphic transforms and their equality/monotonicity oracles."""

import random

import pytest

from repro.api import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    solve,
)
from repro.verify import (
    ALL_RELATIONS,
    add_processor,
    check_processor_relabeling,
    check_relation,
    dilate_instance,
    permute_jobs,
    relabel_processors,
    run_metamorphic,
    shift_instance,
    widen_windows,
)
from repro.verify.metamorphic import _compare, MetamorphicRelation


@pytest.fixture
def one_interval():
    return OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)])


@pytest.fixture
def multiproc():
    return MultiprocessorInstance.from_pairs(
        [(0, 1), (0, 1), (1, 2), (5, 6)], num_processors=2
    )


@pytest.fixture
def multi_interval():
    return MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6], [6, 7]])


class TestTransforms:
    def test_shift_one_interval(self, one_interval):
        shifted = shift_instance(one_interval, 7)
        assert shifted.jobs[0].window == (7, 10)
        assert shifted.jobs[0].name == one_interval.jobs[0].name

    def test_shift_multiproc_keeps_processors(self, multiproc):
        shifted = shift_instance(multiproc, 3)
        assert isinstance(shifted, MultiprocessorInstance)
        assert shifted.num_processors == 2

    def test_shift_multi_interval(self, multi_interval):
        shifted = shift_instance(multi_interval, 5)
        assert shifted.jobs[0].times == (5, 6)

    def test_permute_is_a_reordering(self, one_interval):
        permuted = permute_jobs(one_interval, [2, 0, 1])
        assert permuted.jobs[0].window == one_interval.jobs[2].window
        assert sorted(j.window for j in permuted.jobs) == sorted(
            j.window for j in one_interval.jobs
        )

    def test_widen_extends_deadlines(self, one_interval):
        widened = widen_windows(one_interval, 4)
        assert widened.jobs[0].window == (0, 7)

    def test_dilate_scales_times(self, multi_interval):
        dilated = dilate_instance(multi_interval, 3)
        assert dilated.jobs[0].times == (0, 3)
        assert dilated.jobs[2].times == (15, 18)

    def test_add_processor(self, multiproc):
        assert add_processor(multiproc).num_processors == 3

    def test_relabel_processors(self, multiproc):
        result = solve(Problem(objective="gaps", instance=multiproc))
        relabeled = relabel_processors(result.schedule, {1: 2, 2: 1})
        assert relabeled.is_valid()
        assert relabeled.num_gaps() == result.schedule.num_gaps()


class TestOraclesHoldForExactSolvers:
    @pytest.mark.parametrize("relation", ALL_RELATIONS, ids=lambda r: r.name)
    def test_gap_problem(self, relation, one_interval):
        problem = Problem(objective="gaps", instance=one_interval)
        assert check_relation(problem, relation, rng=random.Random(1)) == []

    @pytest.mark.parametrize("relation", ALL_RELATIONS, ids=lambda r: r.name)
    def test_power_problem(self, relation, multiproc):
        problem = Problem(objective="power", instance=multiproc, alpha=1.5)
        assert check_relation(problem, relation, rng=random.Random(2)) == []

    @pytest.mark.parametrize("relation", ALL_RELATIONS, ids=lambda r: r.name)
    def test_throughput_problem(self, relation, multi_interval):
        problem = Problem(objective="throughput", instance=multi_interval, max_gaps=1)
        assert check_relation(problem, relation, rng=random.Random(3)) == []

    def test_run_metamorphic_aggregates(self, one_interval):
        problem = Problem(objective="gaps", instance=one_interval)
        assert run_metamorphic(problem, rng=random.Random(4)) == []

    def test_infeasible_instance_is_handled(self):
        clash = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        problem = Problem(objective="gaps", instance=clash)
        assert run_metamorphic(problem, rng=random.Random(5)) == []


class TestOracleViolationsAreCaught:
    def _fake(self, value, feasible=True):
        from repro.api import SolveResult

        if not feasible:
            return SolveResult(
                status="infeasible", objective="gaps", value=None, schedule=None
            )
        from repro.core.schedule import Schedule

        instance = OneIntervalInstance.from_pairs([(0, 0)])
        return SolveResult(
            status="optimal",
            objective="gaps",
            value=value,
            schedule=Schedule(instance=instance, assignment={0: 0}),
        )

    def test_equality_violation(self):
        relation = ALL_RELATIONS[0]  # time-shift: equal
        issues = _compare(relation, "equal", self._fake(1), self._fake(2))
        assert issues and "changed" in issues[0]

    def test_monotonicity_violation(self):
        relation = next(r for r in ALL_RELATIONS if r.name == "window-widening")
        issues = _compare(relation, "non_increasing", self._fake(1), self._fake(3))
        assert issues and "increased" in issues[0]

    def test_relaxation_cannot_lose_feasibility(self):
        relation = next(r for r in ALL_RELATIONS if r.name == "extra-processor")
        issues = _compare(
            relation, "non_increasing", self._fake(1), self._fake(0, feasible=False)
        )
        assert issues and "infeasible" in issues[0]

    def test_feasibility_flip_flagged_for_equal_relations(self):
        relation = ALL_RELATIONS[0]
        issues = _compare(relation, "equal", self._fake(1), self._fake(0, feasible=False))
        assert issues and "feasibility" in issues[0]


class TestProcessorRelabeling:
    def test_clean_schedule_passes(self, multiproc):
        problem = Problem(objective="power", instance=multiproc, alpha=2.0)
        result = solve(problem)
        assert check_processor_relabeling(problem, result, rng=random.Random(6)) == []

    def test_single_processor_result_is_skipped(self, one_interval):
        problem = Problem(objective="gaps", instance=one_interval)
        result = solve(problem)
        assert check_processor_relabeling(problem, result) == []
