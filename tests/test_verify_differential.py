"""Differential harness: consistency matrix, lying-solver detection, gating."""

import pytest

from repro.api import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    SolveResult,
    register_solver,
)
from repro.api.registry import _REGISTRY
from repro.core.schedule import Schedule
from repro.generators import hall_violating_instance
from repro.verify import estimated_enumeration_cost, run_differential


@pytest.fixture
def gap_problem():
    return Problem(
        objective="gaps",
        instance=OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)]),
    )


@pytest.fixture
def lying_solver():
    """Register a solver that reports a better-than-optimal value, then clean up."""
    name = "test-lying-gaps"

    @register_solver(
        name,
        objective="gaps",
        kind="exact",
        instance_types=(OneIntervalInstance,),
        description="test double that under-reports the gap count",
    )
    def _lying(problem):
        busy = []
        t_cursor = None
        assignment = {}
        for idx in sorted(
            range(len(problem.instance.jobs)),
            key=lambda i: problem.instance.jobs[i].deadline,
        ):
            job = problem.instance.jobs[idx]
            t = job.release if t_cursor is None else max(job.release, t_cursor + 1)
            assignment[idx] = t
            t_cursor = t
            busy.append(t)
        return SolveResult(
            status="optimal",
            objective="gaps",
            value=0,  # the lie: claims zero gaps regardless of the schedule
            schedule=Schedule(instance=problem.instance, assignment=assignment),
        )

    yield name
    _REGISTRY.pop(name, None)


class TestConsistencyMatrix:
    def test_ok_across_objectives(self):
        one = OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)])
        mp = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (1, 2), (5, 6)], num_processors=2
        )
        mi = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6], [6, 7]])
        problems = [
            Problem(objective="gaps", instance=one),
            Problem(objective="gaps", instance=mp),
            Problem(objective="power", instance=one, alpha=2.0),
            Problem(objective="power", instance=mp, alpha=0.5),
            Problem(objective="power", instance=mi, alpha=1.0),
            Problem(objective="throughput", instance=mi, max_gaps=0),
            Problem(objective="throughput", instance=mi, max_gaps=2),
        ]
        for problem in problems:
            report = run_differential(problem)
            assert report.ok, f"{problem.objective}: {report.issues}"
            assert len(report.runs) >= 2  # every problem has at least two solvers

    def test_every_run_is_certified(self, gap_problem):
        report = run_differential(gap_problem)
        for run in report.runs:
            assert run.certificate is not None and run.certificate.ok

    def test_infeasible_agreement(self):
        instance = hall_violating_instance(num_jobs=4, horizon=6, seed=5)
        report = run_differential(Problem(objective="gaps", instance=instance))
        assert report.ok, report.issues
        assert all(not r.result.feasible for r in report.runs)

    def test_raise_on_failure_passes_when_ok(self, gap_problem):
        run_differential(gap_problem).raise_on_failure()

    def test_summary_mentions_solvers(self, gap_problem):
        summary = run_differential(gap_problem).summary()
        assert "gap-dp" in summary and "OK" in summary


class TestLyingSolverDetection:
    def test_wrong_value_is_flagged(self, gap_problem, lying_solver):
        report = run_differential(gap_problem)
        assert not report.ok
        joined = " ".join(report.issues)
        assert lying_solver in joined

    def test_exact_disagreement_is_flagged(self, lying_solver):
        # An instance with a forced gap: the lying solver claims 0 gaps while
        # gap-dp and brute force certify 1.
        problem = Problem(
            objective="gaps",
            instance=OneIntervalInstance.from_pairs([(0, 0), (2, 2)]),
        )
        report = run_differential(problem)
        assert not report.ok
        assert any(
            "recomputed" in issue or "disagree" in issue for issue in report.issues
        )


class TestBruteForceGating:
    def test_cost_estimate_grows_with_windows(self):
        small = Problem(
            objective="gaps", instance=OneIntervalInstance.from_pairs([(0, 1), (0, 1)])
        )
        big = Problem(
            objective="gaps",
            instance=OneIntervalInstance.from_pairs([(0, 40)] * 12),
        )
        assert estimated_enumeration_cost(small) == 4
        assert estimated_enumeration_cost(big) > 1e15

    def test_large_instance_skips_brute_force(self):
        instance = OneIntervalInstance.from_pairs([(0, 40)] * 12)
        report = run_differential(Problem(objective="gaps", instance=instance))
        assert report.ok, report.issues
        assert "brute-force-gaps" in report.skipped
        assert all(not run.name.startswith("brute-force") for run in report.runs)

    def test_brute_force_forced_off(self, gap_problem):
        report = run_differential(gap_problem, brute_force=False)
        assert "brute-force-gaps" in report.skipped

    def test_no_capable_solver_is_not_ok(self):
        # throughput on a one-interval instance: nothing registered can run,
        # and "nothing was verified" must never read as a success
        problem = Problem(
            objective="throughput",
            instance=OneIntervalInstance.from_pairs([(0, 2)]),
            max_gaps=1,
        )
        report = run_differential(problem)
        assert not report.ok
        assert any("no registered solver" in issue for issue in report.issues)

    def test_metamorphic_skips_throughput_on_wrong_instance_type(self):
        from repro.verify import run_metamorphic

        problem = Problem(
            objective="throughput",
            instance=OneIntervalInstance.from_pairs([(0, 2)]),
            max_gaps=1,
        )
        # no exact solver exists for this shape: skip cleanly, never raise
        assert run_metamorphic(problem) == []

    def test_throughput_budget_semantics(self):
        # max_gaps=0: the greedy schedules nothing (0 rounds) while the
        # internal-gap oracle may schedule one block; the harness must accept
        # this asymmetry and not flag a guarantee violation.
        instance = MultiIntervalInstance.from_time_lists([[3], [3]])
        report = run_differential(
            Problem(objective="throughput", instance=instance, max_gaps=0)
        )
        assert report.ok, report.issues
