"""JSON round-trip tests: from_json(to_json(x)) == x for every façade type."""

import json

import pytest

from repro.api import (
    InvalidInstanceError,
    Job,
    MultiIntervalInstance,
    MultiIntervalJob,
    MultiprocessorInstance,
    MultiprocessorSchedule,
    OneIntervalInstance,
    Problem,
    Schedule,
    SolveResult,
    from_dict,
    from_json,
    solve,
    to_dict,
    to_json,
)


def roundtrip(obj):
    restored = from_json(to_json(obj))
    assert restored == obj
    assert type(restored) is type(obj)
    return restored


class TestInstanceRoundTrip:
    def test_job(self):
        roundtrip(Job(release=0, deadline=5, name="j0"))

    def test_multi_interval_job(self):
        roundtrip(MultiIntervalJob(times=[0, 1, 4, 9], name="m"))

    def test_one_interval_instance(self):
        roundtrip(OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)]))

    def test_multiprocessor_instance(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (5, 6)], num_processors=3
        )
        restored = roundtrip(instance)
        assert restored.num_processors == 3

    def test_multi_interval_instance(self):
        roundtrip(MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6]]))

    def test_empty_instance(self):
        roundtrip(OneIntervalInstance(jobs=[]))


class TestProblemRoundTrip:
    def test_gaps_problem(self):
        instance = OneIntervalInstance.from_pairs([(0, 2), (1, 3)])
        roundtrip(Problem(objective="gaps", instance=instance))

    def test_power_problem(self):
        instance = MultiprocessorInstance.from_pairs([(0, 2)], num_processors=2)
        restored = roundtrip(
            Problem(objective="power", instance=instance, alpha=2.5)
        )
        assert restored.alpha == 2.5

    def test_throughput_problem(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [4]])
        restored = roundtrip(
            Problem(objective="throughput", instance=instance, max_gaps=2)
        )
        assert restored.max_gaps == 2

    def test_decoded_problem_is_validated(self):
        instance = OneIntervalInstance.from_pairs([(0, 2)])
        data = to_dict(Problem(objective="gaps", instance=instance))
        data["objective"] = "nonsense"
        with pytest.raises(InvalidInstanceError):
            from_dict(data)


class TestScheduleRoundTrip:
    def test_single_processor_schedule(self):
        instance = OneIntervalInstance.from_pairs([(0, 2), (1, 3)])
        roundtrip(Schedule(instance=instance, assignment={0: 0, 1: 1}))

    def test_multiprocessor_schedule(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1)], num_processors=2
        )
        roundtrip(
            MultiprocessorSchedule(
                instance=instance, assignment={0: (1, 0), 1: (2, 0)}
            )
        )


class TestResultRoundTrip:
    def test_all_objectives(self):
        one = OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)])
        mp = MultiprocessorInstance.from_pairs([(0, 1), (0, 1)], num_processors=2)
        mi = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6]])
        results = [
            solve(Problem(objective="gaps", instance=one)),
            solve(Problem(objective="gaps", instance=mp)),
            solve(Problem(objective="power", instance=mp, alpha=2.0)),
            solve(Problem(objective="power", instance=mi, alpha=2.0)),
            solve(Problem(objective="throughput", instance=mi, max_gaps=1)),
            solve(Problem(objective="gaps", instance=one), solver="greedy-gap"),
        ]
        for result in results:
            roundtrip(result)

    def test_infeasible_result(self):
        clash = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        result = solve(Problem(objective="gaps", instance=clash))
        restored = roundtrip(result)
        assert restored.status == "infeasible"
        assert restored.schedule is None

    def test_wall_time_excluded_from_json_and_equality(self):
        instance = OneIntervalInstance.from_pairs([(0, 2)])
        result = solve(Problem(objective="gaps", instance=instance))
        assert result.wall_time > 0.0
        payload = json.loads(to_json(result))
        assert "wall_time" not in payload
        restored = from_json(to_json(result))
        assert restored.wall_time == 0.0
        assert restored == result  # equality ignores wall_time


class TestErrorHandling:
    def test_to_dict_rejects_unknown_type(self):
        with pytest.raises(InvalidInstanceError):
            to_dict(object())

    def test_from_dict_rejects_untagged_payload(self):
        with pytest.raises(InvalidInstanceError):
            from_dict({"jobs": []})

    def test_from_dict_rejects_unknown_tag(self):
        with pytest.raises(InvalidInstanceError):
            from_dict({"type": "mystery"})

    def test_canonical_text_is_stable(self):
        instance = OneIntervalInstance.from_pairs([(0, 2), (1, 3)])
        problem = Problem(objective="gaps", instance=instance)
        assert to_json(problem) == to_json(from_json(to_json(problem)))


class TestEdgeCases:
    """Satellite coverage: empty instances, unicode names, integer alpha."""

    def test_empty_one_interval_instance(self):
        roundtrip(OneIntervalInstance([]))

    def test_empty_multiprocessor_instance(self):
        roundtrip(MultiprocessorInstance(jobs=[], num_processors=3))

    def test_empty_multi_interval_instance(self):
        roundtrip(MultiIntervalInstance([]))

    def test_unicode_job_names(self):
        jobs = [
            Job(release=0, deadline=3, name="作业-α"),
            Job(release=1, deadline=4, name="tâche £√"),
        ]
        instance = roundtrip(OneIntervalInstance(jobs))
        assert instance.jobs[0].name == "作业-α"
        # names survive the JSON text form (ensure_ascii escaping round-trips)
        assert from_json(to_json(instance)).jobs[1].name == "tâche £√"

    def test_alpha_as_int_normalizes_to_float(self):
        instance = OneIntervalInstance.from_pairs([(0, 2)])
        problem = Problem(objective="power", instance=instance, alpha=3)
        assert isinstance(problem.alpha, float)
        restored = roundtrip(problem)
        assert isinstance(restored.alpha, float)
        # a hand-written payload with a bare JSON integer also decodes
        payload = to_dict(problem)
        payload["alpha"] = 3
        assert from_dict(payload) == problem

    def test_empty_schedule_round_trip(self):
        instance = OneIntervalInstance([])
        roundtrip(Schedule(instance=instance, assignment={}))

    def test_solving_an_empty_instance_round_trips(self):
        result = solve(Problem(objective="gaps", instance=OneIntervalInstance([])))
        assert result.value == 0
        roundtrip(result)
