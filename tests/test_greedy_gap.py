"""Unit tests for the greedy 3-approximation baseline [FHKN06]."""

import random

import pytest

from repro import OneIntervalInstance, minimize_gaps_single_processor
from repro.core.greedy_gap import greedy_gap_schedule
from tests.conftest import random_window_pairs


class TestGreedyGap:
    def test_empty_instance(self):
        result = greedy_gap_schedule(OneIntervalInstance(jobs=[]))
        assert result.feasible and result.num_gaps == 0

    def test_tight_chain(self, tight_chain_instance):
        result = greedy_gap_schedule(tight_chain_instance)
        assert result.feasible and result.num_gaps == 0
        result.schedule.validate()

    def test_forced_gap(self, forced_gap_instance):
        result = greedy_gap_schedule(forced_gap_instance)
        assert result.num_gaps == 1

    def test_infeasible(self):
        result = greedy_gap_schedule(OneIntervalInstance.from_pairs([(0, 0), (0, 0)]))
        assert not result.feasible and result.schedule is None

    def test_removed_intervals_do_not_break_feasibility(self, flexible_instance):
        result = greedy_gap_schedule(flexible_instance)
        assert result.feasible
        result.schedule.validate()
        # Every removed interval is disjoint from the final busy times.
        busy = set(result.schedule.busy_times())
        for a, b in result.removed_intervals:
            assert not any(a <= t <= b for t in busy)

    def test_greedy_respects_three_approximation_on_random_instances(self):
        rng = random.Random(5)
        for _ in range(8):
            n = rng.randint(2, 7)
            pairs = random_window_pairs(rng, n, horizon=rng.randint(n + 2, 18), max_window=5)
            instance = OneIntervalInstance.from_pairs(pairs)
            greedy = greedy_gap_schedule(instance)
            exact = minimize_gaps_single_processor(instance)
            if not exact.feasible:
                assert not greedy.feasible
                continue
            assert greedy.feasible
            # The proven guarantee is 3x; allow the additive slack of one gap
            # that the guarantee statement permits for OPT = 0.
            assert greedy.num_gaps <= max(3 * exact.num_gaps, 1)

    def test_greedy_never_beats_the_optimum(self):
        rng = random.Random(11)
        for _ in range(5):
            pairs = random_window_pairs(rng, 5, horizon=14, max_window=6)
            instance = OneIntervalInstance.from_pairs(pairs)
            greedy = greedy_gap_schedule(instance)
            exact = minimize_gaps_single_processor(instance)
            if greedy.feasible and exact.feasible:
                assert greedy.num_gaps >= exact.num_gaps
