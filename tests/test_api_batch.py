"""Batch execution tests: ordering, determinism, serial/parallel equivalence."""

import pytest

from repro.api import Problem, solve, solve_batch, to_json
from repro.generators import (
    random_multi_interval_instance,
    random_multiprocessor_instance,
    random_one_interval_instance,
)


def generated_workload(count=50):
    """A mixed 50-problem workload covering all objectives and instance types."""
    problems = []
    for seed in range(count):
        kind = seed % 3
        if kind == 0:
            instance = random_one_interval_instance(
                num_jobs=6, horizon=18, max_window=5, seed=seed
            )
            problems.append(Problem(objective="gaps", instance=instance))
        elif kind == 1:
            instance = random_multiprocessor_instance(
                num_jobs=5, num_processors=2, horizon=12, max_window=5, seed=seed
            )
            problems.append(
                Problem(objective="power", instance=instance, alpha=1.0 + seed % 4)
            )
        else:
            instance = random_multi_interval_instance(
                num_jobs=5, horizon=15, intervals_per_job=2, interval_length=2, seed=seed
            )
            problems.append(
                Problem(objective="throughput", instance=instance, max_gaps=1 + seed % 3)
            )
    return problems


class TestSolveBatch:
    def test_serial_matches_individual_solves(self):
        problems = generated_workload(9)
        batch = solve_batch(problems)
        assert batch == [solve(problem) for problem in problems]

    def test_results_in_input_order(self):
        problems = generated_workload(12)
        results = solve_batch(problems, workers=3)
        assert len(results) == len(problems)
        for problem, result in zip(problems, results):
            assert result.objective == problem.objective

    def test_parallel_byte_identical_to_serial_on_50_instances(self):
        problems = generated_workload(50)
        serial = solve_batch(problems)
        parallel = solve_batch(problems, workers=4)
        assert serial == parallel
        serial_bytes = [to_json(result).encode() for result in serial]
        parallel_bytes = [to_json(result).encode() for result in parallel]
        assert serial_bytes == parallel_bytes

    def test_explicit_solver_applies_to_all(self):
        instances = [
            random_one_interval_instance(num_jobs=5, horizon=15, max_window=4, seed=s)
            for s in range(4)
        ]
        problems = [Problem(objective="gaps", instance=i) for i in instances]
        results = solve_batch(problems, solver="greedy-gap", workers=2)
        assert all(result.solver == "greedy-gap" for result in results)

    def test_empty_batch(self):
        assert solve_batch([]) == []

    def test_workers_one_is_serial(self):
        problems = generated_workload(3)
        assert solve_batch(problems, workers=1) == solve_batch(problems)


class TestErrorPaths:
    """Satellite coverage: per-task error capture and degenerate inputs."""

    def test_unknown_solver_yields_error_results_serially(self):
        problems = generated_workload(2)
        results = solve_batch(problems, solver="no-such-solver")
        assert [r.status for r in results] == ["error", "error"]
        for result in results:
            assert result.value is None and result.schedule is None
            assert result.extra["error_type"] == "SolverError"
            assert "no-such-solver" in result.extra["error"]
            assert "Traceback" in result.extra["traceback"]

    def test_worker_exception_becomes_error_result_in_pool(self):
        problems = generated_workload(4)
        results = solve_batch(problems, solver="no-such-solver", workers=2)
        assert len(results) == 4
        assert all(r.status == "error" for r in results)
        assert all("no-such-solver" in r.extra["error"] for r in results)

    def test_incapable_solver_fails_per_task_not_per_batch(self):
        # greedy-gap only accepts OneIntervalInstance; the workload mixes in
        # multiprocessor and multi-interval problems.  Those tasks fail, the
        # one-interval tasks still solve — one crashed worker task no longer
        # poisons the batch.
        problems = generated_workload(6)
        results = solve_batch(problems, solver="greedy-gap", workers=2)
        assert len(results) == 6
        for problem, result in zip(problems, results):
            if problem.objective == "gaps":  # the one-interval slice
                assert result.status in ("optimal", "approximate")
                assert result.solver == "greedy-gap"
            else:
                assert result.status == "error"
                assert result.extra["error_type"] == "SolverError"

    def test_on_error_raise_restores_fail_fast(self):
        from repro.core.exceptions import SolverError

        problems = generated_workload(4)
        with pytest.raises(SolverError):
            solve_batch(problems, solver="no-such-solver", on_error="raise")
        with pytest.raises(SolverError):
            solve_batch(
                problems, solver="no-such-solver", workers=2, on_error="raise"
            )

    def test_error_results_raise_for_status(self):
        from repro.core.exceptions import SolverError

        result = solve_batch(generated_workload(1), solver="no-such-solver")[0]
        assert not result.feasible
        with pytest.raises(SolverError):
            result.raise_for_status()

    def test_empty_batch_with_many_workers(self):
        assert solve_batch([], workers=8) == []

    def test_single_problem_with_many_workers(self):
        problems = generated_workload(1)
        assert solve_batch(problems, workers=8) == [solve(problems[0])]

    def test_workers_one_equals_workers_n(self):
        problems = generated_workload(15)
        assert solve_batch(problems, workers=1) == solve_batch(problems, workers=3)

    def test_infeasible_problems_survive_the_pool(self):
        from repro.api import OneIntervalInstance

        clash = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        problems = [Problem(objective="gaps", instance=clash)] * 3
        for result in solve_batch(problems, workers=2):
            assert result.status == "infeasible"
            assert result.value is None and result.schedule is None
