"""Batch execution tests: ordering, determinism, serial/parallel equivalence."""

import pytest

from repro.api import Problem, solve, solve_batch, to_json
from repro.generators import (
    random_multi_interval_instance,
    random_multiprocessor_instance,
    random_one_interval_instance,
)


def generated_workload(count=50):
    """A mixed 50-problem workload covering all objectives and instance types."""
    problems = []
    for seed in range(count):
        kind = seed % 3
        if kind == 0:
            instance = random_one_interval_instance(
                num_jobs=6, horizon=18, max_window=5, seed=seed
            )
            problems.append(Problem(objective="gaps", instance=instance))
        elif kind == 1:
            instance = random_multiprocessor_instance(
                num_jobs=5, num_processors=2, horizon=12, max_window=5, seed=seed
            )
            problems.append(
                Problem(objective="power", instance=instance, alpha=1.0 + seed % 4)
            )
        else:
            instance = random_multi_interval_instance(
                num_jobs=5, horizon=15, intervals_per_job=2, interval_length=2, seed=seed
            )
            problems.append(
                Problem(objective="throughput", instance=instance, max_gaps=1 + seed % 3)
            )
    return problems


class TestSolveBatch:
    def test_serial_matches_individual_solves(self):
        problems = generated_workload(9)
        batch = solve_batch(problems)
        assert batch == [solve(problem) for problem in problems]

    def test_results_in_input_order(self):
        problems = generated_workload(12)
        results = solve_batch(problems, workers=3)
        assert len(results) == len(problems)
        for problem, result in zip(problems, results):
            assert result.objective == problem.objective

    def test_parallel_byte_identical_to_serial_on_50_instances(self):
        problems = generated_workload(50)
        serial = solve_batch(problems)
        parallel = solve_batch(problems, workers=4)
        assert serial == parallel
        serial_bytes = [to_json(result).encode() for result in serial]
        parallel_bytes = [to_json(result).encode() for result in parallel]
        assert serial_bytes == parallel_bytes

    def test_explicit_solver_applies_to_all(self):
        instances = [
            random_one_interval_instance(num_jobs=5, horizon=15, max_window=4, seed=s)
            for s in range(4)
        ]
        problems = [Problem(objective="gaps", instance=i) for i in instances]
        results = solve_batch(problems, solver="greedy-gap", workers=2)
        assert all(result.solver == "greedy-gap" for result in results)

    def test_empty_batch(self):
        assert solve_batch([]) == []

    def test_workers_one_is_serial(self):
        problems = generated_workload(3)
        assert solve_batch(problems, workers=1) == solve_batch(problems)


class TestErrorPaths:
    """Satellite coverage: worker exception propagation and degenerate inputs."""

    def test_unknown_solver_raises_serially(self):
        from repro.core.exceptions import SolverError

        problems = generated_workload(2)
        with pytest.raises(SolverError):
            solve_batch(problems, solver="no-such-solver")

    def test_worker_exception_propagates_from_pool(self):
        from repro.core.exceptions import SolverError

        problems = generated_workload(4)
        with pytest.raises(SolverError):
            solve_batch(problems, solver="no-such-solver", workers=2)

    def test_incapable_solver_propagates_from_pool(self):
        from repro.core.exceptions import SolverError

        # greedy-gap only accepts OneIntervalInstance; the workload mixes in
        # multiprocessor and multi-interval problems, so a worker must raise.
        problems = generated_workload(6)
        with pytest.raises(SolverError):
            solve_batch(problems, solver="greedy-gap", workers=2)

    def test_empty_batch_with_many_workers(self):
        assert solve_batch([], workers=8) == []

    def test_single_problem_with_many_workers(self):
        problems = generated_workload(1)
        assert solve_batch(problems, workers=8) == [solve(problems[0])]

    def test_workers_one_equals_workers_n(self):
        problems = generated_workload(15)
        assert solve_batch(problems, workers=1) == solve_batch(problems, workers=3)

    def test_infeasible_problems_survive_the_pool(self):
        from repro.api import OneIntervalInstance

        clash = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        problems = [Problem(objective="gaps", instance=clash)] * 3
        for result in solve_batch(problems, workers=2):
            assert result.status == "infeasible"
            assert result.value is None and result.schedule is None
