"""Unit tests for the exact multiprocessor power solver (Theorem 2)."""

import random

import pytest

from repro import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    MultiprocessorInstance,
    OneIntervalInstance,
    MultiprocessorPowerSolver,
    solve_multiprocessor_power,
)
from repro.core.brute_force import brute_force_power_multiproc
from tests.conftest import random_window_pairs


class TestSmallInstances:
    def test_empty_instance(self):
        solution = solve_multiprocessor_power(
            MultiprocessorInstance(jobs=[], num_processors=1), alpha=2.0
        )
        assert solution.feasible and solution.power == 0.0

    def test_single_job_costs_execution_plus_wakeup(self):
        solution = solve_multiprocessor_power(
            MultiprocessorInstance.from_pairs([(4, 9)], num_processors=1), alpha=3.0
        )
        assert solution.power == pytest.approx(1 + 3)

    def test_short_gap_is_bridged(self):
        # Jobs pinned at 0 and 2 with alpha=5: staying active through the gap
        # (cost 1) beats a second wake-up (cost 5).
        solution = solve_multiprocessor_power(
            MultiprocessorInstance.from_pairs([(0, 0), (2, 2)], num_processors=1),
            alpha=5.0,
        )
        assert solution.power == pytest.approx(2 + 5 + 1)

    def test_long_gap_sleeps(self):
        solution = solve_multiprocessor_power(
            MultiprocessorInstance.from_pairs([(0, 0), (10, 10)], num_processors=1),
            alpha=2.0,
        )
        assert solution.power == pytest.approx(2 + 2 + 2)

    def test_alpha_trades_gaps_for_stretch(self):
        # With large alpha the solver prefers one contiguous block even when
        # that means deferring an early job.
        instance = MultiprocessorInstance.from_pairs([(0, 6), (6, 7), (7, 8)], num_processors=1)
        tight = solve_multiprocessor_power(instance, alpha=10.0)
        schedule = tight.require_schedule()
        assert schedule.num_gaps() == 0
        assert tight.power == pytest.approx(3 + 10)

    def test_second_processor_charged_its_own_wakeup(self):
        instance = MultiprocessorInstance.from_pairs([(0, 0), (0, 0)], num_processors=2)
        solution = solve_multiprocessor_power(instance, alpha=4.0)
        assert solution.power == pytest.approx(2 * (1 + 4))

    def test_infeasible(self):
        solution = solve_multiprocessor_power(
            MultiprocessorInstance.from_pairs([(0, 0), (0, 0)], num_processors=1),
            alpha=1.0,
        )
        assert not solution.feasible
        with pytest.raises(InfeasibleInstanceError):
            solution.require_schedule()

    def test_negative_alpha_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MultiprocessorPowerSolver(
                MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1), alpha=-1.0
            )

    def test_accepts_one_interval_instance(self):
        solution = solve_multiprocessor_power(
            OneIntervalInstance.from_pairs([(0, 1), (1, 2)]), alpha=1.0
        )
        assert solution.power == pytest.approx(2 + 1)

    def test_schedule_power_matches_reported_value(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 3), (0, 2), (4, 8), (6, 9), (9, 12)], num_processors=2
        )
        for alpha in (0.5, 1.5, 4.0):
            solution = solve_multiprocessor_power(instance, alpha=alpha)
            schedule = solution.require_schedule()
            assert schedule.power_cost(alpha) == pytest.approx(solution.power)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances_match_brute_force(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(1, 5)
        p = rng.randint(1, 2)
        alpha = rng.choice([0.5, 1.0, 2.0, 3.5])
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 9), max_window=4)
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        dp = solve_multiprocessor_power(instance, alpha=alpha, use_full_horizon=True)
        brute, _ = brute_force_power_multiproc(instance, alpha=alpha)
        if brute is None:
            assert not dp.feasible
        else:
            assert dp.power == pytest.approx(brute)


class TestGapPowerConsistency:
    def test_tiny_alpha_power_reduces_to_gap_plus_used_structure(self):
        # For alpha -> 0 the power is just the execution time.
        instance = MultiprocessorInstance.from_pairs([(0, 0), (4, 4), (9, 9)], num_processors=1)
        solution = solve_multiprocessor_power(instance, alpha=0.0)
        assert solution.power == pytest.approx(3)

    def test_power_is_monotone_in_alpha(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 2), (3, 5), (8, 11), (11, 14)], num_processors=2
        )
        previous = -1.0
        for alpha in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0):
            power = solve_multiprocessor_power(instance, alpha=alpha).power
            assert power >= previous
            previous = power
