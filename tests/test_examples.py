"""Smoke tests: every example script runs to completion and prints output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{script.name} produced no output"
