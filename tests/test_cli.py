"""Unit tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.api import MultiprocessorInstance, Problem, to_json
from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_solve_gap(self):
        args = build_parser().parse_args(["solve-gap", "0,2", "3,5", "-p", "2"])
        assert args.command == "solve-gap"
        assert args.processors == 2


class TestCommands:
    def test_solve_gap_prints_optimum(self, capsys):
        code = main(["solve-gap", "0,0", "2,2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal gaps: 1" in out

    def test_solve_gap_infeasible_exit_code(self, capsys):
        code = main(["solve-gap", "0,0", "0,0"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_solve_power(self, capsys):
        code = main(["solve-power", "0,0", "2,2", "--alpha", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal power: 8" in out

    def test_approx_power(self, capsys):
        code = main(["approx-power", "0 1;1 2;5 6", "--alpha", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power:" in out

    def test_throughput(self, capsys):
        code = main(["throughput", "0;1;9", "--max-gaps", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scheduled 2/3" in out

    def test_experiment_single(self, capsys):
        code = main(["experiment", "E12", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[E12]" in out

    def test_malformed_job_spec_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve-gap", "nonsense"])
        assert excinfo.value.code == 2
        assert "release,deadline" in capsys.readouterr().err

    def test_non_integer_job_spec_is_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve-gap", "0,x"])
        assert excinfo.value.code == 2
        assert "two integers" in capsys.readouterr().err


class TestSolveSubcommand:
    def make_instance_file(self, tmp_path, obj):
        path = tmp_path / "input.json"
        path.write_text(to_json(obj))
        return str(path)

    def test_solve_instance_with_objective(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 0), (2, 2)], num_processors=1)
        path = self.make_instance_file(tmp_path, instance)
        code = main(["solve", "--input", path, "--objective", "gaps"])
        out = capsys.readouterr().out
        assert code == 0
        assert "status: optimal" in out
        assert "value: 1" in out
        assert "solver: gap-dp" in out

    def test_solve_problem_file_json_output(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 1), (0, 1)], num_processors=2)
        problem = Problem(objective="power", instance=instance, alpha=2.0)
        path = self.make_instance_file(tmp_path, problem)
        code = main(["solve", "--input", path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["status"] == "optimal"
        assert payload["objective"] == "power"
        assert payload["solver"] == "power-dp"

    def test_solve_infeasible_exit_code(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 0), (0, 0)], num_processors=1)
        path = self.make_instance_file(tmp_path, instance)
        code = main(["solve", "--input", path, "--objective", "gaps"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_solve_explicit_solver(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 3), (1, 4)], num_processors=1)
        path = self.make_instance_file(tmp_path, instance)
        code = main(
            ["solve", "--input", path, "--objective", "gaps", "--solver", "brute-force-gaps"]
        )
        assert code == 0
        assert "solver: brute-force-gaps" in capsys.readouterr().out

    def test_solve_rejects_flags_conflicting_with_problem_file(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        problem = Problem(objective="power", instance=instance, alpha=2.0)
        path = self.make_instance_file(tmp_path, problem)
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--input", path, "--alpha", "99"])
        assert excinfo.value.code == 2
        assert "--alpha" in capsys.readouterr().err

    def test_solve_unknown_solver_is_clean_usage_error(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        path = self.make_instance_file(tmp_path, instance)
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--input", path, "--objective", "gaps", "--solver", "gapdp"])
        assert excinfo.value.code == 2
        assert "unknown solver" in capsys.readouterr().err

    def test_solve_missing_alpha_is_clean_usage_error(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        path = self.make_instance_file(tmp_path, instance)
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--input", path, "--objective", "power"])
        assert excinfo.value.code == 2
        assert "alpha" in capsys.readouterr().err

    def test_solve_requires_objective_for_bare_instance(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        path = self.make_instance_file(tmp_path, instance)
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--input", path])
        assert excinfo.value.code == 2

    def test_list_solvers(self, capsys):
        code = main(["list-solvers"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("gap-dp", "power-dp", "power-approx", "throughput-greedy"):
            assert name in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestVerifyCommand:
    def make_file(self, tmp_path, obj, name="payload.json"):
        path = tmp_path / name
        path.write_text(to_json(obj))
        return str(path)

    def test_verify_problem_file(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (5, 6)], num_processors=2
        )
        path = self.make_file(tmp_path, Problem(objective="gaps", instance=instance))
        code = main(["verify", "--input", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "consistency matrix: OK" in out
        assert "gap-dp" in out and "certified" in out

    def test_verify_bare_instance_with_flags(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs([(0, 2), (1, 3)], num_processors=1)
        path = self.make_file(tmp_path, instance)
        code = main(["verify", "--input", path, "--objective", "power", "--alpha", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power-dp" in out

    def test_verify_infeasible_instance_is_consistent(self, tmp_path, capsys):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 0), (0, 0), (0, 0)], num_processors=2
        )
        path = self.make_file(tmp_path, instance)
        code = main(["verify", "--input", path, "--objective", "gaps"])
        out = capsys.readouterr().out
        assert code == 0
        assert "infeasible" in out

    def test_verify_bad_file_is_usage_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"type\": \"nope\"}")
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--input", str(path)])
        assert excinfo.value.code == 2


class TestFuzzCommand:
    def test_fuzz_green_run(self, capsys):
        code = main(["fuzz", "--seed", "0", "--n", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "30 problems" in out

    def test_fuzz_objective_filter(self, capsys):
        code = main(["fuzz", "--seed", "1", "--n", "9", "--objective", "gaps"])
        out = capsys.readouterr().out
        assert code == 0
        assert "objectives=gaps:" in out

    def test_fuzz_replay_round_trip(self, tmp_path, capsys):
        from repro.api import OneIntervalInstance, to_dict
        from repro.verify import FuzzFailure, save_corpus

        instance = OneIntervalInstance.from_pairs([(0, 2), (1, 3)])
        failure = FuzzFailure(
            index=0,
            kind="differential",
            objective="gaps",
            generator="uniform",
            issues=["stale issue"],
            problem=to_dict(Problem(objective="gaps", instance=instance)),
        )
        corpus = tmp_path / "corpus.json"
        save_corpus([failure], str(corpus))
        code = main(["fuzz", "--replay", str(corpus)])
        out = capsys.readouterr().out
        assert code == 0  # the solvers agree, so the replayed case is green
        assert "1 problems" in out

    def test_fuzz_replay_missing_corpus_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--replay", str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2


class TestBudgetedSolve:
    def make_instance_file(self, tmp_path, obj):
        path = tmp_path / "input.json"
        path.write_text(to_json(obj))
        return str(path)

    def test_solve_budget_prints_certified_gap(self, tmp_path, capsys):
        from repro.api import OneIntervalInstance

        instance = OneIntervalInstance.from_pairs([(0, 3), (2, 6), (9, 14)])
        path = self.make_instance_file(tmp_path, instance)
        code = main(
            ["solve", "--input", path, "--objective", "gaps", "--budget", "2.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "solver: portfolio" in out
        assert "certified gap:" in out

    def test_solve_budget_json_carries_gap(self, tmp_path, capsys):
        from repro.api import OneIntervalInstance

        instance = OneIntervalInstance.from_pairs([(0, 3), (2, 6)])
        path = self.make_instance_file(tmp_path, instance)
        code = main(
            ["solve", "--input", path, "--objective", "gaps", "--budget", "2.0",
             "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["solver"] == "portfolio"
        gap = payload["extra"]["optimality_gap"]
        assert gap["lower"] <= gap["upper"]

    def test_solve_budget_must_be_positive(self, tmp_path):
        from repro.api import OneIntervalInstance

        instance = OneIntervalInstance.from_pairs([(0, 3)])
        path = self.make_instance_file(tmp_path, instance)
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--input", path, "--objective", "gaps",
                  "--budget", "0"])
        assert excinfo.value.code == 2

    def test_solve_budget_rejects_explicit_solver(self, tmp_path):
        from repro.api import OneIntervalInstance

        instance = OneIntervalInstance.from_pairs([(0, 3)])
        path = self.make_instance_file(tmp_path, instance)
        with pytest.raises(SystemExit) as excinfo:
            main(["solve", "--input", path, "--objective", "gaps",
                  "--budget", "1.0", "--solver", "gap-dp"])
        assert excinfo.value.code == 2


class TestPortfolioFuzz:
    def test_portfolio_fuzz_green_run(self, capsys):
        code = main(["fuzz", "--portfolio", "--seed", "0", "--n", "12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "12" in out

    def test_portfolio_fuzz_rejects_conflicting_flags(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--portfolio", "--objective", "gaps"])
        assert excinfo.value.code == 2

    def test_portfolio_fuzz_module_invariants(self):
        from repro.verify import portfolio_fuzz

        report = portfolio_fuzz(seed=3, n=20, budget=2.0)
        assert report.ok, report.summary()
        assert report.cases == 20
        assert report.feasible_cases + report.infeasible_cases == 20
        # Exact DP always joins the race at fuzz sizes (n <= 14), so every
        # feasible case should be certified optimal, not just bounded.
        assert report.optimal_matches == report.feasible_cases


class TestRuntimeFlags:
    """Top-level --backend / --cache-dir flags and the cache sub-command."""

    @pytest.fixture(autouse=True)
    def reset_runtime(self):
        from repro.runtime import configure_backend, configure_disk_cache

        yield
        configure_backend(None)
        configure_disk_cache(None)

    def test_backend_flag_configures_the_default(self):
        from repro.runtime import configured_backend

        code = main(["--backend", "thread", "solve-gap", "0,0", "2,2"])
        assert code == 0
        assert configured_backend() == "thread"

    def test_unknown_backend_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--backend", "quantum", "list-solvers"])
        assert excinfo.value.code == 2

    def test_cache_requires_a_directory(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "stats"])
        assert excinfo.value.code == 2

    def test_cache_stats_and_clear_round_trip(self, tmp_path, capsys):
        from repro.api import clear_solve_cache

        # Start the memory tier cold: a memory hit never reaches the disk
        # tier, and earlier tests may have solved this same tiny instance.
        clear_solve_cache()
        cache_dir = str(tmp_path / "cache")
        code = main(["--cache-dir", cache_dir, "solve-gap", "0,0", "2,2"])
        assert code == 0
        capsys.readouterr()
        code = main(["--cache-dir", cache_dir, "cache", "stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "entries:       1" in out
        code = main(["--cache-dir", cache_dir, "cache", "clear"])
        out = capsys.readouterr().out
        assert code == 0
        assert "removed 1 entries" in out
        code = main(["--cache-dir", cache_dir, "cache", "stats"])
        out = capsys.readouterr().out
        assert "entries:       0" in out

    def test_cache_dir_solves_hit_across_invocations(self, tmp_path, capsys):
        from repro.api import clear_solve_cache
        from repro.api.solvers import _SOLVE_CACHE

        clear_solve_cache()
        cache_dir = str(tmp_path / "cache")
        code = main(["--cache-dir", cache_dir, "solve-gap", "0,0", "2,2", "3,3"])
        first = capsys.readouterr().out
        assert code == 0
        _SOLVE_CACHE.clear()  # a new CLI process would start cold in memory
        code = main(["--cache-dir", cache_dir, "solve-gap", "0,0", "2,2", "3,3"])
        second = capsys.readouterr().out
        assert code == 0
        assert first == second  # the disk tier replayed the warm answer
