"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_solve_gap(self):
        args = build_parser().parse_args(["solve-gap", "0,2", "3,5", "-p", "2"])
        assert args.command == "solve-gap"
        assert args.processors == 2


class TestCommands:
    def test_solve_gap_prints_optimum(self, capsys):
        code = main(["solve-gap", "0,0", "2,2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal gaps: 1" in out

    def test_solve_gap_infeasible_exit_code(self, capsys):
        code = main(["solve-gap", "0,0", "0,0"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_solve_power(self, capsys):
        code = main(["solve-power", "0,0", "2,2", "--alpha", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "optimal power: 8" in out

    def test_approx_power(self, capsys):
        code = main(["approx-power", "0 1;1 2;5 6", "--alpha", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power:" in out

    def test_throughput(self, capsys):
        code = main(["throughput", "0;1;9", "--max-gaps", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scheduled 2/3" in out

    def test_experiment_single(self, capsys):
        code = main(["experiment", "E12", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[E12]" in out

    def test_malformed_job_spec(self):
        with pytest.raises(Exception):
            main(["solve-gap", "nonsense"])
