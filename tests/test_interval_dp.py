"""Tests for the unified interval-DP engine (objectives, pruning, iteration)."""

import inspect
import random
import sys

import pytest

from repro import MultiprocessorInstance
from repro.core.brute_force import (
    brute_force_gap_multiproc,
    brute_force_power_multiproc,
)
from repro.core.dp_profile import IntervalDecomposition
from repro.core.exceptions import InvalidInstanceError
from repro.core.interval_dp import (
    BOTTOM_UP_ENGINE_VERSION,
    ENGINE_NAME,
    ENGINE_VERSION,
    TRAMPOLINE_ENGINE_VERSION,
    GapObjective,
    IntervalDPEngine,
    PowerObjective,
    TrampolineDPEngine,
    VectorizedDPEngine,
    build_engine,
    staircase_schedule,
)
from repro.core.multiproc_gap_dp import MultiprocessorGapSolver, solve_multiprocessor_gap
from repro.core.multiproc_power_dp import (
    MultiprocessorPowerSolver,
    solve_multiprocessor_power,
)
from repro.perf.seed_baseline import SeedGapSolver, SeedPowerSolver
from tests.conftest import random_window_pairs


def _engine_for(instance, objective):
    return IntervalDPEngine(IntervalDecomposition(instance), objective)


class TestEngineOutcome:
    def test_empty_instance_is_feasible_zero(self):
        instance = MultiprocessorInstance(jobs=[], num_processors=2)
        outcome = _engine_for(instance, GapObjective(2)).solve()
        assert outcome.feasible and outcome.value == 0 and outcome.assignment == {}

    def test_infeasible_instance(self):
        instance = MultiprocessorInstance.from_pairs([(0, 0), (0, 0)], num_processors=1)
        outcome = _engine_for(instance, GapObjective(1)).solve()
        assert not outcome.feasible
        assert outcome.value is None and outcome.assignment is None

    def test_assignment_respects_windows(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 4), (0, 2), (3, 6), (6, 9)], num_processors=2
        )
        outcome = _engine_for(instance, GapObjective(2)).solve()
        assert outcome.feasible
        for job_idx, t in outcome.assignment.items():
            job = instance.jobs[job_idx]
            assert job.release <= t <= job.deadline
        schedule = staircase_schedule(instance, outcome.assignment)
        assert schedule.num_gaps() == outcome.value

    def test_metadata_shape(self):
        instance = MultiprocessorInstance.from_pairs([(0, 3), (2, 5)], num_processors=2)
        engine = _engine_for(instance, PowerObjective(2, 1.5))
        engine.solve()
        meta = engine.metadata()
        assert meta["name"] == ENGINE_NAME
        assert meta["version"] == BOTTOM_UP_ENGINE_VERSION
        assert meta["objective"] == "power"
        stats = meta["stats"]
        assert stats["states_computed"] > 0
        assert all(isinstance(v, int) for v in stats.values())

    def test_trampoline_metadata_reports_v1(self):
        instance = MultiprocessorInstance.from_pairs([(0, 3), (2, 5)], num_processors=2)
        engine = TrampolineDPEngine(IntervalDecomposition(instance), GapObjective(2))
        engine.solve()
        meta = engine.metadata()
        assert meta["name"] == ENGINE_NAME
        assert meta["version"] == TRAMPOLINE_ENGINE_VERSION

    def test_build_engine_selectors(self):
        instance = MultiprocessorInstance.from_pairs([(0, 3)], num_processors=1)
        decomp = IntervalDecomposition(instance)
        assert isinstance(build_engine(decomp, GapObjective(1), "v2"), IntervalDPEngine)
        assert isinstance(
            build_engine(decomp, GapObjective(1), "v1"), TrampolineDPEngine
        )
        from repro.core import vector_kernels
        from repro.core.exceptions import EngineConfigurationError

        if vector_kernels.numpy_available():
            engine_v3 = build_engine(decomp, GapObjective(1), "v3")
            assert isinstance(engine_v3, VectorizedDPEngine)
        else:
            with pytest.raises(EngineConfigurationError):
                build_engine(decomp, GapObjective(1), "v3")
        with pytest.raises(ValueError):
            build_engine(decomp, GapObjective(1), "v9")

    def test_power_objective_rejects_negative_alpha(self):
        with pytest.raises(InvalidInstanceError):
            PowerObjective(1, -0.5)


class TestAgainstSeedBaseline:
    """Differential guard: the engine must agree with the frozen seed solvers."""

    @pytest.mark.parametrize("seed", range(15))
    def test_gap_matches_seed_solver(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 9)
        p = rng.randint(1, 3)
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 12), max_window=5)
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        engine = solve_multiprocessor_gap(instance)
        feasible, value, _sched = SeedGapSolver(instance).solve()
        assert engine.feasible == feasible
        if feasible:
            assert engine.num_gaps == value

    @pytest.mark.parametrize("seed", range(15))
    def test_power_matches_seed_solver(self, seed):
        rng = random.Random(500 + seed)
        n = rng.randint(1, 8)
        p = rng.randint(1, 3)
        alpha = rng.choice([0.0, 0.5, 2.0, 4.0])
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 11), max_window=5)
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        engine = solve_multiprocessor_power(instance, alpha=alpha)
        feasible, value, _sched = SeedPowerSolver(instance, alpha=alpha).solve()
        assert engine.feasible == feasible
        if feasible:
            assert engine.power == pytest.approx(value)


class TestPruning:
    def test_hall_pruning_fires_on_overloaded_interval(self):
        # Five jobs forced into a two-column window on one processor: the
        # prefix Hall count proves infeasibility without expanding states.
        instance = MultiprocessorInstance.from_pairs(
            [(5, 6)] * 5 + [(0, 20)], num_processors=1
        )
        solver = MultiprocessorGapSolver(instance)
        solution = solver.solve()
        assert not solution.feasible
        assert solver.engine.stats.hall_pruned > 0

    def test_hall_pruning_never_changes_the_optimum(self):
        # Random sweep: values must match the brute-force oracle whether or
        # not pruning fires along the way.
        for seed in range(8):
            rng = random.Random(2000 + seed)
            n = rng.randint(3, 7)
            p = rng.randint(1, 2)
            pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 9), max_window=3)
            instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
            dp = solve_multiprocessor_gap(instance, use_full_horizon=True)
            brute, _ = brute_force_gap_multiproc(instance)
            assert (dp.num_gaps if dp.feasible else None) == brute

    def test_dominance_pruning_fires_and_preserves_optimality(self):
        fired = 0
        for seed in range(12):
            rng = random.Random(3000 + seed)
            n = rng.randint(5, 8)
            p = rng.randint(2, 4)
            pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 12), max_window=6)
            instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
            solver = MultiprocessorGapSolver(instance, use_full_horizon=True)
            solution = solver.solve()
            brute, _ = brute_force_gap_multiproc(instance)
            assert (solution.num_gaps if solution.feasible else None) == brute
            fired += solver.engine.stats.dominance_dropped > 0
        # The flipped-corrected-value dominance rule fires on most random
        # multiprocessor instances; a dead prune would be silent regression.
        assert fired >= 3

    def test_power_matches_brute_force_with_pruning(self):
        for seed in range(6):
            rng = random.Random(4000 + seed)
            n = rng.randint(3, 5)
            p = rng.randint(1, 2)
            alpha = rng.choice([0.5, 1.0, 3.0])
            pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 8), max_window=4)
            instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
            dp = solve_multiprocessor_power(instance, alpha=alpha, use_full_horizon=True)
            brute, _ = brute_force_power_multiproc(instance, alpha=alpha)
            if brute is None:
                assert not dp.feasible
            else:
                assert dp.power == pytest.approx(brute)


class TestIterativeEvaluation:
    """The deep-recursion regression: wide-window n = 60 with sparse releases.

    The pre-engine solvers recursed on the native stack and needed well
    over 100 frames beyond the caller on this instance; the engine's
    explicit-stack trampoline needs O(1).  The test pins that by solving
    under a recursion limit only slightly above the current frame depth —
    it passes only with the iterative engine.
    """

    @pytest.fixture
    def wide_window_instance(self) -> MultiprocessorInstance:
        pairs = [(2 * i, 2 * i + 6) for i in range(60)]
        return MultiprocessorInstance.from_pairs(pairs, num_processors=1)

    def _with_recursion_limit(self, extra_frames, fn):
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(len(inspect.stack()) + extra_frames)
        try:
            return fn()
        finally:
            sys.setrecursionlimit(old_limit)

    def test_engine_solves_deep_instance_under_tight_recursion_limit(
        self, wide_window_instance
    ):
        solution = self._with_recursion_limit(
            80, lambda: solve_multiprocessor_gap(wide_window_instance)
        )
        assert solution.feasible
        # Cross-check the value with the seed solver under a normal limit.
        _feasible, seed_value, _sched = SeedGapSolver(wide_window_instance).solve()
        assert solution.num_gaps == seed_value
        solution.require_schedule().validate()

    def test_seed_solver_hits_the_recursion_limit_on_the_same_instance(
        self, wide_window_instance
    ):
        # Documents the hazard the engine removes: same instance, same
        # limit, the recursive seed implementation cannot finish.
        with pytest.raises(RecursionError):
            self._with_recursion_limit(
                80, lambda: SeedGapSolver(wide_window_instance).solve()
            )

    def test_power_engine_is_iterative_too(self, wide_window_instance):
        solution = self._with_recursion_limit(
            80,
            lambda: solve_multiprocessor_power(wide_window_instance, alpha=2.0),
        )
        assert solution.feasible
        assert solution.power == pytest.approx(
            solution.require_schedule().power_cost(2.0)
        )

    def test_peak_stack_depth_is_reported(self, wide_window_instance):
        solver = MultiprocessorGapSolver(wide_window_instance)
        solver.solve()
        # The logical DP nests dozens of levels deep; the engine tracked
        # them on its explicit stack, not the interpreter's.
        assert solver.engine.stats.peak_stack_depth >= 30


class TestMemoReuse:
    def test_second_solve_reuses_every_state(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 3), (1, 4), (2, 6), (5, 8)], num_processors=2
        )
        solver = MultiprocessorPowerSolver(instance, alpha=1.0)
        first = solver.solve()
        computed = solver.engine.stats.states_computed
        second = solver.solve()
        assert first.power == second.power
        assert solver.engine.stats.states_computed == computed


class TestEngineV1VsV2:
    """Differential guard: the bottom-up and trampoline evaluators agree."""

    @pytest.mark.parametrize("seed", range(20))
    def test_gap_engines_agree(self, seed):
        rng = random.Random(7000 + seed)
        n = rng.randint(1, 10)
        p = rng.randint(1, 4)
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 14), max_window=6)
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        v1 = solve_multiprocessor_gap(instance, engine="v1")
        v2 = solve_multiprocessor_gap(instance, engine="v2")
        assert v1.feasible == v2.feasible
        if v2.feasible:
            assert v1.num_gaps == v2.num_gaps
            v2.require_schedule().validate()
            assert v2.require_schedule().num_gaps() == v2.num_gaps

    @pytest.mark.parametrize("seed", range(20))
    def test_power_engines_agree(self, seed):
        rng = random.Random(8000 + seed)
        n = rng.randint(1, 9)
        p = rng.randint(1, 4)
        alpha = rng.choice([0.0, 0.5, 1.5, 3.0])
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 13), max_window=6)
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        v1 = solve_multiprocessor_power(instance, alpha=alpha, engine="v1")
        v2 = solve_multiprocessor_power(instance, alpha=alpha, engine="v2")
        assert v1.feasible == v2.feasible
        if v2.feasible:
            assert v2.power == pytest.approx(v1.power)
            v2.require_schedule().validate()
            assert v2.require_schedule().power_cost(alpha) == pytest.approx(v2.power)


class TestPeakDepthReporting:
    """Satellite regression: leaf/Hall-pruned-only runs must not report 0."""

    #: Five jobs forced into a two-column window: both engines prune the
    #: root via the Hall condition without expanding any branch state.
    HALL_PRUNED = [(5, 6)] * 5 + [(0, 20)]

    @pytest.mark.parametrize("engine", ["v1", "v2"])
    def test_hall_pruned_run_reports_positive_depth(self, engine):
        instance = MultiprocessorInstance.from_pairs(self.HALL_PRUNED, num_processors=1)
        solver = MultiprocessorGapSolver(instance, engine=engine)
        solution = solver.solve()
        assert not solution.feasible
        stats = solver.engine.stats
        assert stats.hall_pruned > 0
        assert stats.states_computed > 0
        assert stats.peak_stack_depth >= 1

    @pytest.mark.parametrize("engine", ["v1", "v2"])
    def test_single_column_run_reports_positive_depth(self, engine):
        instance = MultiprocessorInstance.from_pairs([(4, 4), (4, 4)], num_processors=2)
        solver = MultiprocessorGapSolver(instance, engine=engine)
        assert solver.solve().feasible
        assert solver.engine.stats.peak_stack_depth >= 1

    def test_v2_depth_tracks_the_dependency_chain(self):
        pairs = [(2 * i, 2 * i + 6) for i in range(60)]
        instance = MultiprocessorInstance.from_pairs(pairs, num_processors=1)
        solver = MultiprocessorGapSolver(instance, engine="v2")
        solver.solve()
        # The node DAG of the sparse staircase nests dozens of levels deep;
        # the bottom-up pass reports the longest dependency chain.
        assert solver.engine.stats.peak_stack_depth >= 30
