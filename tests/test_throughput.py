"""Unit tests for the Theorem 11 throughput greedy."""

import math

import pytest

from repro import InvalidInstanceError, MultiIntervalInstance
from repro.core.brute_force import brute_force_throughput
from repro.core.throughput import greedy_throughput_schedule
from repro.generators.random_jobs import random_multi_interval_instance


class TestGreedyThroughput:
    def test_zero_budget_schedules_nothing(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [5]])
        result = greedy_throughput_schedule(instance, max_gaps=0)
        assert result.num_scheduled == 0

    def test_negative_budget_rejected(self):
        instance = MultiIntervalInstance.from_time_lists([[0]])
        with pytest.raises(InvalidInstanceError):
            greedy_throughput_schedule(instance, max_gaps=-1)

    def test_single_round_picks_largest_fillable_interval(self):
        # Jobs 0-2 can fill [0, 2]; job 3 is isolated far away.
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [2], [50]])
        result = greedy_throughput_schedule(instance, max_gaps=1)
        assert result.num_scheduled == 3
        assert result.working_intervals[0].length == 3

    def test_two_rounds_reach_isolated_job(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [2], [50]])
        result = greedy_throughput_schedule(instance, max_gaps=2)
        assert result.num_scheduled == 4
        assert len(result.working_intervals) == 2

    def test_schedule_is_valid_and_within_gap_budget(self):
        instance = random_multi_interval_instance(
            num_jobs=8, horizon=24, intervals_per_job=2, interval_length=2, seed=2
        )
        for budget in (1, 2, 3):
            result = greedy_throughput_schedule(instance, max_gaps=budget)
            result.schedule.validate(require_complete=False)
            # k working intervals produce at most k - 1 internal gaps.
            assert result.num_internal_gaps <= max(0, budget - 1)

    def test_working_intervals_do_not_overlap(self):
        instance = random_multi_interval_instance(
            num_jobs=10, horizon=30, intervals_per_job=2, interval_length=2, seed=4
        )
        result = greedy_throughput_schedule(instance, max_gaps=4)
        intervals = sorted((w.start, w.end) for w in result.working_intervals)
        for (a0, b0), (a1, _b1) in zip(intervals, intervals[1:]):
            assert b0 < a1

    def test_greedy_interval_lengths_are_non_increasing(self):
        instance = random_multi_interval_instance(
            num_jobs=10, horizon=30, intervals_per_job=2, interval_length=3, seed=8
        )
        result = greedy_throughput_schedule(instance, max_gaps=4)
        lengths = [w.length for w in result.working_intervals]
        assert lengths == sorted(lengths, reverse=True)


class TestApproximationQuality:
    @pytest.mark.parametrize("seed,budget", [(1, 1), (2, 2), (3, 2), (4, 3)])
    def test_sqrt_n_guarantee_against_brute_force(self, seed, budget):
        instance = random_multi_interval_instance(
            num_jobs=6, horizon=18, intervals_per_job=2, interval_length=2, seed=seed
        )
        greedy = greedy_throughput_schedule(instance, max_gaps=budget)
        optimal, _ = brute_force_throughput(instance, max_gaps=budget)
        n = instance.num_jobs
        assert greedy.num_scheduled * (2 * math.sqrt(n) + 1) >= optimal
