"""Unit tests for the Theorem 3 approximation algorithm."""

import pytest

from repro import InfeasibleInstanceError, InvalidInstanceError, MultiIntervalInstance
from repro.core.brute_force import brute_force_power_multi_interval
from repro.core.power_approx import approximate_power_schedule, build_packing_instance
from repro.generators.random_jobs import random_multi_interval_instance


class TestPackingConstruction:
    def test_pairs_of_adjacent_slots_become_sets(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [1], [4]])
        packing, descriptors = build_packing_instance(instance, k=2, residue=0)
        job_pairs = {tuple(sorted(jobs)) for jobs, _anchor in descriptors}
        assert (0, 1) in job_pairs
        assert all(len(s) == 3 for s in packing.sets)

    def test_residue_filters_anchor_times(self):
        instance = MultiIntervalInstance.from_time_lists([[1], [2]])
        _packing, descriptors = build_packing_instance(instance, k=2, residue=1)
        assert all(anchor % 2 == 1 for _jobs, anchor in descriptors)

    def test_invalid_k_rejected(self):
        instance = MultiIntervalInstance.from_time_lists([[0]])
        with pytest.raises(InvalidInstanceError):
            build_packing_instance(instance, k=1, residue=0)

    def test_no_adjacent_slots_yields_empty_collection(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [10]])
        _packing, descriptors = build_packing_instance(instance, k=2, residue=0)
        assert descriptors == []


class TestApproximation:
    def test_empty_instance(self):
        result = approximate_power_schedule(MultiIntervalInstance(jobs=[]), alpha=2.0)
        assert result.power == 0.0

    def test_complete_and_valid_schedule(self, small_multi_interval_instance):
        result = approximate_power_schedule(small_multi_interval_instance, alpha=2.0)
        result.schedule.validate()
        assert result.schedule.is_complete()

    def test_infeasible_instance_raises(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [0]])
        with pytest.raises(InfeasibleInstanceError):
            approximate_power_schedule(instance, alpha=1.0)

    def test_negative_alpha_rejected(self):
        instance = MultiIntervalInstance.from_time_lists([[0]])
        with pytest.raises(InvalidInstanceError):
            approximate_power_schedule(instance, alpha=-0.1)

    def test_guarantee_factor_formula(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [1]])
        result = approximate_power_schedule(instance, alpha=3.0)
        assert result.guarantee_factor == pytest.approx(1 + 2.0)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 4.0])
    def test_within_theorem_bound_against_brute_force(self, alpha):
        instance = random_multi_interval_instance(
            num_jobs=6, horizon=20, intervals_per_job=2, interval_length=2, seed=3
        )
        result = approximate_power_schedule(instance, alpha=alpha)
        optimal, _ = brute_force_power_multi_interval(instance, alpha=alpha)
        assert optimal is not None
        bound = (1.0 + (2.0 / 3.0) * alpha) * optimal + 1e-9
        assert result.power <= bound

    def test_packing_pairs_adjacent_jobs_reduce_spans(self):
        # Eight jobs that pair up into four adjacent blocks; the packing phase
        # should schedule a significant fraction back-to-back.
        time_lists = [[0, 10], [1, 11], [20, 30], [21, 31], [40, 50], [41, 51], [60, 70], [61, 71]]
        instance = MultiIntervalInstance.from_time_lists(time_lists)
        result = approximate_power_schedule(instance, alpha=5.0)
        assert result.packed_jobs >= 4
        assert result.schedule.num_spans() <= 6

    def test_larger_k_still_produces_valid_schedules(self):
        instance = random_multi_interval_instance(
            num_jobs=8, horizon=30, intervals_per_job=2, interval_length=3, seed=9
        )
        result = approximate_power_schedule(instance, alpha=2.0, k=3)
        result.schedule.validate()
        assert result.k == 3
