"""End-to-end tests for the scheduling service (daemon + HTTP + client).

The in-process tests boot a real :class:`ServiceServer` on an ephemeral
port — the HTTP listener, asyncio scheduler, SQLite store, and admission
controller are all live; only the process boundary is skipped, which
lets the tests register throwaway solvers (a gate-controlled "sleepy"
solver for deterministic cancel-while-running coverage, a crashing one
for the error envelope).  The subprocess tests cover what in-process
cannot: SIGKILL + restart recovery and SIGTERM graceful drain of
``repro-sched serve``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    SolveResult,
    solve,
    to_json,
)
from repro.api.registry import _REGISTRY, register_solver
from repro.service import ServiceClient, ServiceError, ServiceServer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Gate the sleepy solver blocks on; tests set it to release held jobs.
SLEEP_GATE = threading.Event()


def _register_test_solvers() -> None:
    if "test-sleepy" in _REGISTRY:
        return

    @register_solver(
        "test-sleepy",
        objective="gaps",
        kind="exact",
        instance_types=(OneIntervalInstance,),
        description="test-only: blocks on a gate, then delegates to gap-dp",
    )
    def _sleepy(problem: Problem) -> SolveResult:
        SLEEP_GATE.wait(timeout=30.0)
        return solve(problem, solver="gap-dp")

    @register_solver(
        "test-crash",
        objective="gaps",
        kind="exact",
        instance_types=(OneIntervalInstance,),
        description="test-only: always raises",
    )
    def _crash(problem: Problem) -> SolveResult:
        raise RuntimeError("intentional test crash")


@pytest.fixture(scope="module", autouse=True)
def test_solvers():
    """Register the throwaway solvers for this module only.

    The registry is process-global, so teardown must remove them — other
    test modules enumerate "every capable solver" and must never see a
    solver that blocks or crashes on purpose.
    """
    _register_test_solvers()
    yield
    _REGISTRY.pop("test-sleepy", None)
    _REGISTRY.pop("test-crash", None)


def gap_problem(seed: int) -> Problem:
    pairs = [(seed % 5, seed % 5 + 3), (seed % 3 + 1, seed % 3 + 6), (8, 11 + seed % 2)]
    return Problem(
        objective="gaps",
        instance=MultiprocessorInstance.from_pairs(pairs, num_processors=1 + seed % 2),
    )


def power_problem(seed: int) -> Problem:
    pairs = [(0, 4 + seed % 3), (2, 7), (seed % 4 + 5, 12)]
    return Problem(
        objective="power",
        instance=MultiprocessorInstance.from_pairs(pairs, num_processors=1),
        alpha=2.0 + seed % 3,
    )


def sleepy_problem(seed: int) -> Problem:
    # Distinct instances so the stream's canonical dedupe never merges them.
    return Problem(
        objective="gaps",
        instance=OneIntervalInstance.from_pairs([(0, 3 + seed), (1, 4 + seed)]),
    )


@pytest.fixture
def make_server(tmp_path):
    """Factory for in-process servers on ephemeral ports; stops them on exit."""
    servers = []
    counter = [0]

    def factory(**kwargs) -> ServiceServer:
        counter[0] += 1
        kwargs.setdefault("backend", "thread")
        kwargs.setdefault("window", 4)
        kwargs.setdefault("poll_interval", 0.02)
        server = ServiceServer(
            str(tmp_path / f"jobs{counter[0]}.db"), port=0, **kwargs
        ).start()
        servers.append(server)
        return server

    SLEEP_GATE.clear()
    yield factory
    SLEEP_GATE.set()  # release anything still blocked before teardown
    for server in servers:
        server.stop()


def _wait_for_state(client, job_id, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        current = client.status(job_id)["state"]
        if current == state:
            return
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {state!r} (last: {current!r})")


class TestSubmitPollResult:
    def test_result_parity_with_direct_solve(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="parity")
        problems = [gap_problem(3), power_problem(5)]
        for problem in problems:
            job_id = client.submit(problem)
            remote = client.result(job_id, timeout=30.0)
            # wall_time is excluded from canonical JSON, so envelopes from
            # the service and from a local call are byte-identical.
            assert to_json(remote) == to_json(solve(problem))

    def test_status_view_fields(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="viewer")
        job_id = client.submit(gap_problem(1), priority=7)
        client.result(job_id, timeout=30.0)
        view = client.status(job_id)
        assert view["id"] == job_id
        assert view["client_id"] == "viewer"
        assert view["priority"] == 7
        assert view["state"] == "done"
        assert view["attempts"] == 1
        assert view["finished_at"] >= view["started_at"] >= view["submitted_at"]
        assert "problem" not in view  # payload bodies stay off the status view

    def test_fifty_job_mixed_workload(self, make_server):
        # The ISSUE's acceptance scenario: 50 mixed gap/power jobs through
        # the thread backend, every envelope byte-identical to solve().
        server = make_server(window=8)
        client = ServiceClient(server.url, client_id="bulk")
        problems = [
            gap_problem(i) if i % 2 == 0 else power_problem(i) for i in range(50)
        ]
        job_ids = [client.submit(problem) for problem in problems]
        for problem, job_id in zip(problems, job_ids):
            remote = client.result(job_id, timeout=60.0)
            assert to_json(remote) == to_json(solve(problem))
        stats = client.stats()
        assert stats["service"]["jobs"]["done"] == 50
        assert stats["service"]["jobs"]["queued"] == 0
        assert stats["tasks"]["completed"] >= 1

    def test_error_job_carries_error_envelope(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="crash")
        job_id = client.submit(sleepy_problem(0), solver="test-crash")
        _wait_for_state(client, job_id, "error")
        view = client.status(job_id)
        assert "RuntimeError" in view["error"]
        remote = client.result(job_id, timeout=10.0)
        assert remote.status == "error"
        assert remote.extra["error_type"] == "RuntimeError"

    def test_unknown_solver_becomes_error_job(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="typo")
        job_id = client.submit(gap_problem(0), solver="no-such-solver")
        _wait_for_state(client, job_id, "error")
        assert "SolverError" in client.status(job_id)["error"]

    def test_priority_orders_execution(self, make_server):
        # window=1 + a gated job holding the lane: everything submitted
        # behind it is still queued when the lane frees, so the high
        # priority job must run before the earlier-submitted low one.
        server = make_server(window=1)
        client = ServiceClient(server.url, client_id="prio")
        blocker = client.submit(sleepy_problem(0), solver="test-sleepy")
        _wait_for_state(client, blocker, "running")
        low = client.submit(gap_problem(1), priority=0)
        high = client.submit(gap_problem(2), priority=9)
        SLEEP_GATE.set()
        client.result(low, timeout=30.0)
        assert (
            client.status(high)["started_at"] <= client.status(low)["started_at"]
        )


class TestCancel:
    def test_cancel_queued_is_immediate(self, make_server):
        server = make_server(window=1)
        client = ServiceClient(server.url, client_id="cancel")
        blocker = client.submit(sleepy_problem(0), solver="test-sleepy")
        _wait_for_state(client, blocker, "running")
        queued = client.submit(sleepy_problem(1), solver="test-sleepy")
        assert client.cancel(queued)["state"] == "cancelled"
        assert client.status(queued)["state"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.result(queued, wait=False)
        assert excinfo.value.status == 410
        SLEEP_GATE.set()
        client.result(blocker, timeout=30.0)

    def test_cancel_running_lands_cancelled_and_discards_result(self, make_server):
        server = make_server(window=1)
        client = ServiceClient(server.url, client_id="cancel")
        job_id = client.submit(sleepy_problem(2), solver="test-sleepy")
        _wait_for_state(client, job_id, "running")
        assert client.cancel(job_id)["state"] == "cancelling"
        SLEEP_GATE.set()
        _wait_for_state(client, job_id, "cancelled")
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id, wait=False)
        assert excinfo.value.status == 410

    def test_cancel_finished_job_conflicts(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="cancel")
        job_id = client.submit(gap_problem(0))
        client.result(job_id, timeout=30.0)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409
        assert excinfo.value.payload["state"] == "done"

    def test_cancel_unknown_job_404(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="cancel")
        with pytest.raises(ServiceError) as excinfo:
            client.cancel("deadbeef")
        assert excinfo.value.status == 404


class TestAdmission:
    def test_quota_429_with_structured_payload(self, make_server):
        server = make_server(window=1, max_queued=2, rate=0.0)
        client = ServiceClient(server.url, client_id="greedy")
        held = [
            client.submit(sleepy_problem(i), solver="test-sleepy") for i in range(2)
        ]
        with pytest.raises(ServiceError) as excinfo:
            client.submit(sleepy_problem(9), solver="test-sleepy")
        assert excinfo.value.status == 429
        assert excinfo.value.payload["error"] == "quota_exceeded"
        assert excinfo.value.payload["retry_after"] is None
        # Another client is unaffected by greedy's quota.
        other = ServiceClient(server.url, client_id="polite")
        done = other.submit(gap_problem(0))
        SLEEP_GATE.set()
        other.result(done, timeout=30.0)
        for job_id in held:
            client.result(job_id, timeout=30.0)
        # Outstanding jobs drained, the client may submit again.
        assert client.submit(gap_problem(1))

    def test_rate_limit_429_with_retry_after(self, make_server):
        server = make_server(rate=0.001, burst=2, max_queued=0)
        client = ServiceClient(server.url, client_id="chatty")
        client.submit(gap_problem(0))
        client.submit(gap_problem(1))
        with pytest.raises(ServiceError) as excinfo:
            client.submit(gap_problem(2))
        assert excinfo.value.status == 429
        assert excinfo.value.payload["error"] == "rate_limited"
        assert excinfo.value.payload["retry_after"] > 0


class TestHttpSurface:
    def test_healthz(self, make_server):
        server = make_server()
        payload = ServiceClient(server.url).health()
        assert payload["status"] == "ok"
        assert payload["state"] == "running"

    def test_stats_shape_matches_cli_payload(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="stats")
        job_id = client.submit(gap_problem(0))
        client.result(job_id, timeout=30.0)
        payload = client.stats()
        # The shared operational payload (same keys repro-sched stats prints)...
        assert set(payload) == {"cache", "engine", "tasks", "service"}
        assert {"hits", "misses", "fresh_solves", "disk"} <= set(payload["cache"])
        assert payload["tasks"]["completed"] >= 1
        assert payload["tasks"]["by_status"].get("optimal", 0) >= 1
        # ...plus the service block.
        service = payload["service"]
        assert service["jobs"]["done"] >= 1
        assert service["scheduler"]["window"] == 4
        assert service["admission"]["admitted"] >= 1

    def test_unknown_endpoints_and_bad_bodies(self, make_server):
        server = make_server()

        def raw_request(method, path, body=None):
            request = urllib.request.Request(
                server.url + path,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=5.0) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as exc:
                return exc.code, json.loads(exc.read())

        assert raw_request("GET", "/v1/nope")[0] == 404
        assert raw_request("POST", "/v1/nope")[0] == 404
        assert raw_request("GET", "/v1/jobs/deadbeef")[0] == 404
        assert raw_request("GET", "/v1/jobs/deadbeef/result")[0] == 404
        status, payload = raw_request("POST", "/v1/jobs", b"not json")
        assert status == 400
        assert "JSON" in payload["error"]
        status, payload = raw_request("POST", "/v1/jobs", b'{"problem": 42}')
        assert status == 400
        status, payload = raw_request(
            "POST", "/v1/jobs", b'{"problem": {"type": "job", "release": "x"}}'
        )
        assert status == 400

    def test_result_not_ready_is_202(self, make_server):
        server = make_server(window=1)
        client = ServiceClient(server.url, client_id="poll")
        job_id = client.submit(sleepy_problem(3), solver="test-sleepy")
        with pytest.raises(ServiceError) as excinfo:
            client.result(job_id, wait=False)
        assert excinfo.value.status == 202
        SLEEP_GATE.set()
        client.result(job_id, timeout=30.0)

    def test_draining_refuses_submissions(self, make_server):
        server = make_server()
        client = ServiceClient(server.url, client_id="late")
        server.draining = True
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(gap_problem(0))
            assert excinfo.value.status == 503
        finally:
            server.draining = False


class TestServiceCLIVerbs:
    """The repro-sched submit/status/result/cancel/stats client verbs."""

    @pytest.fixture
    def problem_file(self, tmp_path):
        path = tmp_path / "problem.json"
        path.write_text(to_json(gap_problem(4)))
        return str(path)

    def test_submit_wait_prints_envelope(self, make_server, problem_file, capsys):
        from repro.cli import main

        server = make_server()
        code = main(
            ["submit", "--url", server.url, "-i", problem_file, "--wait"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "solve_result"
        assert payload["status"] == "optimal"

    def test_submit_status_result_cancel_flow(self, make_server, problem_file, capsys):
        from repro.cli import main

        server = make_server()
        assert main(["submit", "--url", server.url, "-i", problem_file]) == 0
        job_id = capsys.readouterr().out.strip()
        assert main(["status", "--url", server.url, job_id]) == 0
        view = json.loads(capsys.readouterr().out)
        assert view["id"] == job_id
        assert main(["result", "--url", server.url, job_id]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["status"] == "optimal"
        # Terminal job: cancel is a 409 — CLI exit 1 with the payload on stderr.
        assert main(["cancel", "--url", server.url, job_id]) == 1
        assert "409" in capsys.readouterr().err

    def test_quota_denial_is_structured_on_stderr(self, make_server, tmp_path, capsys):
        from repro.cli import main

        server = make_server(window=1, max_queued=1, rate=0.0)
        sleepy = tmp_path / "sleepy.json"
        sleepy.write_text(to_json(sleepy_problem(7)))
        assert (
            main(["submit", "--url", server.url, "-i", str(sleepy),
                  "--solver", "test-sleepy", "--client", "greedy"]) == 0
        )
        capsys.readouterr()
        assert (
            main(["submit", "--url", server.url, "-i", str(sleepy),
                  "--solver", "test-sleepy", "--client", "greedy"]) == 1
        )
        err = capsys.readouterr().err
        assert "quota_exceeded" in err
        SLEEP_GATE.set()

    def test_stats_local_and_remote_share_shape(self, make_server, capsys):
        from repro.cli import main

        server = make_server()
        assert main(["stats"]) == 0
        local = json.loads(capsys.readouterr().out)
        assert main(["stats", "--url", server.url]) == 0
        remote = json.loads(capsys.readouterr().out)
        # One payload shape: the service only adds its "service" block.
        assert set(remote) - set(local) == {"service"}
        for key in ("cache", "tasks", "engine"):
            assert key in local and key in remote
        assert set(local["tasks"]) == set(remote["tasks"])


def _start_serve_subprocess(db_path, *extra_args):
    env = dict(os.environ)
    # Prepend src rather than replace: the daemon must see the same
    # python-path environment as the test process (e.g. the numpy-masking
    # shim of the without-numpy leg), or remote and direct solves would
    # run on different engines and envelope parity would not hold.
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    env.pop("REPRO_BACKEND", None)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "--backend",
            "thread",
            "serve",
            "--db",
            db_path,
            "--port",
            "0",
            "--window",
            "2",
            "--poll-interval",
            "0.02",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline()
    assert "listening on http://" in line, f"unexpected serve banner: {line!r}"
    url = line.split("listening on ", 1)[1].split()[0]
    return process, url


class TestProcessLifecycle:
    def test_kill_and_restart_loses_no_job(self, tmp_path):
        db_path = str(tmp_path / "jobs.db")
        problems = [
            gap_problem(i) if i % 2 == 0 else power_problem(i) for i in range(20)
        ]
        process, url = _start_serve_subprocess(db_path)
        try:
            client = ServiceClient(url, client_id="kill-test")
            job_ids = [client.submit(problem) for problem in problems]
        finally:
            # SIGKILL mid-run: no drain, no atexit — only SQLite's
            # transactions protect the state.
            process.kill()
            process.wait(timeout=10)

        process, url = _start_serve_subprocess(db_path)
        try:
            client = ServiceClient(url, client_id="kill-test")
            for problem, job_id in zip(problems, job_ids):
                remote = client.result(job_id, timeout=60.0)
                assert to_json(remote) == to_json(solve(problem))
            stats = client.stats()
            assert stats["service"]["jobs"]["done"] == 20
        finally:
            process.terminate()
            process.wait(timeout=15)

    def test_sigterm_drains_gracefully(self, tmp_path):
        db_path = str(tmp_path / "jobs.db")
        process, url = _start_serve_subprocess(db_path)
        client = ServiceClient(url, client_id="drain-test")
        job_ids = [client.submit(gap_problem(i)) for i in range(6)]
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "drain requested" in out
        assert "drained cleanly" in out
        # Nothing may be left mid-flight: every job is either terminal or
        # still safely queued for the next start.
        from repro.service import JobQueue

        store = JobQueue(db_path)
        try:
            counts = store.counts()
            assert counts["running"] == 0
            assert counts["done"] + counts["queued"] == len(job_ids)
        finally:
            store.close()
