"""Unit tests for the power model and the discrete-time simulator."""

import pytest

from repro import MultiprocessorInstance, OneIntervalInstance, Schedule, solve_multiprocessor_power
from repro.core.exceptions import InvalidInstanceError
from repro.power import PowerModel, SleepStatePolicy, simulate_schedule


class TestPowerModel:
    def test_gap_cost_min_of_bridging_and_sleeping(self):
        model = PowerModel(alpha=3.0)
        assert model.gap_cost(1) == 1.0
        assert model.gap_cost(5) == 3.0
        assert model.gap_cost(3) == 3.0

    def test_break_even_gap(self):
        assert PowerModel(alpha=4.0).break_even_gap() == pytest.approx(4.0)
        assert PowerModel(alpha=4.0, active_power=2.0).break_even_gap() == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidInstanceError):
            PowerModel(alpha=-1.0)
        with pytest.raises(InvalidInstanceError):
            PowerModel(alpha=1.0, active_power=0.5, sleep_power=1.0)
        with pytest.raises(InvalidInstanceError):
            PowerModel(alpha=1.0).gap_cost(-2)


class TestSimulator:
    def make_schedule(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (2, 2), (9, 9)])
        return Schedule(instance=instance, assignment={0: 0, 1: 2, 2: 9})

    def test_optimal_policy_matches_analytic_power(self):
        schedule = self.make_schedule()
        for alpha in (0.5, 1.0, 2.0, 5.0):
            sim = simulate_schedule(schedule, PowerModel(alpha=alpha))
            assert sim.total_energy == pytest.approx(schedule.power_cost(alpha))

    def test_always_sleep_policy(self):
        schedule = self.make_schedule()
        sim = simulate_schedule(
            schedule, PowerModel(alpha=2.0), SleepStatePolicy.ALWAYS_SLEEP
        )
        # 3 executions + 3 wake-ups.
        assert sim.total_energy == pytest.approx(3 + 3 * 2.0)
        assert sim.total_wakeups == 3

    def test_always_active_policy(self):
        schedule = self.make_schedule()
        sim = simulate_schedule(
            schedule, PowerModel(alpha=2.0), SleepStatePolicy.ALWAYS_ACTIVE
        )
        # Active from time 0 through 9 inclusive plus one wake-up.
        assert sim.total_active_time == 10
        assert sim.total_energy == pytest.approx(10 + 2.0)

    def test_timeout_policy_between_extremes(self):
        schedule = self.make_schedule()
        model = PowerModel(alpha=2.0)
        sleepy = simulate_schedule(schedule, model, SleepStatePolicy.ALWAYS_SLEEP)
        active = simulate_schedule(schedule, model, SleepStatePolicy.ALWAYS_ACTIVE)
        timeout = simulate_schedule(schedule, model, SleepStatePolicy.TIMEOUT, timeout=1)
        assert min(sleepy.total_energy, active.total_energy) <= timeout.total_energy
        assert timeout.total_energy <= max(sleepy.total_energy, active.total_energy) + 2

    def test_multiprocessor_simulation_matches_solver(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (4, 6), (5, 8)], num_processors=2
        )
        solution = solve_multiprocessor_power(instance, alpha=1.5)
        schedule = solution.require_schedule()
        sim = simulate_schedule(schedule, PowerModel(alpha=1.5))
        assert sim.total_energy == pytest.approx(solution.power)
        assert len(sim.traces) == schedule.used_processors()

    def test_empty_schedule(self):
        instance = OneIntervalInstance(jobs=[])
        sim = simulate_schedule(
            Schedule(instance=instance, assignment={}), PowerModel(alpha=1.0)
        )
        assert sim.total_energy == 0.0
        assert sim.traces == []

    def test_trace_reports_busy_times(self):
        schedule = self.make_schedule()
        sim = simulate_schedule(schedule, PowerModel(alpha=1.0))
        assert sim.traces[0].busy_times == [0, 2, 9]
        assert sim.traces[0].executed_jobs == 3
