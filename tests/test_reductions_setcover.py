"""Tests for the Theorem 4/6 set-cover hardness gadgets (experiment E5)."""

import pytest

from repro.core.brute_force import (
    brute_force_gap_multi_interval,
    brute_force_power_multi_interval,
)
from repro.core.exceptions import InvalidInstanceError
from repro.generators.random_jobs import random_set_cover_instance
from repro.reductions import build_gap_gadget, build_power_gadget
from repro.setcover import SetCoverInstance, exact_set_cover, greedy_set_cover


@pytest.fixture
def small_cover_instance() -> SetCoverInstance:
    return SetCoverInstance(
        universe=[0, 1, 2, 3], sets=[[0, 1], [1, 2], [2, 3], [0, 3]]
    )


class TestPowerGadget(object):
    def test_alpha_equals_universe_size(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        assert gadget.alpha == small_cover_instance.num_elements

    def test_structure_one_job_per_element_plus_extra(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        assert gadget.instance.num_jobs == small_cover_instance.num_elements + 1
        assert gadget.instance.jobs[gadget.extra_job].num_times == 1

    def test_intervals_are_far_apart(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        n = small_cover_instance.num_elements
        boundaries = sorted(gadget.interval_of_set.values()) + [gadget.extra_interval]
        for (a_lo, a_hi), (b_lo, _b_hi) in zip(boundaries, boundaries[1:]):
            assert b_lo - a_hi > n**3

    def test_cover_to_schedule_power_matches_claim(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        cover = exact_set_cover(small_cover_instance)
        schedule = gadget.cover_to_schedule(cover)
        assert schedule.power_cost(gadget.alpha) == pytest.approx(
            gadget.power_of_cover_size(len(cover))
        )

    def test_greedy_cover_also_maps(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        cover = greedy_set_cover(small_cover_instance)
        schedule = gadget.cover_to_schedule(cover)
        assert schedule.power_cost(gadget.alpha) == pytest.approx(
            gadget.power_of_cover_size(len(cover))
        )

    def test_optimal_power_equals_optimal_cover_correspondence(self):
        source = random_set_cover_instance(
            num_elements=4, num_sets=4, max_set_size=3, seed=11
        )
        gadget = build_power_gadget(source)
        optimal_cover = len(exact_set_cover(source))
        optimal_power, _ = brute_force_power_multi_interval(gadget.instance, gadget.alpha)
        assert optimal_power == pytest.approx(gadget.power_of_cover_size(optimal_cover))
        assert gadget.cover_size_of_power(optimal_power) == optimal_cover

    def test_schedule_to_cover_roundtrip(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        cover = exact_set_cover(small_cover_instance)
        schedule = gadget.cover_to_schedule(cover)
        recovered = gadget.schedule_to_cover(schedule)
        assert small_cover_instance.is_cover(recovered)
        assert len(recovered) <= len(cover)

    def test_invalid_cover_rejected(self, small_cover_instance):
        gadget = build_power_gadget(small_cover_instance)
        with pytest.raises(InvalidInstanceError):
            gadget.cover_to_schedule([0])  # {0,1} alone does not cover 2, 3

    def test_uncoverable_source_rejected(self):
        with pytest.raises(InvalidInstanceError):
            build_power_gadget(SetCoverInstance(universe=[0, 1], sets=[[0]]))


class TestGapGadget:
    def test_cover_to_schedule_gap_count_equals_cover_size(self, small_cover_instance):
        gadget = build_gap_gadget(small_cover_instance)
        cover = exact_set_cover(small_cover_instance)
        schedule = gadget.cover_to_schedule(cover)
        assert schedule.num_gaps() == gadget.gaps_of_cover_size(len(cover))

    def test_optimal_gaps_equal_optimal_cover(self):
        source = random_set_cover_instance(
            num_elements=5, num_sets=4, max_set_size=3, seed=3
        )
        gadget = build_gap_gadget(source)
        optimal_cover = len(exact_set_cover(source))
        optimal_gaps, _ = brute_force_gap_multi_interval(gadget.instance)
        assert optimal_gaps == optimal_cover
        assert gadget.cover_size_of_gaps(optimal_gaps) == optimal_cover

    def test_schedule_to_cover_size_bounded_by_gaps(self, small_cover_instance):
        gadget = build_gap_gadget(small_cover_instance)
        cover = greedy_set_cover(small_cover_instance)
        schedule = gadget.cover_to_schedule(cover)
        recovered = gadget.schedule_to_cover(schedule)
        assert len(recovered) <= schedule.num_gaps()
