"""Unit tests for schedules and the gap / power accounting helpers."""

import pytest

from repro import (
    InvalidScheduleError,
    MultiprocessorInstance,
    MultiprocessorSchedule,
    OneIntervalInstance,
    Schedule,
)
from repro.core.schedule import (
    gap_lengths_of_busy_times,
    gaps_of_busy_times,
    occupancy_profile,
    power_cost_of_busy_times,
    spans_of_busy_times,
    staircase_normalize,
)


class TestBusyTimeHelpers:
    def test_spans_of_contiguous_times(self):
        assert spans_of_busy_times([3, 1, 2]) == [(1, 3)]

    def test_spans_with_gaps(self):
        assert spans_of_busy_times([0, 1, 4, 7, 8]) == [(0, 1), (4, 4), (7, 8)]

    def test_empty(self):
        assert spans_of_busy_times([]) == []
        assert gaps_of_busy_times([]) == 0
        assert power_cost_of_busy_times([], alpha=5) == 0.0

    def test_gap_lengths(self):
        assert gap_lengths_of_busy_times([0, 1, 4, 7]) == [2, 2]
        assert gaps_of_busy_times([0, 1, 4, 7]) == 2

    def test_duplicates_are_ignored(self):
        assert spans_of_busy_times([2, 2, 3]) == [(2, 3)]

    def test_power_cost_short_gap_bridged(self):
        # gap of length 1 < alpha=3: stay active.
        assert power_cost_of_busy_times([0, 2], alpha=3) == pytest.approx(2 + 3 + 1)

    def test_power_cost_long_gap_sleeps(self):
        # gap of length 5 > alpha=2: sleep and wake.
        assert power_cost_of_busy_times([0, 6], alpha=2) == pytest.approx(2 + 2 + 2)

    def test_power_cost_alpha_zero(self):
        assert power_cost_of_busy_times([0, 5, 9], alpha=0) == pytest.approx(3)

    def test_occupancy_profile(self):
        profile = occupancy_profile([(1, 4), (2, 4), (1, 6)])
        assert profile == {4: 2, 6: 1}

    def test_staircase_normalize_stacks_prefix(self):
        assignment = {0: (3, 5), 1: (1, 5), 2: (2, 9)}
        normalized = staircase_normalize(assignment)
        levels_at_5 = sorted(proc for job, (proc, t) in normalized.items() if t == 5)
        assert levels_at_5 == [1, 2]
        assert normalized[2] == (1, 9)


class TestSchedule:
    def make(self):
        instance = OneIntervalInstance.from_pairs([(0, 3), (0, 3), (5, 6)])
        return Schedule(instance=instance, assignment={0: 0, 1: 1, 2: 6})

    def test_gap_and_span_counts(self):
        schedule = self.make()
        assert schedule.num_spans() == 2
        assert schedule.num_gaps() == 1
        assert schedule.gap_lengths() == [4]

    def test_power_cost(self):
        schedule = self.make()
        assert schedule.power_cost(alpha=2) == pytest.approx(3 + 2 + 2)
        assert schedule.power_cost(alpha=10) == pytest.approx(3 + 10 + 4)

    def test_validation_passes(self):
        self.make().validate()

    def test_validation_rejects_wrong_time(self):
        instance = OneIntervalInstance.from_pairs([(0, 1)])
        schedule = Schedule(instance=instance, assignment={0: 5})
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_validation_rejects_double_booking(self):
        instance = OneIntervalInstance.from_pairs([(0, 3), (0, 3)])
        schedule = Schedule(instance=instance, assignment={0: 1, 1: 1})
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_validation_rejects_incomplete_when_required(self):
        instance = OneIntervalInstance.from_pairs([(0, 3), (0, 3)])
        schedule = Schedule(instance=instance, assignment={0: 1})
        with pytest.raises(InvalidScheduleError):
            schedule.validate(require_complete=True)
        schedule.validate(require_complete=False)

    def test_validation_rejects_unknown_job(self):
        instance = OneIntervalInstance.from_pairs([(0, 3)])
        schedule = Schedule(instance=instance, assignment={7: 1})
        with pytest.raises(InvalidScheduleError):
            schedule.validate(require_complete=False)

    def test_as_table_sorted_by_time(self):
        rows = self.make().as_table()
        assert [row[2] for row in rows] == [0, 1, 6]


class TestMultiprocessorSchedule:
    def make(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 3), (0, 3), (2, 6), (5, 6)], num_processors=2
        )
        assignment = {0: (1, 0), 1: (2, 0), 2: (1, 2), 3: (1, 5)}
        return MultiprocessorSchedule(instance=instance, assignment=assignment)

    def test_per_processor_gaps(self):
        schedule = self.make()
        # processor 1 busy at 0, 2, 5 -> 2 gaps; processor 2 busy at 0 -> 0 gaps.
        assert schedule.gaps_by_processor() == {1: 2, 2: 0}
        assert schedule.num_gaps() == 2

    def test_used_processors_and_profile(self):
        schedule = self.make()
        assert schedule.used_processors() == 2
        assert schedule.occupancy_profile() == {0: 2, 2: 1, 5: 1}

    def test_power_cost_sums_processors(self):
        schedule = self.make()
        expected = (3 + 2 + min(1, 2) + min(2, 2)) + (1 + 2)
        assert schedule.power_cost(alpha=2) == pytest.approx(expected)

    def test_staircase_never_increases_gaps(self):
        schedule = self.make()
        assert schedule.staircase().num_gaps() <= schedule.num_gaps()

    def test_validation_rejects_bad_processor(self):
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=1)
        schedule = MultiprocessorSchedule(instance=instance, assignment={0: (2, 0)})
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_validation_rejects_slot_collision(self):
        instance = MultiprocessorInstance.from_pairs([(0, 1), (0, 1)], num_processors=1)
        schedule = MultiprocessorSchedule(
            instance=instance, assignment={0: (1, 0), 1: (1, 0)}
        )
        with pytest.raises(InvalidScheduleError):
            schedule.validate()

    def test_as_table(self):
        rows = self.make().as_table()
        assert rows[0][3] == 0 and rows[-1][3] == 5
