"""Unit tests for the set-cover substrate."""

import pytest

from repro.core.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.setcover import SetCoverInstance, exact_set_cover, greedy_set_cover


class TestInstance:
    def test_basic_properties(self):
        instance = SetCoverInstance(universe=[0, 1, 2], sets=[[0, 1], [2], [1, 2]])
        assert instance.num_elements == 3
        assert instance.num_sets == 3
        assert instance.max_set_size == 2
        assert instance.is_coverable()

    def test_rejects_empty_set(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(universe=[0], sets=[[]])

    def test_rejects_foreign_elements(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(universe=[0], sets=[[0, 5]])

    def test_is_cover(self):
        instance = SetCoverInstance(universe=[0, 1, 2], sets=[[0, 1], [2]])
        assert instance.is_cover([0, 1])
        assert not instance.is_cover([0])

    def test_uncoverable_instance(self):
        instance = SetCoverInstance(universe=[0, 1], sets=[[0]])
        assert not instance.is_coverable()

    def test_coverage(self):
        instance = SetCoverInstance(universe=[0, 1, 2], sets=[[0, 1], [2]])
        assert instance.coverage([0]) == {0, 1}


class TestGreedy:
    def test_greedy_covers(self):
        instance = SetCoverInstance(
            universe=range(6), sets=[[0, 1, 2], [3, 4], [5], [0, 3, 5]]
        )
        chosen = greedy_set_cover(instance)
        assert instance.is_cover(chosen)

    def test_greedy_picks_largest_first(self):
        instance = SetCoverInstance(universe=range(4), sets=[[0], [0, 1, 2, 3]])
        assert greedy_set_cover(instance) == [1]

    def test_greedy_raises_on_uncoverable(self):
        instance = SetCoverInstance(universe=[0, 1], sets=[[0]])
        with pytest.raises(InfeasibleInstanceError):
            greedy_set_cover(instance)

    def test_greedy_classic_log_gap_instance(self):
        # The classical instance where greedy uses 3 sets but the optimum is 2.
        universe = list(range(6))
        sets = [[0, 1, 2, 3], [4, 5], [0, 2, 4], [1, 3, 5]]
        instance = SetCoverInstance(universe=universe, sets=sets)
        greedy = greedy_set_cover(instance)
        exact = exact_set_cover(instance)
        assert instance.is_cover(greedy)
        assert len(exact) == 2
        assert len(greedy) >= len(exact)


class TestExact:
    def test_exact_is_minimum(self):
        instance = SetCoverInstance(
            universe=range(5), sets=[[0, 1], [1, 2], [2, 3], [3, 4], [0, 2, 4]]
        )
        exact = exact_set_cover(instance)
        assert instance.is_cover(exact)
        # No two sets cover all five elements (the only 3-set leaves {1, 3}
        # uncovered and no single set contains both), so the optimum is 3.
        assert len(exact) == 3

    def test_exact_raises_on_uncoverable(self):
        instance = SetCoverInstance(universe=[0, 1], sets=[[1]])
        with pytest.raises(InfeasibleInstanceError):
            exact_set_cover(instance)

    def test_exact_never_worse_than_greedy(self):
        instance = SetCoverInstance(
            universe=range(7),
            sets=[[0, 1, 2], [2, 3, 4], [4, 5, 6], [0, 3, 6], [1, 5]],
        )
        assert len(exact_set_cover(instance)) <= len(greedy_set_cover(instance))

    def test_single_set_cover(self):
        instance = SetCoverInstance(universe=range(3), sets=[[0, 1, 2], [0]])
        assert exact_set_cover(instance) == [0]
