"""Unit tests for the single-processor (Baptiste) wrappers."""

import pytest

from repro import (
    MultiprocessorInstance,
    OneIntervalInstance,
    minimize_gaps_single_processor,
    minimize_power_single_processor,
)
from repro.core.brute_force import brute_force_gap_single
from repro.core.exceptions import InfeasibleInstanceError


class TestGapWrapper:
    def test_tight_chain_has_no_gap(self, tight_chain_instance):
        result = minimize_gaps_single_processor(tight_chain_instance)
        assert result.feasible and result.num_gaps == 0
        result.schedule.validate()

    def test_forced_gap(self, forced_gap_instance):
        result = minimize_gaps_single_processor(forced_gap_instance)
        assert result.num_gaps == 1

    def test_flexible_instance_zero_gaps(self, flexible_instance):
        result = minimize_gaps_single_processor(flexible_instance)
        assert result.num_gaps == 0
        assert result.schedule.num_spans() == 1

    def test_infeasible(self):
        result = minimize_gaps_single_processor(
            OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        )
        assert not result.feasible and result.schedule is None

    def test_matches_brute_force_on_example(self):
        instance = OneIntervalInstance.from_pairs([(0, 3), (2, 6), (5, 9), (9, 12), (11, 14)])
        result = minimize_gaps_single_processor(instance)
        brute, _ = brute_force_gap_single(instance)
        assert result.num_gaps == brute

    def test_accepts_single_processor_multiproc_instance(self):
        instance = MultiprocessorInstance.from_pairs([(0, 1), (3, 4)], num_processors=1)
        assert minimize_gaps_single_processor(instance).num_gaps == 1

    def test_rejects_true_multiprocessor_instance(self):
        instance = MultiprocessorInstance.from_pairs([(0, 1)], num_processors=2)
        with pytest.raises(InfeasibleInstanceError):
            minimize_gaps_single_processor(instance)


class TestPowerWrapper:
    def test_power_of_single_block(self, tight_chain_instance):
        result = minimize_power_single_processor(tight_chain_instance, alpha=2.0)
        assert result.power == pytest.approx(3 + 2)

    def test_bridging_versus_sleeping(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (3, 3)])
        bridged = minimize_power_single_processor(instance, alpha=10.0)
        slept = minimize_power_single_processor(instance, alpha=0.5)
        assert bridged.power == pytest.approx(2 + 10 + 2)
        assert slept.power == pytest.approx(2 + 0.5 + 0.5)

    def test_power_schedule_is_single_processor_object(self, flexible_instance):
        result = minimize_power_single_processor(flexible_instance, alpha=1.0)
        result.schedule.validate()
        assert result.schedule.power_cost(1.0) == pytest.approx(result.power)

    def test_infeasible(self):
        result = minimize_power_single_processor(
            OneIntervalInstance.from_pairs([(0, 0), (0, 0)]), alpha=1.0
        )
        assert not result.feasible

    def test_gap_and_power_agree_when_alpha_below_one(self):
        # With alpha < 1 sleeping is always at least as good as bridging, so
        # the power optimum is n + alpha * (gaps + 1); minimizing power also
        # minimizes gaps for this instance.
        instance = OneIntervalInstance.from_pairs([(0, 4), (2, 7), (9, 10), (10, 12)])
        gaps = minimize_gaps_single_processor(instance).num_gaps
        power = minimize_power_single_processor(instance, alpha=0.5).power
        assert power == pytest.approx(4 + 0.5 * (gaps + 1))
