"""Unit tests for the brute-force oracles themselves."""

import pytest

from repro import MultiIntervalInstance, MultiprocessorInstance, OneIntervalInstance
from repro.core.brute_force import (
    brute_force_gap_multi_interval,
    brute_force_gap_multiproc,
    brute_force_gap_single,
    brute_force_power_multi_interval,
    brute_force_power_multiproc,
    brute_force_throughput,
    enumerate_time_assignments,
)


class TestEnumeration:
    def test_counts_all_assignments(self):
        allowed = [[0, 1], [0, 1]]
        assignments = list(enumerate_time_assignments(allowed, capacity=1))
        assert len(assignments) == 2  # the two permutations

    def test_capacity_two_allows_sharing(self):
        allowed = [[0], [0]]
        assert list(enumerate_time_assignments(allowed, capacity=1)) == []
        assert len(list(enumerate_time_assignments(allowed, capacity=2))) == 1

    def test_empty_job_list_yields_empty_assignment(self):
        assert list(enumerate_time_assignments([], capacity=1)) == [{}]


class TestSingleProcessorOracles:
    def test_gap_single_optimal(self):
        instance = OneIntervalInstance.from_pairs([(0, 1), (3, 4)])
        gaps, schedule = brute_force_gap_single(instance)
        assert gaps == 1
        schedule.validate()

    def test_gap_single_infeasible(self):
        instance = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        gaps, schedule = brute_force_gap_single(instance)
        assert gaps is None and schedule is None

    def test_power_multi_interval(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [4]])
        power, schedule = brute_force_power_multi_interval(instance, alpha=1.0)
        assert power == pytest.approx(2 + 1 + 1)
        schedule.validate()

    def test_gap_multi_interval_prefers_contiguity(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 5], [1, 9]])
        gaps, schedule = brute_force_gap_multi_interval(instance)
        assert gaps == 0
        assert sorted(schedule.assignment.values()) == [0, 1]


class TestMultiprocessorOracles:
    def test_gap_multiproc(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 0), (0, 0), (2, 2)], num_processors=2
        )
        gaps, schedule = brute_force_gap_multiproc(instance)
        assert gaps == 1
        schedule.validate()

    def test_gap_multiproc_exhaustive_matches_staircase(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 1), (0, 1), (1, 2)], num_processors=2
        )
        staircase, _ = brute_force_gap_multiproc(instance)
        exhaustive, _ = brute_force_gap_multiproc(instance, exhaustive_processors=True)
        assert staircase == exhaustive

    def test_power_multiproc_empty(self):
        instance = MultiprocessorInstance(jobs=[], num_processors=2)
        power, schedule = brute_force_power_multiproc(instance, alpha=1.0)
        assert power == 0.0 and schedule.num_scheduled == 0

    def test_gap_multiproc_infeasible(self):
        instance = MultiprocessorInstance.from_pairs(
            [(0, 0), (0, 0), (0, 0)], num_processors=2
        )
        gaps, schedule = brute_force_gap_multiproc(instance)
        assert gaps is None and schedule is None


class TestThroughputOracle:
    def test_all_jobs_fit_without_gap_budget_pressure(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [2, 3]])
        count, schedule = brute_force_throughput(instance, max_gaps=2)
        assert count == 3
        schedule.validate(require_complete=False)

    def test_budget_zero_forces_one_block(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [1], [5]])
        count, _ = brute_force_throughput(instance, max_gaps=0)
        assert count == 2

    def test_budget_allows_second_block(self):
        instance = MultiIntervalInstance.from_time_lists([[0], [1], [5]])
        count, _ = brute_force_throughput(instance, max_gaps=1)
        assert count == 3
