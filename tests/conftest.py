"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro import Job, MultiIntervalInstance, MultiprocessorInstance, OneIntervalInstance


def random_window_pairs(
    rng: random.Random, num_jobs: int, horizon: int, max_window: int
) -> List[Tuple[int, int]]:
    """Random (release, deadline) pairs inside [0, horizon)."""
    pairs = []
    for _ in range(num_jobs):
        release = rng.randrange(horizon)
        deadline = min(horizon - 1, release + rng.randint(0, max_window - 1))
        pairs.append((release, deadline))
    return pairs


@pytest.fixture
def tight_chain_instance() -> OneIntervalInstance:
    """Three jobs forced into three consecutive slots: zero gaps, unique schedule."""
    return OneIntervalInstance.from_pairs([(0, 0), (1, 1), (2, 2)])


@pytest.fixture
def forced_gap_instance() -> OneIntervalInstance:
    """Two jobs pinned with an idle slot between them: exactly one gap."""
    return OneIntervalInstance.from_pairs([(0, 0), (2, 2)])


@pytest.fixture
def flexible_instance() -> OneIntervalInstance:
    """Four jobs with generous windows: an optimal schedule has zero gaps."""
    return OneIntervalInstance.from_pairs([(0, 6), (0, 6), (2, 8), (3, 9)])


@pytest.fixture
def two_processor_instance() -> MultiprocessorInstance:
    """Five jobs on two processors with overlapping windows."""
    return MultiprocessorInstance.from_pairs(
        [(0, 2), (0, 2), (1, 3), (4, 6), (4, 6)], num_processors=2
    )


@pytest.fixture
def small_multi_interval_instance() -> MultiIntervalInstance:
    """Four multi-interval jobs with two short intervals each."""
    return MultiIntervalInstance.from_time_lists(
        [[0, 1, 6, 7], [1, 2, 7, 8], [4, 5, 10, 11], [0, 5, 9]]
    )
