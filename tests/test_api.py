"""Unit tests for the repro.api façade: problem spec, registry, dispatch."""

import pytest

from repro.api import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    SolverError,
    capable_solvers,
    get_solver,
    list_solvers,
    register_solver,
    select_solver,
    solve,
)
from repro.core.brute_force import brute_force_gap_multiproc
from repro.core.multiproc_gap_dp import solve_multiprocessor_gap
from repro.core.multiproc_power_dp import solve_multiprocessor_power


@pytest.fixture
def one_interval():
    return OneIntervalInstance.from_pairs([(0, 3), (1, 5), (10, 13)])


@pytest.fixture
def multiproc():
    return MultiprocessorInstance.from_pairs(
        [(0, 1), (0, 1), (1, 2), (5, 6)], num_processors=2
    )


@pytest.fixture
def multi_interval():
    return MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6], [6, 7]])


class TestProblemValidation:
    def test_rejects_unknown_objective(self, one_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="makespan", instance=one_interval)

    def test_rejects_non_instance(self):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="gaps", instance=[(0, 1)])

    def test_power_requires_alpha(self, one_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="power", instance=one_interval)

    def test_power_rejects_negative_alpha(self, one_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="power", instance=one_interval, alpha=-1.0)

    def test_gaps_rejects_alpha(self, one_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="gaps", instance=one_interval, alpha=2.0)

    def test_throughput_requires_max_gaps(self, multi_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="throughput", instance=multi_interval)

    def test_throughput_rejects_negative_budget(self, multi_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="throughput", instance=multi_interval, max_gaps=-1)

    def test_power_rejects_max_gaps(self, one_interval):
        with pytest.raises(InvalidInstanceError):
            Problem(objective="power", instance=one_interval, alpha=1.0, max_gaps=2)

    def test_alpha_normalized_to_float(self, one_interval):
        problem = Problem(objective="power", instance=one_interval, alpha=2)
        assert isinstance(problem.alpha, float)


class TestRegistryDispatch:
    def test_auto_prefers_exact_dp_over_baselines(self, one_interval):
        problem = Problem(objective="gaps", instance=one_interval)
        candidates = capable_solvers(problem)
        assert [spec.name for spec in candidates][0] == "gap-dp"
        assert {"greedy-gap", "online-edf", "brute-force-gaps"} <= {
            spec.name for spec in candidates
        }
        assert select_solver(problem).name == "gap-dp"

    def test_auto_power_dispatch_by_instance_type(self, multiproc, multi_interval):
        assert (
            select_solver(Problem(objective="power", instance=multiproc, alpha=1.0)).name
            == "power-dp"
        )
        assert (
            select_solver(
                Problem(objective="power", instance=multi_interval, alpha=1.0)
            ).name
            == "power-approx"
        )

    def test_auto_throughput_prefers_greedy_over_brute_force(self, multi_interval):
        problem = Problem(objective="throughput", instance=multi_interval, max_gaps=1)
        assert select_solver(problem).name == "throughput-greedy"

    def test_auto_never_picks_exponential_baseline(self, multi_interval):
        # Multi-interval gap minimization is NP-hard; only the brute-force
        # oracle is capable, and auto must refuse it rather than silently
        # start an exponential enumeration.
        problem = Problem(objective="gaps", instance=multi_interval)
        with pytest.raises(SolverError, match="baseline"):
            select_solver(problem)
        assert solve(problem, solver="brute-force-gaps").status == "optimal"

    def test_explicit_baseline_by_name(self, one_interval):
        problem = Problem(objective="gaps", instance=one_interval)
        result = solve(problem, solver="greedy-gap")
        assert result.solver == "greedy-gap"
        assert result.status == "approximate"

    def test_unknown_solver_raises(self, one_interval):
        with pytest.raises(SolverError):
            solve(Problem(objective="gaps", instance=one_interval), solver="nope")

    def test_incapable_solver_raises(self, multi_interval):
        problem = Problem(objective="gaps", instance=multi_interval)
        with pytest.raises(SolverError):
            solve(problem, solver="greedy-gap")

    def test_wrong_objective_solver_raises(self, one_interval):
        problem = Problem(objective="gaps", instance=one_interval)
        with pytest.raises(SolverError):
            solve(problem, solver="power-dp")

    def test_get_solver_and_listing(self):
        spec = get_solver("gap-dp")
        assert spec.kind == "exact"
        names = [s.name for s in list_solvers(objective="power")]
        assert names == [
            "power-dp",
            "power-approx",
            "edf-power",
            "localsearch-power",
            "brute-force-power",
        ]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_solver(
                "gap-dp",
                objective="gaps",
                kind="exact",
                instance_types=(OneIntervalInstance,),
            )(lambda problem: None)


class TestSolveResults:
    def test_gap_result_matches_core_solver(self, multiproc):
        result = solve(Problem(objective="gaps", instance=multiproc))
        core = solve_multiprocessor_gap(multiproc)
        assert result.status == "optimal"
        assert result.value == core.num_gaps
        assert result.guarantee_factor == 1.0
        assert result.wall_time > 0.0
        schedule = result.require_schedule()
        schedule.validate()
        assert schedule.num_gaps() == result.value

    def test_power_result_matches_core_solver(self, multiproc):
        result = solve(Problem(objective="power", instance=multiproc, alpha=2.0))
        core = solve_multiprocessor_power(multiproc, alpha=2.0)
        assert result.value == pytest.approx(core.power)
        assert result.extra["alpha"] == 2.0

    def test_brute_force_agrees_with_dp(self, multiproc):
        problem = Problem(objective="gaps", instance=multiproc)
        dp = solve(problem)
        brute = solve(problem, solver="brute-force-gaps")
        core_brute, _ = brute_force_gap_multiproc(multiproc)
        assert dp.value == brute.value == core_brute

    def test_infeasible_envelope(self):
        clash = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])
        result = solve(Problem(objective="gaps", instance=clash))
        assert result.status == "infeasible"
        assert not result.feasible
        assert result.value is None
        assert result.schedule is None
        with pytest.raises(InfeasibleInstanceError):
            result.require_schedule()

    def test_throughput_extra_payload(self, multi_interval):
        result = solve(
            Problem(objective="throughput", instance=multi_interval, max_gaps=2)
        )
        assert result.value == sum(
            len(w["jobs"]) for w in result.extra["working_intervals"]
        )
        assert result.extra["max_gaps"] == 2

    def test_single_processor_gap_uses_plain_schedule(self, one_interval):
        from repro.api import Schedule

        result = solve(Problem(objective="gaps", instance=one_interval))
        assert isinstance(result.schedule, Schedule)


class TestInfeasibleUniformity:
    """Satellite: every solver reports infeasibility identically through the façade."""

    CLASH = OneIntervalInstance.from_pairs([(0, 0), (0, 0)])

    def test_every_capable_solver_returns_the_uniform_envelope(self):
        problem = Problem(objective="gaps", instance=self.CLASH)
        for spec in capable_solvers(problem):
            result = solve(problem, solver=spec.name)
            assert result.status == "infeasible", spec.name
            assert result.value is None and result.schedule is None, spec.name
            assert result.solver == spec.name

    def test_on_infeasible_raise(self):
        problem = Problem(objective="gaps", instance=self.CLASH)
        with pytest.raises(InfeasibleInstanceError):
            solve(problem, on_infeasible="raise")

    def test_on_infeasible_raise_is_uniform_across_solvers(self):
        problem = Problem(objective="gaps", instance=self.CLASH)
        for spec in capable_solvers(problem):
            with pytest.raises(InfeasibleInstanceError):
                solve(problem, solver=spec.name, on_infeasible="raise")

    def test_on_infeasible_rejects_unknown_mode(self):
        problem = Problem(objective="gaps", instance=self.CLASH)
        with pytest.raises(ValueError):
            solve(problem, on_infeasible="whatever")

    def test_raise_for_status_on_feasible_returns_self(self):
        instance = OneIntervalInstance.from_pairs([(0, 2)])
        result = solve(Problem(objective="gaps", instance=instance))
        assert result.raise_for_status() is result

    def test_adapter_raising_infeasible_is_normalized(self):
        from repro.api import SolveResult
        from repro.api.registry import _REGISTRY, register_solver

        name = "test-raising-solver"

        @register_solver(
            name,
            objective="gaps",
            kind="baseline",
            instance_types=(OneIntervalInstance,),
        )
        def _raising(problem):
            raise InfeasibleInstanceError("adapter-style raise")

        try:
            result = solve(
                Problem(objective="gaps", instance=self.CLASH), solver=name
            )
            assert result.status == "infeasible"
            assert result.value is None and result.schedule is None
            assert result.solver == name
        finally:
            _REGISTRY.pop(name, None)
