"""Tests for the Theorem 9/10 unit gadgets."""

import pytest

from repro import MultiIntervalInstance
from repro.core.brute_force import brute_force_gap_multi_interval
from repro.core.exceptions import InvalidInstanceError
from repro.reductions import (
    build_disjoint_unit_gadget,
    disjoint_unit_to_two_unit,
    two_unit_to_disjoint_unit,
)
from repro.setcover import SetCoverInstance, exact_set_cover


class TestTwoUnitToDisjoint:
    def test_rejects_jobs_with_three_times(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1, 2]])
        with pytest.raises(InvalidInstanceError):
            two_unit_to_disjoint_unit(instance)

    def test_components_become_disjoint_jobs(self):
        # Two components: {job0, job1} over times {0,1,2} and {job2} over {5,6}.
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [5, 6]])
        result = two_unit_to_disjoint_unit(instance)
        assert result.instance.is_disjoint_unit()
        assert result.instance.num_jobs == 2
        assert result.always_busy_times == ()

    def test_saturated_component_reported_as_always_busy(self):
        # Two jobs over the same two times: both times are forced busy.
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [0, 1]])
        result = two_unit_to_disjoint_unit(instance)
        assert result.always_busy_times == (0, 1)

    def test_infeasible_component_rejected(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [0, 1], [0, 1]])
        with pytest.raises(InvalidInstanceError):
            two_unit_to_disjoint_unit(instance)

    def test_busy_idle_complement_relation(self):
        # In the 2-unit instance, a component with m jobs and m+1 times leaves
        # exactly one idle time; in the disjoint-unit instance that time is the
        # one *busy* slot of the corresponding job.  Gap structures therefore
        # differ by at most one.
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2], [6, 7]])
        result = two_unit_to_disjoint_unit(instance)
        source_opt, _ = brute_force_gap_multi_interval(instance)
        derived_opt, _ = brute_force_gap_multi_interval(result.instance)
        assert abs(source_opt - derived_opt) <= 1


class TestDisjointToTwoUnit:
    def test_rejects_non_disjoint_source(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 1], [1, 2]])
        with pytest.raises(InvalidInstanceError):
            disjoint_unit_to_two_unit(instance)

    def test_chain_structure(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 4, 9], [12]])
        result = disjoint_unit_to_two_unit(instance)
        # Job 0 with 3 times -> 2 chain jobs; job 1 with 1 time -> 1 job.
        assert len(result.chain_of_job[0]) == 2
        assert len(result.chain_of_job[1]) == 1
        assert all(job.num_times <= 2 for job in result.instance.jobs)

    def test_optima_differ_by_at_most_one(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 3, 6], [10]])
        result = disjoint_unit_to_two_unit(instance)
        source_opt, _ = brute_force_gap_multi_interval(instance)
        derived_opt, _ = brute_force_gap_multi_interval(result.instance)
        assert abs(source_opt - derived_opt) <= 1


class TestBSetCoverGadget:
    @pytest.fixture
    def source(self) -> SetCoverInstance:
        return SetCoverInstance(universe=[0, 1, 2, 3], sets=[[0, 1], [2, 3], [1, 2]])

    def test_instance_is_disjoint_unit(self, source):
        gadget = build_disjoint_unit_gadget(source)
        assert gadget.instance.is_disjoint_unit()
        assert gadget.instance.is_unit_interval()

    def test_cover_to_schedule_spans_equal_cover_size(self, source):
        gadget = build_disjoint_unit_gadget(source)
        cover = exact_set_cover(source)
        schedule = gadget.cover_to_schedule(cover)
        assert schedule.num_spans() == len(cover)
        assert schedule.num_spans() == gadget.spans_of_cover_size(len(cover))

    def test_schedule_to_cover_roundtrip(self, source):
        gadget = build_disjoint_unit_gadget(source)
        cover = exact_set_cover(source)
        schedule = gadget.cover_to_schedule(cover)
        recovered = gadget.schedule_to_cover(schedule)
        assert source.is_cover(recovered)
        assert len(recovered) == len(cover)

    def test_optimal_spans_equal_optimal_cover(self, source):
        gadget = build_disjoint_unit_gadget(source)
        optimal_cover = len(exact_set_cover(source))
        optimal_gaps, schedule = brute_force_gap_multi_interval(gadget.instance)
        assert schedule is not None
        assert schedule.num_spans() == optimal_cover

    def test_large_sets_rejected(self):
        universe = list(range(13))
        with pytest.raises(InvalidInstanceError):
            build_disjoint_unit_gadget(
                SetCoverInstance(universe=universe, sets=[universe])
            )

    def test_invalid_cover_rejected(self, source):
        gadget = build_disjoint_unit_gadget(source)
        with pytest.raises(InvalidInstanceError):
            gadget.cover_to_schedule([0])
