"""Tests for repro.core.canonical and the canonical solve cache.

Covers the satellite requirements: metamorphic equivalence (the canonical
representative solves to the same value as the original, for gaps and
power including stretch-sensitive power cases), cache hit/miss behavior
under solve and solve_batch, and cache-size bounding.
"""

import random

import pytest

from repro.api import (
    MultiprocessorInstance,
    OneIntervalInstance,
    Problem,
    clear_solve_cache,
    configure_solve_cache,
    solve,
    solve_batch,
    solve_cache_bypass,
    solve_cache_stats,
)
from repro.core.canonical import (
    CanonicalSolveCache,
    canonical_assignment,
    canonical_form,
    canonical_instance,
    restore_assignment,
)
from repro.core.exceptions import InvalidInstanceError
from repro.core.jobs import MultiIntervalInstance
from tests.conftest import random_window_pairs


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts and ends with an empty, default-sized cache."""
    configure_solve_cache(256)
    clear_solve_cache()
    yield
    configure_solve_cache(256)
    clear_solve_cache()


def _shift(pairs, delta):
    return [(r + delta, d + delta) for r, d in pairs]


PAIRS = [(0, 3), (1, 4), (2, 6), (5, 8), (5, 8)]


class TestCanonicalForm:
    def test_shifted_instances_share_the_key(self):
        a = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        b = MultiprocessorInstance.from_pairs(_shift(PAIRS, 11), num_processors=2)
        assert canonical_form(a).key == canonical_form(b).key
        assert canonical_form(a).digest == canonical_form(b).digest

    def test_permuted_instances_share_the_key(self):
        rng = random.Random(7)
        shuffled = list(PAIRS)
        rng.shuffle(shuffled)
        a = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        b = MultiprocessorInstance.from_pairs(shuffled, num_processors=2)
        assert canonical_form(a).key == canonical_form(b).key

    def test_processor_count_distinguishes_keys(self):
        a = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        b = MultiprocessorInstance.from_pairs(PAIRS, num_processors=3)
        assert canonical_form(a).key != canonical_form(b).key

    def test_one_interval_instance_is_p1(self):
        single = OneIntervalInstance.from_pairs([(0, 2), (4, 6)])
        multi = MultiprocessorInstance.from_pairs([(0, 2), (4, 6)], num_processors=1)
        assert canonical_form(single).key == canonical_form(multi).key

    def test_duplicate_jobs_compress_with_multiplicity(self):
        form = canonical_form(
            MultiprocessorInstance.from_pairs([(0, 1), (0, 1), (0, 1)], num_processors=2)
        )
        (_p, _stretches, windows) = form.key
        assert windows == (((0, 1), 3),)

    def test_stretch_lengths_distinguish_keys(self):
        # Same column count and job windows in column coordinates, but a
        # longer forbidden zone between the clusters.
        near = MultiprocessorInstance.from_pairs([(0, 1), (30, 31)], num_processors=1)
        far = MultiprocessorInstance.from_pairs([(0, 1), (40, 41)], num_processors=1)
        assert canonical_form(near).key != canonical_form(far).key

    def test_rejects_multi_interval_instances(self):
        instance = MultiIntervalInstance.from_time_lists([[0, 5]])
        with pytest.raises(InvalidInstanceError):
            canonical_form(instance)

    def test_assignment_round_trip(self):
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        form = canonical_form(instance)
        times = {0: 0, 1: 1, 2: 2, 3: 5, 4: 6}
        canon = canonical_assignment(form, times)
        assert restore_assignment(form, canon) == times


class TestMetamorphicEquivalence:
    """The canonical representative is value-equivalent to the original."""

    @pytest.mark.parametrize("seed", range(12))
    def test_gap_value_matches_canonical_representative(self, seed):
        rng = random.Random(900 + seed)
        n = rng.randint(1, 8)
        p = rng.randint(1, 3)
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 14), max_window=5)
        original = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        representative = canonical_instance(canonical_form(original))
        a = solve(Problem(objective="gaps", instance=original))
        clear_solve_cache()  # the representative must be solved cold
        b = solve(Problem(objective="gaps", instance=representative))
        assert a.feasible == b.feasible
        if a.feasible:
            assert a.value == b.value

    @pytest.mark.parametrize("seed", range(12))
    def test_power_value_matches_canonical_representative(self, seed):
        rng = random.Random(1700 + seed)
        n = rng.randint(1, 7)
        p = rng.randint(1, 3)
        alpha = rng.choice([0.0, 0.5, 2.0, 5.0])
        pairs = random_window_pairs(rng, n, horizon=rng.randint(n, 13), max_window=5)
        original = MultiprocessorInstance.from_pairs(pairs, num_processors=p)
        representative = canonical_instance(canonical_form(original))
        a = solve(Problem(objective="power", instance=original, alpha=alpha))
        clear_solve_cache()
        b = solve(Problem(objective="power", instance=representative, alpha=alpha))
        assert a.feasible == b.feasible
        if a.feasible:
            assert a.value == pytest.approx(b.value)

    def test_power_stretch_sensitive_case(self):
        # Two clusters separated by a long forbidden zone: the optimal power
        # depends on min(stretch, alpha), so a canonicalization that
        # collapsed stretches would get this wrong for small alpha.
        pairs = [(0, 1), (0, 1), (20, 21), (20, 21)]
        original = MultiprocessorInstance.from_pairs(_shift(pairs, 5), num_processors=2)
        representative = canonical_instance(canonical_form(original))
        for alpha in (0.5, 3.0, 50.0):
            a = solve(Problem(objective="power", instance=original, alpha=alpha))
            clear_solve_cache()
            b = solve(Problem(objective="power", instance=representative, alpha=alpha))
            assert a.value == pytest.approx(b.value)


class TestSolveCacheBehavior:
    def test_identical_instance_hits(self):
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        first = solve(Problem(objective="gaps", instance=instance))
        second = solve(Problem(objective="gaps", instance=instance))
        stats = solve_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        # Cache hits replay the original solve byte-for-byte (wall time is
        # excluded from equality), keeping batch runs deterministic.
        assert first == second

    def test_shifted_instance_hits_and_remaps(self):
        a = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        b = MultiprocessorInstance.from_pairs(_shift(PAIRS, 9), num_processors=2)
        ra = solve(Problem(objective="gaps", instance=a))
        rb = solve(Problem(objective="gaps", instance=b))
        assert solve_cache_stats()["hits"] == 1
        assert rb.value == ra.value
        rb.schedule.validate()
        assert rb.schedule.num_gaps() == rb.value

    def test_permuted_single_processor_instance_hits(self):
        a = OneIntervalInstance.from_pairs([(0, 2), (1, 4), (6, 9)])
        b = OneIntervalInstance.from_pairs([(6, 9), (0, 2), (1, 4)])
        ra = solve(Problem(objective="gaps", instance=a))
        rb = solve(Problem(objective="gaps", instance=b))
        assert solve_cache_stats()["hits"] == 1
        assert rb.value == ra.value
        rb.schedule.validate()

    def test_alpha_partitions_the_power_cache(self):
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        solve(Problem(objective="power", instance=instance, alpha=1.0))
        solve(Problem(objective="power", instance=instance, alpha=2.0))
        stats = solve_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_infeasible_results_are_cached(self):
        instance = MultiprocessorInstance.from_pairs([(3, 3)] * 4, num_processors=2)
        first = solve(Problem(objective="gaps", instance=instance))
        second = solve(Problem(objective="gaps", instance=instance))
        assert first.status == second.status == "infeasible"
        assert solve_cache_stats()["hits"] == 1

    def test_solve_batch_serial_warms_and_hits(self):
        base = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        problems = [
            Problem(objective="gaps", instance=base),
            Problem(
                objective="gaps",
                instance=MultiprocessorInstance.from_pairs(
                    _shift(PAIRS, 3), num_processors=2
                ),
            ),
            Problem(
                objective="gaps",
                instance=MultiprocessorInstance.from_pairs(
                    _shift(PAIRS, 8), num_processors=2
                ),
            ),
        ]
        # Pinned to the serial backend: these counters are per-process,
        # so a REPRO_BACKEND=process test run would otherwise warm the
        # pool workers' caches instead of this one.
        results = solve_batch(problems, backend="serial")
        stats = solve_cache_stats()
        # One DP solve, two canonical hits: near-zero marginal cost for the
        # isomorphic tail of the batch.
        assert stats["misses"] == 1 and stats["hits"] == 2
        assert len({r.value for r in results}) == 1
        for problem, result in zip(problems, results):
            result.schedule.validate()
            assert result.schedule.instance is problem.instance

    def test_solve_batch_dedupes_identical_problems(self):
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        problems = [Problem(objective="gaps", instance=instance)] * 4
        results = solve_batch(problems, backend="serial")
        assert results[0] == results[1] == results[2] == results[3]
        stats = solve_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        # Duplicate positions are independent copies: post-processing one
        # result in place must not leak into the others.
        results[1].extra["tag"] = "mutated"
        assert "tag" not in results[0].extra
        assert "tag" not in results[2].extra

    def test_dedupe_can_be_disabled(self):
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        problems = [Problem(objective="gaps", instance=instance)] * 3
        results = solve_batch(problems, dedupe=False, backend="serial")
        assert results[0] == results[1] == results[2]
        stats = solve_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 2

    def test_bypass_context_skips_lookup_and_store(self):
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        with solve_cache_bypass():
            solve(Problem(objective="gaps", instance=instance))
        stats = solve_cache_stats()
        assert stats["size"] == 0 and stats["maxsize"] == 256
        assert stats["hits"] == 0 and stats["misses"] == 0
        # The DP itself still ran (bypass skips the cache, not the solve).
        assert stats["fresh_solves"] == 1
        # Outside the context the cache resumes normal operation.
        solve(Problem(objective="gaps", instance=instance))
        assert solve_cache_stats()["misses"] == 1

    def test_metamorphic_relations_bypass_the_cache(self):
        from repro.verify.metamorphic import run_metamorphic

        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        problem = Problem(objective="gaps", instance=instance)
        issues = run_metamorphic(problem)
        assert issues == []
        # The base problem solve may populate the cache, but none of the
        # transformed solves (shift, permutation, ...) read or write it.
        assert solve_cache_stats()["hits"] == 0

    def test_disabled_cache_never_hits(self):
        configure_solve_cache(0)
        instance = MultiprocessorInstance.from_pairs(PAIRS, num_processors=2)
        solve(Problem(objective="gaps", instance=instance))
        solve(Problem(objective="gaps", instance=instance))
        stats = solve_cache_stats()
        assert stats["hits"] == 0 and stats["size"] == 0

    def test_disabled_lookups_count_as_disabled_gets_not_misses(self):
        # Regression: a disabled cache has no hit rate, so its gets must
        # not inflate ``misses`` (which would read as a fake 0% hit rate
        # on every stats surface).
        cache = CanonicalSolveCache(maxsize=0)
        assert cache.get("key") is None
        assert cache.get("key") is None
        stats = cache.stats()
        assert stats["disabled_gets"] == 2
        assert stats["misses"] == 0 and stats["hits"] == 0
        cache.configure(4)
        assert cache.get("key") is None  # enabled again: a real miss
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["disabled_gets"] == 2
        cache.clear()
        assert cache.stats()["disabled_gets"] == 0


class TestCacheBounding:
    def test_lru_eviction_bounds_the_size(self):
        cache = CanonicalSolveCache(maxsize=3)
        for i in range(10):
            cache.put(("k", i), i)
        assert len(cache) == 3
        assert cache.get(("k", 9)) == 9
        assert cache.get(("k", 0)) is None

    def test_recently_used_entries_survive(self):
        cache = CanonicalSolveCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_configure_shrinks_in_place(self):
        clear_solve_cache()
        for delta in range(6):
            instance = MultiprocessorInstance.from_pairs(
                [(delta, delta + 2), (delta + 40, delta + 41 + delta)],
                num_processors=1,
            )
            solve(Problem(objective="gaps", instance=instance))
        assert solve_cache_stats()["size"] > 2
        configure_solve_cache(2)
        assert solve_cache_stats()["size"] <= 2

    def test_solve_path_respects_bound(self):
        configure_solve_cache(2)
        clear_solve_cache()
        for delta in range(5):
            instance = MultiprocessorInstance.from_pairs(
                [(0, 2 + delta), (delta + 10, delta + 14)], num_processors=1
            )
            solve(Problem(objective="gaps", instance=instance))
        assert solve_cache_stats()["size"] <= 2
