"""Unit tests for admission control (repro.service.admission)."""

import pytest

from repro.service import AdmissionController, AdmissionDecision
from repro.service.admission import REASON_QUOTA, REASON_RATE


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestRateLimit:
    def test_burst_then_denial(self, clock):
        ctl = AdmissionController(rate=10.0, burst=3, max_queued=0, clock=clock)
        for _ in range(3):
            assert ctl.admit("alice", outstanding=0).allowed
        denied = ctl.admit("alice", outstanding=0)
        assert not denied.allowed
        assert denied.reason == REASON_RATE
        assert denied.retry_after == pytest.approx(0.1)

    def test_refill_restores_tokens(self, clock):
        ctl = AdmissionController(rate=10.0, burst=1, max_queued=0, clock=clock)
        assert ctl.admit("alice", outstanding=0).allowed
        assert not ctl.admit("alice", outstanding=0).allowed
        clock.advance(0.2)  # two tokens' worth, capped at burst=1
        assert ctl.admit("alice", outstanding=0).allowed
        assert not ctl.admit("alice", outstanding=0).allowed

    def test_refill_caps_at_burst(self, clock):
        ctl = AdmissionController(rate=10.0, burst=2, max_queued=0, clock=clock)
        ctl.admit("alice", outstanding=0)
        clock.advance(1000.0)
        assert ctl.admit("alice", outstanding=0).allowed
        assert ctl.admit("alice", outstanding=0).allowed
        assert not ctl.admit("alice", outstanding=0).allowed

    def test_clients_have_independent_buckets(self, clock):
        ctl = AdmissionController(rate=10.0, burst=1, max_queued=0, clock=clock)
        assert ctl.admit("alice", outstanding=0).allowed
        assert not ctl.admit("alice", outstanding=0).allowed
        assert ctl.admit("bob", outstanding=0).allowed

    def test_rate_zero_disables_limiting(self, clock):
        ctl = AdmissionController(rate=0.0, burst=1, max_queued=0, clock=clock)
        for _ in range(100):
            assert ctl.admit("alice", outstanding=0).allowed


class TestQuota:
    def test_quota_denial_has_no_retry_hint(self, clock):
        ctl = AdmissionController(rate=0.0, burst=1, max_queued=5, clock=clock)
        denied = ctl.admit("alice", outstanding=5)
        assert not denied.allowed
        assert denied.reason == REASON_QUOTA
        assert denied.retry_after is None

    def test_quota_checked_before_rate_bucket(self, clock):
        ctl = AdmissionController(rate=10.0, burst=1, max_queued=1, clock=clock)
        assert not ctl.admit("alice", outstanding=1).allowed
        # The quota denial must not have burned the rate token.
        assert ctl.admit("alice", outstanding=0).allowed

    def test_quota_zero_disables(self, clock):
        ctl = AdmissionController(rate=0.0, burst=1, max_queued=0, clock=clock)
        assert ctl.admit("alice", outstanding=10**6).allowed


class TestPayloadAndStats:
    def test_denial_payload_shape(self, clock):
        ctl = AdmissionController(rate=10.0, burst=1, max_queued=0, clock=clock)
        ctl.admit("alice", outstanding=0)
        payload = ctl.admit("alice", outstanding=0).to_payload()
        assert set(payload) == {"error", "retry_after", "detail"}
        assert payload["error"] == REASON_RATE
        assert payload["retry_after"] > 0
        assert "alice" in payload["detail"]

    def test_counters(self, clock):
        ctl = AdmissionController(rate=10.0, burst=1, max_queued=1, clock=clock)
        ctl.admit("alice", outstanding=0)   # admitted
        ctl.admit("alice", outstanding=0)   # rate-denied
        ctl.admit("alice", outstanding=1)   # quota-denied
        stats = ctl.stats()
        assert stats["admitted"] == 1
        assert stats["denied"] == {REASON_RATE: 1, REASON_QUOTA: 1}
        assert stats["rate"] == 10.0
        assert stats["tracked_clients"] == 1

    def test_allowed_decision_defaults(self):
        decision = AdmissionDecision(allowed=True)
        assert decision.reason is None
        assert decision.retry_after is None

    def test_rejects_nonpositive_burst(self):
        with pytest.raises(ValueError, match="burst"):
            AdmissionController(burst=0)


class TestBucketPruning:
    def test_rate_denied_fleet_does_not_grow_tracking_without_bound(self, clock):
        # Regression: pruning used to run only on the *admitted* path, so
        # a fleet of clients whose last interaction is a denial was never
        # reclaimed.  Timeline (rate 0.01/s, burst 1 -> prune horizon
        # 1/0.01 + 60 = 160 s):
        #
        #   t=100   1500 fleet clients each admit once then get rate-denied
        #   t=255   a fresh "active" client admits (fleet age 155 < 160,
        #           so this admitted-path prune correctly keeps everyone)
        #   t=300   "active" is rate-denied (only 0.45 tokens refilled);
        #           the fleet is now 200 s stale and must be pruned on
        #           this denial, leaving just the active client tracked
        ctl = AdmissionController(rate=0.01, burst=1, max_queued=0, clock=clock)
        for i in range(1500):
            assert ctl.admit(f"fleet{i}", outstanding=0).allowed
            denied = ctl.admit(f"fleet{i}", outstanding=0)
            assert not denied.allowed and denied.reason == REASON_RATE
        assert ctl.stats()["tracked_clients"] == 1500
        clock.advance(155.0)
        assert ctl.admit("active", outstanding=0).allowed
        assert ctl.stats()["tracked_clients"] == 1501
        clock.advance(45.0)
        denied = ctl.admit("active", outstanding=0)
        assert not denied.allowed and denied.reason == REASON_RATE
        assert ctl.stats()["tracked_clients"] == 1

    def test_small_tables_are_never_pruned(self, clock):
        # Below the 1024-bucket threshold pruning is a no-op, so hot-ish
        # clients are not churned in and out of the table.
        ctl = AdmissionController(rate=0.01, burst=1, max_queued=0, clock=clock)
        for i in range(10):
            ctl.admit(f"c{i}", outstanding=0)
            ctl.admit(f"c{i}", outstanding=0)  # denial records the bucket
        clock.advance(10_000.0)
        ctl.admit("late", outstanding=0)
        ctl.admit("late", outstanding=0)
        assert ctl.stats()["tracked_clients"] == 11
