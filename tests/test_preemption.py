"""Preemptive-runtime tests: the worker pool, hard kills, incumbents,
single-flight disk locking, and the differential racing acceptance case.

Everything here runs on the real process pool (fork + pipes), so each
test asserts a clean process tree on exit — a leaked worker in any of
these is a bug, not noise.
"""

import multiprocessing
import os
import random
import time

import pytest

from repro.api import Problem, run_portfolio, solve
from repro.api.solvers import clear_solve_cache, solve_cache_stats
from repro.core.jobs import OneIntervalInstance
from repro.runtime import (
    configure_disk_cache,
    get_worker_pool,
    shutdown_worker_pool,
    solve_stream,
    worker_pool_stats,
)
from repro.runtime.diskcache import DiskSolveCache, cache_key_digest
from repro.runtime.pool import publish_incumbent
from repro.verify import certify_result


@pytest.fixture(autouse=True)
def clean_pool_and_cache():
    clear_solve_cache()
    configure_disk_cache(None)
    yield
    clear_solve_cache()
    configure_disk_cache(None)
    shutdown_worker_pool()
    deadline = time.time() + 10.0
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


def _square(x):
    return x * x


def _slow_task(x):
    for i in range(200):
        publish_incumbent(lambda: {"step": i, "x": x})
        time.sleep(0.02)
    return x


def _worker_pid(_item):
    return os.getpid()


class TestWorkerPool:
    def test_basic_round_trip(self):
        pool = get_worker_pool()
        with pool.session(_square, workers=2, chunksize=1) as session:
            for tag, item in enumerate([2, 3, 4]):
                session.submit(tag, item)
            got = {}
            while session.in_flight:
                tag, out = session.pop()
                got[tag] = out
        assert got == {0: 4, 1: 9, 2: 16}

    def test_workers_are_warm_across_sessions(self):
        pool = get_worker_pool()
        with pool.session(_worker_pid, workers=1, chunksize=1) as session:
            session.submit(0, None)
            _tag, first_pid = session.pop()
        spawned_before = worker_pool_stats()["spawned"]
        with pool.session(_worker_pid, workers=1, chunksize=1) as session:
            session.submit(0, None)
            _tag, second_pid = session.pop()
        assert second_pid == first_pid  # the very same warm process
        assert worker_pool_stats()["spawned"] == spawned_before

    def test_kill_terminates_and_spares_siblings(self):
        pool = get_worker_pool()
        with pool.session(_slow_task, workers=2, chunksize=1) as session:
            session.submit(0, "victim")
            session.submit(1, "survivor")
            assert session.pop(timeout=0.05) is None  # both still running
            assert session.can_kill
            assert session.kill(0) is True
            assert session.kill(0) is False  # idempotent
            # the survivor's four-second solve is unaffected
            out = None
            while out is None:
                out = session.pop(timeout=1.0)
            assert out == (1, "survivor")
            assert session.in_flight == 0
        assert worker_pool_stats()["killed"] >= 1

    def test_killed_task_leaves_its_incumbent(self):
        pool = get_worker_pool()
        with pool.session(_slow_task, workers=1, chunksize=1) as session:
            session.submit(7, "inc")
            incumbent = None
            deadline = time.time() + 10.0
            while incumbent is None and time.time() < deadline:
                session.pop(timeout=0.05)
                incumbent = session.take_incumbent(7)
            assert incumbent is not None and incumbent["x"] == "inc"
            session.kill(7)

    def test_shutdown_leaves_no_processes(self):
        pool = get_worker_pool()
        with pool.session(_square, workers=2, chunksize=1) as session:
            session.submit(0, 1)
            session.pop()
        shutdown_worker_pool()
        deadline = time.time() + 10.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.02)
        assert multiprocessing.active_children() == []

    def test_publish_incumbent_is_noop_outside_workers(self):
        assert publish_incumbent(lambda: {"never": "sent"}) is False


class TestSingleFlight:
    def test_lock_try_wait_unlock(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), ("k",))
        assert cache.try_lock(key) is True
        assert cache.try_lock(key) is False  # held (by a live pid: ours)
        cache.unlock(key)
        assert cache.try_lock(key) is True
        cache.unlock(key)

    def test_stale_lock_of_dead_pid_is_broken(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), ("stale",))
        assert cache.try_lock(key) is True
        # forge a dead owner: fork a child that exits immediately
        child = multiprocessing.get_context("fork").Process(target=_square, args=(0,))
        child.start()
        dead_pid = child.pid
        child.join()
        path = cache._lock_path(cache_key_digest(key))
        with open(path, "w", encoding="ascii") as handle:
            handle.write(str(dead_pid))
        assert cache.try_lock(key) is True  # broken and re-acquired
        cache.unlock(key)

    def test_waiter_gets_the_leaders_entry(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), ("flight",))
        entry = (True, 3, ((0, 0),), {"name": "interval-dp"})
        assert cache.try_lock(key)
        cache.put(key, entry)
        cache.unlock(key)
        assert cache.wait_for_entry(key, timeout=1.0) == entry

    def test_wait_returns_none_when_flight_aborts(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), ("aborted",))
        # no lock, no entry: the "flight" is already gone
        assert cache.wait_for_entry(key, timeout=0.5) is None

    def test_clear_sweeps_lock_files(self, tmp_path):
        cache = DiskSolveCache(str(tmp_path))
        key = (("gaps",), ("sweep",))
        assert cache.try_lock(key)
        cache.clear()
        assert cache.try_lock(key) is True  # the old lock file is gone
        cache.unlock(key)

    def test_concurrent_processes_solve_once(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_same_key, args=(str(tmp_path), barrier, queue)
            )
            for _ in range(3)
        ]
        for proc in procs:
            proc.start()
        outs = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join()
        values = {value for value, _fresh in outs}
        assert len(values) == 1
        assert sum(fresh for _value, fresh in outs) == 1  # single flight


def _race_same_key(cache_dir, barrier, queue):
    configure_disk_cache(cache_dir)
    clear_solve_cache()
    inst = OneIntervalInstance.from_pairs([(3 * i, 3 * i + 7) for i in range(90)])
    barrier.wait()
    result = solve(Problem(objective="gaps", instance=inst), solver="gap-dp")
    queue.put((result.value, solve_cache_stats()["fresh_solves"]))


def _differential_instance():
    # The PR 9 admission-rule refusal case: n = 450 > DEFAULT_EXACT_JOB_LIMIT,
    # the heuristics plateau one gap above the optimum (local-search local
    # minimum), and the certified lower bound sits far below both — so no
    # heuristic can ever pin ratio == 1.0, only the exact DP can.  The
    # instance decomposes into many small windows, so the DP finishes in
    # well under a second inside its racing worker.
    rng = random.Random(0)
    pairs = []
    for cluster in range(150):
        base = 25 * cluster
        for _ in range(3):
            release = base + rng.randrange(20)
            deadline = release + 1 + rng.randrange(20)
            pairs.append((release, min(deadline, base + 40)))
    return OneIntervalInstance.from_pairs(pairs)


class TestPreemptiveRacing:
    def test_exact_dp_wins_a_race_it_was_previously_refused(self):
        # Differential acceptance: under PR 9's cooperative discipline the
        # exact DP is never dispatched on this instance (n > 400 ⇒
        # "admission") and the portfolio stays approximate; the preemptive
        # racer launches it at t=0 and returns a certified optimum within
        # the same budget.
        problem = Problem(objective="gaps", instance=_differential_instance())

        cooperative = run_portfolio(problem, budget=10.0, backend="serial")
        members = {
            m["name"]: m for m in cooperative.extra["portfolio"]["members"]
        }
        assert members["gap-dp"]["state"] == "cancelled"
        assert members["gap-dp"]["kill_reason"] == "admission"
        assert cooperative.status == "approximate"
        assert cooperative.extra["optimality_gap"]["ratio"] > 1.0

        clear_solve_cache()
        # Pin the process backend: under the REPRO_BACKEND=serial/thread CI
        # legs the unpinned default resolves to a kill-less session and the
        # race would (by design) fall back to the cooperative discipline.
        preemptive = run_portfolio(problem, budget=10.0, backend="process")
        assert preemptive.extra["portfolio"]["preemptive"] is True
        assert preemptive.status == "optimal"
        assert preemptive.extra["optimality_gap"]["ratio"] == pytest.approx(1.0)
        assert preemptive.value < cooperative.value
        assert certify_result(problem, preemptive).ok

    def test_race_leaves_no_orphan_processes(self):
        problem = Problem(objective="gaps", instance=_differential_instance())
        run_portfolio(problem, budget=10.0)
        shutdown_worker_pool()
        deadline = time.time() + 10.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.02)
        assert multiprocessing.active_children() == []

    def test_tiny_budget_still_returns_feasible_answer(self):
        inst = OneIntervalInstance.from_pairs(
            [(5 * i, 5 * i + 9) for i in range(2000)]
        )
        problem = Problem(objective="gaps", instance=inst)
        result = run_portfolio(problem, budget=1e-3, backend="process")
        assert result.feasible
        assert result.schedule is not None
        assert len(result.schedule.assignment) == 2000
        assert certify_result(problem, result).ok

    def test_killed_member_cache_state_is_consistent(self, tmp_path):
        # Hard-kill the DP mid-solve, then verify the two-tier cache still
        # behaves: no partial disk entry answers for the killed solve, the
        # single-flight lock is released (stale-broken), and a subsequent
        # serial solve of the same problem runs cleanly and caches.
        configure_disk_cache(str(tmp_path))
        inst = OneIntervalInstance.from_pairs(
            [(i, i + 4000) for i in range(4000)]  # one giant window: slow DP
        )
        problem = Problem(objective="gaps", instance=inst)
        result = run_portfolio(problem, budget=0.5, backend="process")
        assert result.feasible  # a heuristic answered; the DP was killed
        # no torn disk entries: every file parses or is ignored as a miss
        disk = DiskSolveCache(str(tmp_path))
        for path in disk._walk_entries():
            assert not os.path.basename(path).startswith(".tmp-")
        # the killed DP's single-flight lock must not wedge a retry
        clear_solve_cache()
        follow_up = solve(
            Problem(
                objective="gaps",
                instance=OneIntervalInstance.from_pairs([(0, 3), (2, 6)]),
            ),
            solver="gap-dp",
        )
        assert follow_up.status == "optimal"

    def test_stream_and_service_teardown_leave_no_orphans(self):
        problems = [
            Problem(
                objective="gaps",
                instance=OneIntervalInstance.from_pairs(
                    [(3 * i + j, 3 * i + j + 5) for i in range(20)]
                ),
            )
            for j in range(6)
        ]
        results = list(solve_stream(problems, backend="process", workers=2))
        assert all(res.feasible for res in results)
        shutdown_worker_pool()
        deadline = time.time() + 10.0
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.02)
        assert multiprocessing.active_children() == []
