"""Synthetic workload and instance generators.

The paper has no datasets; every experiment in this reproduction runs on
synthetic instances produced here.  Three families are provided:

* :mod:`repro.generators.random_jobs` — uniformly random one-interval,
  multiprocessor and multi-interval instances parameterised by horizon,
  window length and interval count (used for solver validation and runtime
  scaling).
* :mod:`repro.generators.workloads` — structured workloads that mirror the
  motivating applications of the paper's introduction: bursty server
  request traces, periodic sensor duty cycles, and batch queues with slack.
* :mod:`repro.generators.adversarial` — the online lower-bound family and
  other worst-case constructions (re-exported from :mod:`repro.core.online`).
* :mod:`repro.generators.fuzzers` — structured fuzzing families (tight
  windows, clustered releases, Hall-violating near-infeasible instances)
  used by :mod:`repro.verify`.
"""

from .fuzzers import (
    clustered_release_instance,
    hall_violating_instance,
    splittable_instance,
    tight_window_instance,
)
from .random_jobs import (
    random_multi_interval_instance,
    random_multiprocessor_instance,
    random_one_interval_instance,
    random_set_cover_instance,
)
from .workloads import (
    batch_queue_instance,
    bursty_server_instance,
    periodic_sensor_instance,
)

__all__ = [
    "random_one_interval_instance",
    "random_multiprocessor_instance",
    "random_multi_interval_instance",
    "random_set_cover_instance",
    "bursty_server_instance",
    "periodic_sensor_instance",
    "batch_queue_instance",
    "tight_window_instance",
    "clustered_release_instance",
    "hall_violating_instance",
    "splittable_instance",
]
