"""Structured workloads mirroring the paper's motivating applications.

The introduction of the paper motivates gap/power scheduling with mobile and
embedded devices (cell phones, PDAs, sensors) and with multicore systems.
These generators produce instance families with the corresponding temporal
structure; they are used by the example programs and by the experiment
harness for the "realistic scenario" rows of the tables.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import InvalidInstanceError
from ..core.jobs import (
    Job,
    MultiIntervalInstance,
    MultiIntervalJob,
    MultiprocessorInstance,
)

__all__ = [
    "bursty_server_instance",
    "periodic_sensor_instance",
    "batch_queue_instance",
]


def bursty_server_instance(
    num_bursts: int,
    jobs_per_burst: int,
    burst_spacing: int,
    slack: int,
    num_processors: int,
    seed: Optional[int] = None,
) -> MultiprocessorInstance:
    """Bursty request trace for a multicore server (experiment E1/E2 workload).

    ``num_bursts`` bursts arrive ``burst_spacing`` time units apart; each
    burst releases ``jobs_per_burst`` unit requests that must complete within
    ``slack`` time units of their arrival.  With enough processors each burst
    can be served immediately and the machine can sleep in between; with few
    processors the scheduler must decide whether to stretch bursts towards
    each other to avoid wake-ups.
    """
    if num_bursts < 1 or jobs_per_burst < 1 or burst_spacing < 1 or slack < 0:
        raise InvalidInstanceError("invalid bursty workload parameters")
    rng = random.Random(seed)
    jobs: List[Job] = []
    for burst in range(num_bursts):
        base = burst * burst_spacing
        for i in range(jobs_per_burst):
            jitter = rng.randint(0, max(0, slack // 2)) if seed is not None else 0
            release = base + jitter
            deadline = base + slack + jitter
            jobs.append(Job(release=release, deadline=deadline, name=f"b{burst}r{i}"))
    return MultiprocessorInstance(jobs=jobs, num_processors=num_processors)


def periodic_sensor_instance(
    num_sensors: int,
    readings_per_sensor: int,
    period: int,
    window: int,
    seed: Optional[int] = None,
) -> MultiIntervalInstance:
    """Duty-cycled sensor workload (experiment E3 workload).

    Each sensor must transmit ``readings_per_sensor`` readings; reading ``r``
    of a sensor may be transmitted during a short window in period ``r`` or
    in the following period (radio contention is modelled by the single
    shared channel).  This yields genuinely multi-interval jobs: two allowed
    intervals per job, one per period.
    """
    if num_sensors < 1 or readings_per_sensor < 1 or period < 2 or window < 1:
        raise InvalidInstanceError("invalid sensor workload parameters")
    rng = random.Random(seed)
    jobs: List[MultiIntervalJob] = []
    for sensor in range(num_sensors):
        offset = rng.randrange(max(1, period - window)) if seed is not None else sensor % max(1, period - window)
        for reading in range(readings_per_sensor):
            first = reading * period + offset
            second = (reading + 1) * period + offset
            times = list(range(first, first + window)) + list(range(second, second + window))
            jobs.append(
                MultiIntervalJob(times=times, name=f"s{sensor}r{reading}")
            )
    return MultiIntervalInstance(jobs=jobs)


def batch_queue_instance(
    num_jobs: int,
    arrival_rate: float,
    slack: int,
    horizon: int,
    seed: Optional[int] = None,
) -> "MultiprocessorInstance":
    """Poisson-ish batch queue with per-job slack (single processor by default).

    Inter-arrival times are geometric with mean ``1 / arrival_rate``; each
    job must finish within ``slack`` of its arrival.  Returns a
    single-processor :class:`MultiprocessorInstance` so it can be fed
    directly to the exact solvers; callers can re-wrap with more processors.
    """
    if num_jobs < 1 or not (0 < arrival_rate <= 1) or slack < 0 or horizon < 1:
        raise InvalidInstanceError("invalid batch queue parameters")
    rng = random.Random(seed)
    jobs: List[Job] = []
    t = 0
    for i in range(num_jobs):
        gap = 0
        while rng.random() > arrival_rate:
            gap += 1
        t = min(horizon - 1, t + gap)
        release = t
        deadline = min(horizon - 1 + slack, release + slack)
        jobs.append(Job(release=release, deadline=deadline, name=f"q{i}"))
        t += 1
    return MultiprocessorInstance(jobs=jobs, num_processors=1)
