"""Uniformly random instance generators.

All generators take an explicit :class:`random.Random` seed argument so that
experiments are reproducible run-to-run; none of them touch the global RNG.
When ``ensure_feasible`` is requested the generator rejects and resamples
until the instance admits a feasible schedule (checked by matching), which
keeps the distribution simple and the code honest about what it produces.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import InvalidInstanceError
from ..core.feasibility import is_feasible, is_feasible_multiproc
from ..core.jobs import (
    Job,
    MultiIntervalInstance,
    MultiIntervalJob,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from ..setcover import SetCoverInstance

__all__ = [
    "random_one_interval_instance",
    "random_multiprocessor_instance",
    "random_multi_interval_instance",
    "random_set_cover_instance",
]

_MAX_RESAMPLES = 200


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def random_one_interval_instance(
    num_jobs: int,
    horizon: int,
    max_window: Optional[int] = None,
    seed: Optional[int] = None,
    ensure_feasible: bool = True,
) -> OneIntervalInstance:
    """Random one-interval instance with ``num_jobs`` jobs on ``[0, horizon)``.

    Each job's release is uniform in the horizon and its window length is
    uniform in ``[1, max_window]`` (default: ``horizon``), clipped to the
    horizon.
    """
    if num_jobs < 0 or horizon < 1:
        raise InvalidInstanceError("num_jobs must be >= 0 and horizon >= 1")
    if max_window is None:
        max_window = horizon
    rng = _rng(seed)
    for _attempt in range(_MAX_RESAMPLES):
        jobs: List[Job] = []
        for i in range(num_jobs):
            release = rng.randrange(horizon)
            length = rng.randint(1, max(1, max_window))
            deadline = min(horizon - 1, release + length - 1)
            jobs.append(Job(release=release, deadline=deadline, name=f"j{i}"))
        instance = OneIntervalInstance(jobs)
        if not ensure_feasible or is_feasible(instance):
            return instance
    raise InvalidInstanceError(
        "could not generate a feasible instance; relax the parameters "
        f"(num_jobs={num_jobs}, horizon={horizon}, max_window={max_window})"
    )


def random_multiprocessor_instance(
    num_jobs: int,
    num_processors: int,
    horizon: int,
    max_window: Optional[int] = None,
    seed: Optional[int] = None,
    ensure_feasible: bool = True,
) -> MultiprocessorInstance:
    """Random multiprocessor instance (Theorem 1/2 input)."""
    if num_processors < 1:
        raise InvalidInstanceError("num_processors must be >= 1")
    if max_window is None:
        max_window = horizon
    rng = _rng(seed)
    for _attempt in range(_MAX_RESAMPLES):
        jobs: List[Job] = []
        for i in range(num_jobs):
            release = rng.randrange(horizon)
            length = rng.randint(1, max(1, max_window))
            deadline = min(horizon - 1, release + length - 1)
            jobs.append(Job(release=release, deadline=deadline, name=f"j{i}"))
        instance = MultiprocessorInstance(jobs=jobs, num_processors=num_processors)
        if not ensure_feasible or is_feasible_multiproc(instance):
            return instance
    raise InvalidInstanceError(
        "could not generate a feasible multiprocessor instance; relax the parameters"
    )


def random_multi_interval_instance(
    num_jobs: int,
    horizon: int,
    intervals_per_job: int = 2,
    interval_length: int = 2,
    seed: Optional[int] = None,
    ensure_feasible: bool = True,
) -> MultiIntervalInstance:
    """Random multi-interval instance (Sections 3-6 input).

    Each job receives ``intervals_per_job`` intervals of ``interval_length``
    consecutive slots at uniformly random positions (intervals of one job may
    merge if they happen to overlap).
    """
    if num_jobs < 0 or horizon < 1 or intervals_per_job < 1 or interval_length < 1:
        raise InvalidInstanceError("invalid multi-interval generator parameters")
    rng = _rng(seed)
    for _attempt in range(_MAX_RESAMPLES):
        jobs: List[MultiIntervalJob] = []
        for i in range(num_jobs):
            times: List[int] = []
            for _ in range(intervals_per_job):
                start = rng.randrange(max(1, horizon - interval_length + 1))
                times.extend(range(start, min(horizon, start + interval_length)))
            jobs.append(MultiIntervalJob(times=times, name=f"j{i}"))
        instance = MultiIntervalInstance(jobs=jobs)
        if not ensure_feasible or is_feasible(instance):
            return instance
    raise InvalidInstanceError(
        "could not generate a feasible multi-interval instance; relax the parameters"
    )


def random_set_cover_instance(
    num_elements: int,
    num_sets: int,
    max_set_size: int,
    seed: Optional[int] = None,
) -> SetCoverInstance:
    """Random coverable B-set-cover instance with B = ``max_set_size``.

    Every element is first placed in at least one set (so the instance is
    always coverable); remaining slots are filled uniformly.
    """
    if num_elements < 1 or num_sets < 1 or max_set_size < 1:
        raise InvalidInstanceError("invalid set cover generator parameters")
    rng = _rng(seed)
    universe = list(range(num_elements))
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    # Guarantee coverage by dealing every element to a random set.
    for element in universe:
        sets[rng.randrange(num_sets)].append(element)
    # Top up sets with random extra elements.
    for s in sets:
        target = rng.randint(1, max_set_size)
        while len(s) < target:
            candidate = rng.randrange(num_elements)
            if candidate not in s:
                s.append(candidate)
    non_empty = [s[:max_set_size] for s in sets if s]
    return SetCoverInstance(universe=universe, sets=non_empty)
