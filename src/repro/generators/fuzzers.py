"""Structured fuzzing families for the verification harness.

The uniform generators in :mod:`repro.generators.random_jobs` explore the
bulk of the instance space but rarely hit the boundary cases where solver
bugs live.  The families here are deliberately skewed toward those
boundaries:

* :func:`tight_window_instance` — windows of length one or two at near-full
  load, so almost every slot is forced and the bipartite matching is close
  to a perfect matching.
* :func:`clustered_release_instance` — bursts of jobs released at a few
  cluster points with varying slack, the regime where gap placement
  decisions actually differ between solvers.
* :func:`hall_violating_instance` — instances that are infeasible *by
  construction*: some window ``[x, y]`` holds one more job than it has
  slots, a violated Hall condition (see :mod:`repro.matching.hall`).  With
  ``slack=0`` the overloaded window is made exactly tight instead, giving a
  knife-edge feasible instance.

Like every generator in the package, these take an explicit seed and never
touch the global RNG.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from ..core.exceptions import InvalidInstanceError
from ..core.jobs import Job, MultiprocessorInstance, OneIntervalInstance

__all__ = [
    "tight_window_instance",
    "clustered_release_instance",
    "hall_violating_instance",
    "splittable_instance",
]

InstanceOut = Union[OneIntervalInstance, MultiprocessorInstance]


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _wrap(jobs: List[Job], num_processors: Optional[int]) -> InstanceOut:
    if num_processors is None:
        return OneIntervalInstance(jobs)
    return MultiprocessorInstance(jobs=jobs, num_processors=num_processors)


def tight_window_instance(
    num_jobs: int,
    horizon: int,
    seed: Optional[int] = None,
    num_processors: Optional[int] = None,
) -> InstanceOut:
    """Jobs with windows of length 1-2 packed into a short horizon.

    Roughly ``num_jobs / (horizon * p)`` of the capacity is demanded, so with
    ``num_jobs`` close to ``horizon * p`` nearly every slot is forced.  The
    instance may or may not be feasible; the verification harness treats
    both outcomes as signal (solvers must *agree*).
    """
    if num_jobs < 0 or horizon < 1:
        raise InvalidInstanceError("num_jobs must be >= 0 and horizon >= 1")
    rng = _rng(seed)
    jobs: List[Job] = []
    for i in range(num_jobs):
        release = rng.randrange(horizon)
        deadline = min(horizon - 1, release + rng.randint(0, 1))
        jobs.append(Job(release=release, deadline=deadline, name=f"tight{i}"))
    return _wrap(jobs, num_processors)


def clustered_release_instance(
    num_jobs: int,
    horizon: int,
    num_clusters: int = 3,
    max_slack: int = 4,
    seed: Optional[int] = None,
    num_processors: Optional[int] = None,
) -> InstanceOut:
    """Bursts of jobs released together at a few cluster points.

    Each job is released at one of ``num_clusters`` uniformly placed cluster
    times (with jitter 0-1) and gets a deadline ``1..max_slack`` slots after
    its release, clipped to the horizon.  Bursty arrivals with modest slack
    are exactly the workloads where greedy gap placement and the DP diverge.
    """
    if num_jobs < 0 or horizon < 1 or num_clusters < 1 or max_slack < 1:
        raise InvalidInstanceError("invalid clustered-release generator parameters")
    rng = _rng(seed)
    cluster_points = sorted(rng.randrange(horizon) for _ in range(num_clusters))
    jobs: List[Job] = []
    for i in range(num_jobs):
        base = rng.choice(cluster_points)
        release = min(horizon - 1, base + rng.randint(0, 1))
        deadline = min(horizon - 1, release + rng.randint(1, max_slack))
        jobs.append(Job(release=release, deadline=deadline, name=f"burst{i}"))
    return _wrap(jobs, num_processors)


def splittable_instance(
    num_jobs: int,
    num_clusters: int = 4,
    cluster_horizon: int = 20,
    seam: int = 8,
    max_slack: int = 6,
    seed: Optional[int] = None,
    num_processors: Optional[int] = None,
    periodic: bool = False,
) -> InstanceOut:
    """Time-disjoint clusters of jobs separated by guaranteed idle seams.

    Jobs are dealt round-robin into ``num_clusters`` clusters; cluster
    ``k`` occupies ``[k * (cluster_horizon + seam), ...]`` and every window
    stays strictly inside its cluster's ``cluster_horizon`` span, so
    consecutive clusters are separated by at least ``seam`` integer times
    that no window covers.  This is the best case for
    :mod:`repro.core.decompose` — the instance falls apart into
    ``num_clusters`` independent sub-instances — and the worst case for
    the monolithic DP, whose tables still span the whole horizon.  Use
    ``seam >= alpha`` (and ``seam >= 1`` for gaps) to keep decomposition
    applicable for the objective under test.

    With ``periodic=True`` every cluster is the *same* window pattern
    shifted by ``cluster_horizon + seam`` — the workload shape of a
    repeating daily/shift schedule.  The clusters are then canonically
    isomorphic (canonicalization is shift-invariant), so a decomposed
    solve runs one component DP and answers the rest from the solve
    cache.  Requires ``num_jobs`` divisible by ``num_clusters``.
    """
    if num_jobs < 0 or num_clusters < 1 or cluster_horizon < 2:
        raise InvalidInstanceError(
            "need num_jobs >= 0, num_clusters >= 1 and cluster_horizon >= 2"
        )
    if seam < 1 or max_slack < 1:
        raise InvalidInstanceError("need seam >= 1 and max_slack >= 1")
    if periodic and num_jobs % num_clusters:
        raise InvalidInstanceError(
            "periodic=True needs num_jobs divisible by num_clusters"
        )
    rng = _rng(seed)
    jobs: List[Job] = []
    if periodic:
        pattern = []
        for _ in range(num_jobs // num_clusters):
            release = rng.randrange(cluster_horizon - 1)
            deadline = min(cluster_horizon - 1, release + rng.randint(1, max_slack))
            pattern.append((release, deadline))
        for k in range(num_clusters):
            base = k * (cluster_horizon + seam)
            for i, (release, deadline) in enumerate(pattern):
                jobs.append(
                    Job(
                        release=base + release,
                        deadline=base + deadline,
                        name=f"split{k}_{i}",
                    )
                )
        return _wrap(jobs, num_processors)
    for i in range(num_jobs):
        base = (i % num_clusters) * (cluster_horizon + seam)
        release = base + rng.randrange(cluster_horizon - 1)
        deadline = min(
            base + cluster_horizon - 1, release + rng.randint(1, max_slack)
        )
        jobs.append(Job(release=release, deadline=deadline, name=f"split{i}"))
    return _wrap(jobs, num_processors)


def hall_violating_instance(
    num_jobs: int,
    horizon: int,
    seed: Optional[int] = None,
    num_processors: Optional[int] = None,
    slack: int = -1,
) -> InstanceOut:
    """An instance whose load on some window is off from capacity by ``-slack``.

    A window ``[x, y]`` is chosen at random and filled with
    ``p * (y - x + 1) - slack`` jobs whose whole execution window lies inside
    ``[x, y]``; remaining jobs are placed loosely elsewhere.  With the
    default ``slack=-1`` the window demands one more job than it has slots —
    a Hall violation, so the instance is certifiably infeasible.  With
    ``slack=0`` the window is exactly tight: the instance sits on the
    feasibility knife edge (and is feasible unless the filler jobs collide).

    The instance holds ``max(num_jobs, p * width - slack)`` jobs in total,
    where ``width`` is the drawn window width: overloading the window always
    takes ``p * width - slack`` jobs (at least ``p - slack``, the width-one
    case), and ``num_jobs`` is topped up with loose filler jobs when larger.
    """
    if num_jobs < 1 or horizon < 2:
        raise InvalidInstanceError("need num_jobs >= 1 and horizon >= 2")
    if slack > 0:
        raise InvalidInstanceError("slack must be <= 0 for a near-infeasible family")
    p = 1 if num_processors is None else num_processors
    rng = _rng(seed)
    num_jobs = max(num_jobs, p - slack)
    width = rng.randint(1, max(1, min(horizon - 1, (num_jobs + slack) // max(1, p))))
    x = rng.randrange(horizon - width)
    y = x + width - 1
    overload = p * width - slack
    jobs: List[Job] = []
    for i in range(overload):
        release = rng.randint(x, y)
        deadline = rng.randint(release, y)
        jobs.append(Job(release=release, deadline=deadline, name=f"hall{i}"))
    for i in range(max(0, num_jobs - overload)):
        release = rng.randrange(horizon)
        deadline = min(horizon - 1, release + rng.randint(1, horizon))
        jobs.append(Job(release=release, deadline=deadline, name=f"fill{i}"))
    return _wrap(jobs, num_processors)
