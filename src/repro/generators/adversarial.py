"""Adversarial / worst-case instance families.

Currently these are thin re-exports of the constructions defined next to the
online baselines in :mod:`repro.core.online`, plus the set-cover-shaped
scheduling gadgets from :mod:`repro.reductions`, gathered here so that the
experiment harness has a single place to import "hard" instances from.
"""

from ..core.online import (
    multi_interval_online_dilemma,
    online_lower_bound_alternative,
    online_lower_bound_instance,
)

__all__ = [
    "online_lower_bound_instance",
    "online_lower_bound_alternative",
    "multi_interval_online_dilemma",
]
