"""Metrics, reporting and the experiment harness.

* :mod:`repro.analysis.metrics` — derived quantities (approximation ratios,
  gap statistics, energy breakdowns) shared by tests, examples and benches.
* :mod:`repro.analysis.reporting` — plain-text table rendering used by the
  CLI, the examples and EXPERIMENTS.md.
* :mod:`repro.analysis.experiments` — one function per experiment E1-E12 of
  DESIGN.md; each returns an :class:`~repro.analysis.reporting.ExperimentTable`
  and is callable both from the benchmark suite and from the command line.
"""

from .metrics import (
    approximation_ratio,
    gap_statistics,
    power_breakdown,
    schedule_summary,
)
from .reporting import ExperimentTable, format_table, render_tables
from .experiments import (
    ALL_EXPERIMENTS,
    run_experiment,
    run_all_experiments,
)

__all__ = [
    "approximation_ratio",
    "gap_statistics",
    "power_breakdown",
    "schedule_summary",
    "ExperimentTable",
    "format_table",
    "render_tables",
    "ALL_EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
]
