"""Plain-text table rendering for the experiment harness.

The paper contains no tables or figures (it is a theory paper), so each
experiment of this reproduction produces its own validation table.  Tables
are rendered as fixed-width text so they can be pasted directly into
EXPERIMENTS.md and printed from the CLI and the benchmark harness without
any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Union

__all__ = ["ExperimentTable", "format_table", "render_tables"]

Cell = Union[str, int, float, None]


@dataclass
class ExperimentTable:
    """A titled table of experiment results."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells: Cell) -> None:
        """Append a row; the number of cells must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        """All values of one column, by column name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        return f"{cell:.3f}".rstrip("0").rstrip(".") if abs(cell) < 1e6 else f"{cell:.3g}"
    return str(cell)


def format_table(table: ExperimentTable) -> str:
    """Render one table as fixed-width text."""
    header = [str(c) for c in table.columns]
    body = [[_format_cell(cell) for cell in row] for row in table.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [f"[{table.experiment_id}] {table.title}"]
    lines.append(fmt_row(header))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(fmt_row(row))
    if table.notes:
        lines.append(f"  note: {table.notes}")
    return "\n".join(lines)


def render_tables(tables: Iterable[ExperimentTable]) -> str:
    """Render a sequence of tables separated by blank lines."""
    return "\n\n".join(format_table(table) for table in tables)
