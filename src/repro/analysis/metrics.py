"""Derived metrics shared by tests, examples and the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..core.schedule import MultiprocessorSchedule, Schedule

__all__ = [
    "approximation_ratio",
    "gap_statistics",
    "power_breakdown",
    "schedule_summary",
]


def approximation_ratio(achieved: float, optimal: float) -> float:
    """Ratio of an algorithm's objective value to the optimum.

    Conventions: a zero optimum with a zero achieved value is a ratio of 1;
    a zero optimum with a positive achieved value is reported as ``inf``
    (the caller decides how to present unbounded ratios).
    """
    if optimal < 0 or achieved < 0:
        raise ValueError("objective values must be non-negative")
    if optimal == 0:
        return 1.0 if achieved == 0 else float("inf")
    return achieved / optimal


def gap_statistics(schedule: Union[Schedule, MultiprocessorSchedule]) -> Dict[str, float]:
    """Gap-related summary statistics of a schedule."""
    if isinstance(schedule, MultiprocessorSchedule):
        from ..core.schedule import gap_lengths_of_busy_times

        lengths: List[int] = []
        for times in schedule.busy_times_by_processor().values():
            lengths.extend(gap_lengths_of_busy_times(times))
        num_gaps = schedule.num_gaps()
    else:
        lengths = schedule.gap_lengths()
        num_gaps = schedule.num_gaps()
    total = float(sum(lengths))
    return {
        "num_gaps": float(num_gaps),
        "total_idle": total,
        "mean_gap_length": total / num_gaps if num_gaps else 0.0,
        "max_gap_length": float(max(lengths)) if lengths else 0.0,
    }


def power_breakdown(
    schedule: Union[Schedule, MultiprocessorSchedule], alpha: float
) -> Dict[str, float]:
    """Decompose the power cost into execution, bridged idle and wake-up terms."""
    if isinstance(schedule, MultiprocessorSchedule):
        per_processor = schedule.busy_times_by_processor().values()
    else:
        per_processor = [schedule.busy_times()]

    from ..core.schedule import gap_lengths_of_busy_times

    execution = 0.0
    bridged_idle = 0.0
    wakeups = 0.0
    for times in per_processor:
        times = sorted(times)
        if not times:
            continue
        execution += len(times)
        wakeups += alpha
        for gap in gap_lengths_of_busy_times(times):
            if gap < alpha:
                bridged_idle += gap
            else:
                wakeups += alpha
    return {
        "execution": execution,
        "bridged_idle": bridged_idle,
        "wakeup": wakeups,
        "total": execution + bridged_idle + wakeups,
    }


def schedule_summary(
    schedule: Union[Schedule, MultiprocessorSchedule], alpha: Optional[float] = None
) -> Dict[str, float]:
    """One-line summary used by the examples and the CLI."""
    summary: Dict[str, float] = {
        "jobs_scheduled": float(schedule.num_scheduled),
        "num_gaps": float(schedule.num_gaps()),
    }
    if isinstance(schedule, MultiprocessorSchedule):
        summary["used_processors"] = float(schedule.used_processors())
    else:
        summary["num_spans"] = float(schedule.num_spans())
    if alpha is not None:
        summary["power"] = float(schedule.power_cost(alpha))
    return summary
