"""O(n log n) lower bounds on gaps, power, and feasibility.

Every bound here is *valid by construction* on single-processor
one-interval instances (the large-n regime the portfolio targets) and
returns a :class:`~repro.bounds.certificate.BoundCertificate` whose witness
re-checks in :func:`repro.verify.certificates.certify_bound` without
re-running the sweep that found it.

The structural fact all value bounds share: every complete schedule's busy
slots lie inside the union of the jobs' execution windows.  When that union
splits into ``k`` maximal intervals ("window components") separated by
uncovered time, each component holds at least one busy slot, so at least
``k - 1`` idle periods separate busy periods — that is ``k - 1`` gaps for
the gap objective, and for the power objective each seam's idle period is
at least as wide as the uncovered stretch, costing ``min(width, alpha)``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from ..core.jobs import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from ..matching import hopcroft_karp
from .certificate import BoundCertificate

__all__ = [
    "window_components",
    "gap_lower_bound",
    "power_lower_bound",
    "hall_deficiency",
    "matching_feasibility",
    "multiproc_gap_lower_bound",
    "multiproc_power_lower_bound",
    "union_components",
    "multi_interval_gap_lower_bound",
    "multi_interval_power_lower_bound",
    "lower_bound_for",
]

#: Edge-count ceiling above which :func:`matching_feasibility` refuses to
#: materialise the job/slot bipartite graph.
MATCHING_EDGE_LIMIT = 500_000


def window_components(instance: OneIntervalInstance) -> List[Tuple[int, int]]:
    """Maximal intervals of the union of execution windows.

    Two windows belong to the same component when their union is contiguous
    (touching counts: ``[0, 2]`` and ``[3, 5]`` merge, ``[0, 2]`` and
    ``[4, 5]`` do not — slot 3 is uncovered and forces idleness).
    """
    windows = sorted(job.window for job in instance.jobs)
    components: List[Tuple[int, int]] = []
    for release, deadline in windows:
        if components and release <= components[-1][1] + 1:
            start, end = components[-1]
            components[-1] = (start, max(end, deadline))
        else:
            components.append((release, deadline))
    return components


def interval_coverage(instance: OneIntervalInstance, length: int) -> int:
    """Max number of job windows intersecting any interval of ``length`` slots.

    Window ``[r, d]`` intersects ``[t, t + length - 1]`` exactly when
    ``t in [r - length + 1, d]``, so this is a max-overlap sweep over those
    shifted intervals: O(n log n) (O(n) after the instance's sorted views).
    """
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    if instance.num_jobs == 0:
        return 0
    starts = sorted(r - length + 1 for r in instance.releases)
    ends = sorted(instance.deadlines)
    best = active = 0
    i = j = 0
    n = len(starts)
    while i < n:
        # A window ending at d deactivates at d + 1; break ties by
        # deactivating before activating at the same sweep position.
        if ends[j] + 1 <= starts[i]:
            active -= 1
            j += 1
        else:
            active += 1
            i += 1
            if active > best:
                best = active
    return best


def _block_length_cap(instance: OneIntervalInstance) -> Optional[Dict[str, int]]:
    """A certified cap on the length of any busy block, or ``None``.

    A contiguous busy block of length ``l`` schedules ``l`` distinct jobs
    whose windows all intersect the block's interval, so
    ``interval_coverage(l) < l`` proves no block reaches length ``l``.  The
    probe schedule is geometric with a one-sided binary refinement; any
    *tested* failing ``l`` yields the valid cap ``l - 1``.
    """
    n = instance.num_jobs
    if n == 0:
        return None
    lo_r, hi_d = instance.horizon
    horizon = hi_d - lo_r + 1
    failing: Optional[int] = None
    passing = 1  # interval_coverage(1) >= 1 whenever a window exists
    probe = 2
    while probe < horizon:
        if interval_coverage(instance, probe) < probe:
            failing = probe
            break
        passing = probe
        probe *= 2
    if failing is None:
        return None
    while failing - passing > 1:
        mid = (failing + passing) // 2
        if interval_coverage(instance, mid) < mid:
            failing = mid
        else:
            passing = mid
    cap = failing - 1
    return {
        "probe": failing,
        "coverage": interval_coverage(instance, failing),
        "cap": cap,
        "bound": (n + cap - 1) // cap - 1,
    }


def gap_lower_bound(instance: OneIntervalInstance) -> BoundCertificate:
    """Structural lower bound on the single-processor gap optimum.

    Combines two independent arguments and takes the better one:

    * **components** — ``k`` window components force ``k - 1`` gaps;
    * **density** — a certified block-length cap ``c`` (every busy block
      has at most ``c`` slots) forces ``ceil(n / c) - 1`` gaps.
    """
    components = window_components(instance)
    component_bound = max(0, len(components) - 1)
    density = _block_length_cap(instance)
    density_bound = density["bound"] if density else 0
    return BoundCertificate(
        kind="gap-structure",
        objective="gaps",
        value=max(component_bound, density_bound),
        witness={
            "components": [list(span) for span in components],
            "density": density,
        },
    )


def power_lower_bound(
    instance: OneIntervalInstance, alpha: float
) -> BoundCertificate:
    """``opt_power >= n + alpha + sum(min(seam_i, alpha))`` on one processor.

    ``n`` busy slots are unavoidable, the first wake-up costs ``alpha``,
    and the idle period crossing the ``i``-th uncovered seam between
    window components is at least ``seam_i`` slots wide, costing
    ``min(seam_i, alpha)`` whether the scheduler sleeps through it or not.
    """
    alpha = float(alpha)
    components = window_components(instance)
    n = instance.num_jobs
    seams = [
        components[i + 1][0] - components[i][1] - 1
        for i in range(len(components) - 1)
    ]
    density = _block_length_cap(instance)
    # Two incomparable charges for the idle periods: the seams between
    # window components each cost min(seam, alpha), while a density gap
    # count of G charges every gap at the min(1, alpha) floor.  They count
    # overlapping gaps, so take the max rather than the sum.
    seam_charge = sum(min(seam, alpha) for seam in seams)
    density_gaps = density["bound"] if density else 0
    idle_charge = max(seam_charge, density_gaps * min(1.0, alpha))
    value = n + alpha + idle_charge if n else 0.0
    return BoundCertificate(
        kind="power-structure",
        objective="power",
        value=value,
        witness={
            "components": [list(span) for span in components],
            "seams": seams,
            "density": density,
            "num_jobs": n,
        },
        alpha=alpha,
    )


class _MaxAddTree:
    """Segment tree over a fixed array supporting prefix add and argmax.

    Stores, for each leaf ``i``, a value ``base[i]`` plus every prefix
    increment applied so far; exposes the global maximum and the leftmost
    leaf attaining it.  Everything the Hall sweep needs, nothing more.
    """

    def __init__(self, base: List[float]) -> None:
        self.n = len(base)
        size = 1
        while size < self.n:
            size *= 2
        self.size = size
        neg = float("-inf")
        self.mx = [neg] * (2 * size)
        self.lazy = [0.0] * (2 * size)
        for i, v in enumerate(base):
            self.mx[size + i] = v
        for i in range(size - 1, 0, -1):
            self.mx[i] = max(self.mx[2 * i], self.mx[2 * i + 1])

    def add_prefix(self, last: int, delta: float) -> None:
        """Add ``delta`` to every leaf ``0..last`` (inclusive)."""
        self._add(1, 0, self.size - 1, 0, last, delta)

    def _add(self, node: int, lo: int, hi: int, a: int, b: int, delta: float) -> None:
        if b < lo or hi < a:
            return
        if a <= lo and hi <= b:
            self.mx[node] += delta
            self.lazy[node] += delta
            return
        mid = (lo + hi) // 2
        self._add(2 * node, lo, mid, a, b, delta)
        self._add(2 * node + 1, mid + 1, hi, a, b, delta)
        self.mx[node] = max(self.mx[2 * node], self.mx[2 * node + 1]) + self.lazy[node]

    def prefix_max(self, last: int) -> Tuple[float, int]:
        """``(max, argmax)`` over leaves ``0..last`` (inclusive)."""
        return self._query(1, 0, self.size - 1, last, 0.0)

    def _query(
        self, node: int, lo: int, hi: int, last: int, acc: float
    ) -> Tuple[float, int]:
        if lo > last:
            return (float("-inf"), -1)
        if hi <= last:
            return (self.mx[node] + acc, self._argmax_in(node, lo, hi))
        acc += self.lazy[node]
        mid = (lo + hi) // 2
        left = self._query(2 * node, lo, mid, last, acc)
        right = self._query(2 * node + 1, mid + 1, hi, last, acc)
        return left if left[0] >= right[0] else right

    def _argmax_in(self, node: int, lo: int, hi: int) -> int:
        # A node's pending lazy shifts both children equally, so the
        # descent can compare the stored child maxima directly.
        while lo < hi:
            mid = (lo + hi) // 2
            if self.mx[2 * node] >= self.mx[2 * node + 1]:
                node, hi = 2 * node, mid
            else:
                node, lo = 2 * node + 1, mid + 1
        return lo


def hall_deficiency(instance, num_processors: int = 1) -> BoundCertificate:
    """Maximum Hall deficiency ``demand([x, y]) - p * (y - x + 1)`` in O(n log n).

    A positive value certifies infeasibility with the overloaded window as
    witness; a non-positive value certifies, by Hall's theorem for interval
    bipartite graphs, that a complete schedule exists.  This is the
    sweepline form of :func:`repro.matching.hall.hall_violation`, which
    enumerates all release/deadline pairs and is quadratic.
    """
    if isinstance(instance, MultiprocessorInstance):
        num_processors = instance.num_processors
    windows = [job.window for job in instance.jobs]
    p = int(num_processors)
    if p < 1:
        raise ValueError(f"num_processors must be positive, got {p}")
    if not windows:
        return BoundCertificate(
            kind="hall-deficiency", objective="feasibility", value=0, witness={}
        )

    releases = sorted({r for r, _d in windows})
    # v(x) = #{jobs seen so far with r_j >= x} + p * x; the deficiency of
    # window [x, y] is then v(x) - p * (y + 1) once every job with
    # d_j <= y has been folded in.
    tree = _MaxAddTree([float(p * x) for x in releases])
    by_deadline = sorted(windows, key=lambda w: w[1])

    best = float("-inf")
    best_window: Optional[Tuple[int, int]] = None
    i = 0
    m = len(by_deadline)
    while i < m:
        y = by_deadline[i][1]
        while i < m and by_deadline[i][1] == y:
            r = by_deadline[i][0]
            tree.add_prefix(bisect_right(releases, r) - 1, 1.0)
            i += 1
        # Only x <= y yields a real window; larger releases would score
        # phantom deficiency from the p * x offset alone.
        last = bisect_right(releases, y) - 1
        top, arg = tree.prefix_max(last)
        deficiency = top - p * (y + 1)
        if deficiency > best:
            best = deficiency
            best_window = (releases[arg], y)

    value = int(round(best))
    witness: Dict[str, object] = {"num_processors": p}
    if best_window is not None:
        x, y = best_window
        demand = sum(1 for r, d in windows if r >= x and d <= y)
        witness.update(
            {
                "x": x,
                "y": y,
                "demand": demand,
                "capacity": p * (y - x + 1),
            }
        )
    return BoundCertificate(
        kind="hall-deficiency", objective="feasibility", value=value, witness=witness
    )


def matching_feasibility(instance) -> BoundCertificate:
    """Feasibility via maximum bipartite matching, packaged as a certificate.

    ``value`` is the shortfall ``n - |matching|``; positive means
    infeasible.  Refuses instances whose job/slot graph would exceed
    :data:`MATCHING_EDGE_LIMIT` edges — use :func:`hall_deficiency` there.
    """
    from ..core.feasibility import build_job_slot_graph

    jobs = instance.jobs
    edges = sum(
        (job.window_length if hasattr(job, "window_length") else len(job.times))
        for job in jobs
    )
    if edges > MATCHING_EDGE_LIMIT:
        raise ValueError(
            f"job/slot graph has ~{edges} edges, above the "
            f"{MATCHING_EDGE_LIMIT} matching limit; use hall_deficiency"
        )
    graph = build_job_slot_graph(instance)
    match_left, _match_right = hopcroft_karp(graph)
    size = sum(1 for m in match_left if m != -1)
    n = len(jobs)
    return BoundCertificate(
        kind="matching-feasibility",
        objective="feasibility",
        value=n - size,
        witness={"matching_size": size, "num_jobs": n, "edges": edges},
    )


# ---------------------------------------------------------------------------
# multiprocessor bounds (Hall-deficiency per window component)
# ---------------------------------------------------------------------------
def _processor_requirement(instance: OneIntervalInstance) -> Dict[str, object]:
    """Minimal ``p`` with non-positive Hall deficiency, plus the proof.

    Returns ``{"processors": p_min, "window": [x, y] | None, "demand": D |
    None}``.  When ``p_min > 1`` the window certifies that ``p_min - 1``
    processors are overloaded: ``D`` jobs live entirely inside ``[x, y]``
    but only ``(p_min - 1) * (y - x + 1)`` slots exist there.  Binary
    search over ``p`` — ``hall_deficiency`` is monotone in ``p``.
    """
    n = instance.num_jobs
    if n == 0:
        return {"processors": 0, "window": None, "demand": None}
    lo, hi = 1, n
    while lo < hi:
        mid = (lo + hi) // 2
        if hall_deficiency(instance, mid).value <= 0:
            hi = mid
        else:
            lo = mid + 1
    if lo == 1:
        return {"processors": 1, "window": None, "demand": None}
    short = hall_deficiency(instance, lo - 1).witness
    return {
        "processors": lo,
        "window": [short["x"], short["y"]],
        "demand": short["demand"],
    }


def _component_requirements(
    base: OneIntervalInstance,
) -> List[Dict[str, object]]:
    """Per-window-component processor requirements with Hall witnesses."""
    components = window_components(base)
    starts = [a for a, _b in components]
    buckets: List[List] = [[] for _ in components]
    for job in base.jobs:
        buckets[bisect_right(starts, job.release) - 1].append(job)
    entries = []
    for span, jobs in zip(components, buckets):
        need = _processor_requirement(OneIntervalInstance(jobs))
        entries.append({"span": list(span), **need})
    return entries


def multiproc_gap_lower_bound(
    instance: MultiprocessorInstance,
) -> BoundCertificate:
    """``opt_gaps >= sum_i m_i - p`` on ``p`` processors.

    ``m_i`` is the minimal processor count on which window component ``i``
    alone is feasible (Hall's condition).  Any complete schedule has at
    least ``m_i`` processors busy inside component ``i``; a processor busy
    in ``c`` components has at least ``c - 1`` gaps, so summing over
    processors gives at least ``sum_i m_i - p`` gaps in total.
    """
    base = instance.single_processor_view()
    entries = _component_requirements(base)
    total = sum(entry["processors"] for entry in entries)
    return BoundCertificate(
        kind="multiproc-gap-structure",
        objective="gaps",
        value=max(0, total - instance.num_processors),
        witness={
            "num_processors": instance.num_processors,
            "components": entries,
        },
    )


def multiproc_power_lower_bound(
    instance: MultiprocessorInstance, alpha: float
) -> BoundCertificate:
    """``opt_power >= n + q * alpha + max(0, sum_i m_i - q) * min(1, alpha)``.

    ``q`` is the minimal processor count for the whole instance (each of
    the at-least-``q`` busy processors pays its first wake-up), and the
    component argument of :func:`multiproc_gap_lower_bound` charges every
    forced extra gap at the ``min(1, alpha)`` floor.
    """
    alpha = float(alpha)
    base = instance.single_processor_view()
    n = base.num_jobs
    entries = _component_requirements(base)
    total = sum(entry["processors"] for entry in entries)
    overall = _processor_requirement(base)
    q = overall["processors"]
    value = n + q * alpha + max(0, total - q) * min(1.0, alpha) if n else 0.0
    return BoundCertificate(
        kind="multiproc-power-structure",
        objective="power",
        value=value,
        witness={
            "num_processors": instance.num_processors,
            "num_jobs": n,
            "min_processors": overall,
            "components": entries,
        },
        alpha=alpha,
    )


# ---------------------------------------------------------------------------
# multi-interval bounds (components of the union of allowed times)
# ---------------------------------------------------------------------------
def union_components(instance: MultiIntervalInstance) -> List[Tuple[int, int]]:
    """Maximal runs of consecutive slots in the union of allowed times."""
    components: List[Tuple[int, int]] = []
    for t in instance.all_times:
        if components and t == components[-1][1] + 1:
            components[-1] = (components[-1][0], t)
        else:
            components.append((t, t))
    return components


def _pinned_components(
    instance: MultiIntervalInstance, components: List[Tuple[int, int]]
) -> List[List[int]]:
    """``[component_index, job_index]`` pairs for jobs stuck in one run.

    A job whose allowed times all fall inside one component must execute
    there; each such component therefore holds a busy slot.  Jobs whose
    times straddle several components pin nothing.
    """
    starts = [a for a, _b in components]
    pinned: Dict[int, int] = {}
    for idx, job in enumerate(instance.jobs):
        lo, hi = min(job.times), max(job.times)
        pos = bisect_right(starts, lo) - 1
        if hi <= components[pos][1] and pos not in pinned:
            pinned[pos] = idx
    return [[pos, pinned[pos]] for pos in sorted(pinned)]


def multi_interval_gap_lower_bound(
    instance: MultiIntervalInstance,
) -> BoundCertificate:
    """``opt_gaps >= (#pinned components) - 1`` for multi-interval jobs.

    Busy slots appear in every component that wholly contains some job's
    allowed set, and distinct components are separated by slots no job may
    use — forced idle time, hence a gap between each consecutive pair.
    """
    components = union_components(instance)
    pinned = _pinned_components(instance, components)
    return BoundCertificate(
        kind="multiinterval-gap-structure",
        objective="gaps",
        value=max(0, len(pinned) - 1),
        witness={
            "components": [list(span) for span in components],
            "pinned": pinned,
        },
    )


def multi_interval_power_lower_bound(
    instance: MultiIntervalInstance, alpha: float
) -> BoundCertificate:
    """``opt_power >= n + alpha + sum(min(uncovered_i, alpha))``.

    ``uncovered_i`` is the number of slots between consecutive *pinned*
    components that belong to no job's allowed set: those slots are idle
    in every schedule, and the idle intervals between two pinned busy
    regions cost at least ``min(total width, alpha)`` (sub-additivity of
    ``min(., alpha)``).
    """
    alpha = float(alpha)
    components = union_components(instance)
    pinned = _pinned_components(instance, components)
    n = instance.num_jobs
    seams = []
    for (i, _j1), (k, _j2) in zip(pinned, pinned[1:]):
        between = components[k][0] - components[i][1] - 1
        covered = sum(b - a + 1 for a, b in components[i + 1 : k])
        seams.append(between - covered)
    idle_charge = sum(min(float(s), alpha) for s in seams)
    value = n + alpha + idle_charge if n else 0.0
    return BoundCertificate(
        kind="multiinterval-power-structure",
        objective="power",
        value=value,
        witness={
            "components": [list(span) for span in components],
            "pinned": pinned,
            "seams": seams,
            "num_jobs": n,
        },
        alpha=alpha,
    )


def lower_bound_for(problem) -> Optional[BoundCertificate]:
    """The cheap lower bound matching ``problem``'s objective, or ``None``.

    Covers single-processor one-interval instances (the large-n regime the
    portfolio's heuristics target), ``p``-processor instances via
    per-component Hall deficiency, and multi-interval instances via the
    components of the union of allowed times.  Only the ``"throughput"``
    objective is left unbounded.
    """
    instance = problem.instance
    if isinstance(instance, MultiprocessorInstance) and instance.num_processors == 1:
        instance = instance.single_processor_view()
    if isinstance(instance, MultiprocessorInstance):
        if problem.objective == "gaps":
            return multiproc_gap_lower_bound(instance)
        if problem.objective == "power":
            return multiproc_power_lower_bound(instance, problem.alpha)
        return None
    if isinstance(instance, MultiIntervalInstance):
        if problem.objective == "gaps":
            return multi_interval_gap_lower_bound(instance)
        if problem.objective == "power":
            return multi_interval_power_lower_bound(instance, problem.alpha)
        return None
    if not isinstance(instance, OneIntervalInstance):
        return None
    if problem.objective == "gaps":
        return gap_lower_bound(instance)
    if problem.objective == "power":
        return power_lower_bound(instance, problem.alpha)
    return None
