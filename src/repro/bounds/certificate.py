"""The certificate envelope shared by every bound in :mod:`repro.bounds`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["BOUND_KINDS", "BoundCertificate"]

#: The witness kinds :func:`repro.verify.certificates.certify_bound` can re-check.
BOUND_KINDS = (
    "gap-structure",
    "power-structure",
    "multiproc-gap-structure",
    "multiproc-power-structure",
    "multiinterval-gap-structure",
    "multiinterval-power-structure",
    "hall-deficiency",
    "matching-feasibility",
)


@dataclass
class BoundCertificate:
    """A lower bound together with the witness that proves it.

    Attributes
    ----------
    kind:
        One of :data:`BOUND_KINDS`; selects the re-checking procedure in
        :func:`repro.verify.certificates.certify_bound`.
    objective:
        ``"gaps"`` / ``"power"`` for value bounds, ``"feasibility"`` for
        the infeasibility certificates.
    value:
        The proven lower bound on the optimum (for value bounds), or the
        Hall deficiency / matching shortfall (for feasibility
        certificates, where ``value > 0`` certifies infeasibility).
    witness:
        JSON-native data sufficient to re-derive ``value`` without
        re-running the bound computation (e.g. the window components, the
        overloaded Hall window, the matching size).
    alpha:
        The wake-up cost, for power bounds only.
    """

    kind: str
    objective: str
    value: float
    witness: Dict[str, Any] = field(default_factory=dict)
    alpha: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in BOUND_KINDS:
            raise ValueError(
                f"unknown bound kind {self.kind!r}; expected one of {BOUND_KINDS}"
            )

    @property
    def proves_infeasible(self) -> bool:
        """True when this certificate proves the instance infeasible."""
        return self.objective == "feasibility" and self.value > 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form, embedded verbatim in ``SolveResult.extra``."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "objective": self.objective,
            "value": self.value,
            "witness": self.witness,
        }
        if self.alpha is not None:
            payload["alpha"] = self.alpha
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BoundCertificate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=payload["kind"],
            objective=payload["objective"],
            value=payload["value"],
            witness=dict(payload.get("witness", {})),
            alpha=payload.get("alpha"),
        )
