"""Cheap, certified lower bounds for the large-n approximation portfolio.

The exact DPs (Theorems 1 and 2) are polynomial but heavy; the paper's own
approximation results ([FHKN06] ``3 opt + 2`` for gaps, ``(1 + alpha) opt``
for power) show that *certified* approximate answers are cheap.  This
package supplies the other half of a certified answer: lower bounds on the
optimum that cost ``O(n log n)``, each packaged as a
:class:`BoundCertificate` whose witness can be re-checked independently by
:func:`repro.verify.certificates.certify_bound`.

* :func:`gap_lower_bound` — the window-component bound: if the union of the
  jobs' execution windows splits into ``k`` maximal intervals separated by
  uncovered time, every complete single-processor schedule has at least
  ``k - 1`` gaps.
* :func:`power_lower_bound` — area plus forced-seam bound: ``n`` busy slots,
  one wake-up ``alpha``, and every seam between consecutive window
  components forces an idle period of at least its width, costing
  ``min(width, alpha)``.
* :func:`hall_deficiency` — a sweepline/segment-tree evaluation of the Hall
  condition for unit jobs in ``O(n log n)`` (the quadratic reference
  implementation lives in :func:`repro.matching.hall.hall_violation`);
  a positive deficiency certifies infeasibility with an explicit
  overloaded window.
* :func:`matching_feasibility` — the bipartite-matching oracle
  (:func:`repro.matching.hopcroft_karp`) packaged as a certificate, for
  instances small enough to materialise the job/slot graph.
* :func:`multiproc_gap_lower_bound` / :func:`multiproc_power_lower_bound` —
  ``p``-processor bounds from per-window-component Hall deficiency: if
  component ``i`` alone needs ``m_i`` processors, every schedule has at
  least ``sum_i m_i - p`` gaps, and the power objective pays at least one
  wake-up per required processor.
* :func:`multi_interval_gap_lower_bound` /
  :func:`multi_interval_power_lower_bound` — multi-interval bounds from the
  components of the union of allowed times: each component wholly
  containing some job's allowed set must hold a busy slot.
* :func:`lower_bound_for` — objective dispatch used by the portfolio and
  the heuristic solver adapters.
"""

from .certificate import BoundCertificate
from .lower import (
    gap_lower_bound,
    hall_deficiency,
    lower_bound_for,
    matching_feasibility,
    multi_interval_gap_lower_bound,
    multi_interval_power_lower_bound,
    multiproc_gap_lower_bound,
    multiproc_power_lower_bound,
    power_lower_bound,
    union_components,
    window_components,
)

__all__ = [
    "BoundCertificate",
    "gap_lower_bound",
    "power_lower_bound",
    "hall_deficiency",
    "matching_feasibility",
    "multiproc_gap_lower_bound",
    "multiproc_power_lower_bound",
    "multi_interval_gap_lower_bound",
    "multi_interval_power_lower_bound",
    "lower_bound_for",
    "union_components",
    "window_components",
]
