"""Hall-condition certificates of scheduling infeasibility.

For one-interval unit jobs on ``p`` identical processors, a feasible schedule
exists if and only if, for every time window ``[x, y]``, the number of jobs
whose execution window is contained in ``[x, y]`` does not exceed
``p * (y - x + 1)``.  This is Hall's theorem specialised to interval
bipartite graphs and gives a human-readable *certificate* of infeasibility
(the overloaded window), which the solvers attach to
:class:`~repro.core.exceptions.InfeasibleInstanceError` messages.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["hall_violation"]


def hall_violation(
    windows: Sequence[Tuple[int, int]], num_processors: int = 1
) -> Optional[Tuple[int, int, int, int]]:
    """Find a violated Hall condition, if any.

    Parameters
    ----------
    windows:
        Inclusive ``(release, deadline)`` windows of unit jobs.
    num_processors:
        Number of identical processors.

    Returns
    -------
    ``None`` when no window is overloaded, otherwise a tuple
    ``(x, y, demand, capacity)`` where ``demand`` jobs must run inside
    ``[x, y]`` but only ``capacity = num_processors * (y - x + 1)`` slots
    exist.
    """
    if num_processors < 1:
        raise ValueError(f"num_processors must be positive, got {num_processors}")
    if not windows:
        return None

    releases = sorted({r for r, _d in windows})
    deadlines = sorted({d for _r, d in windows})
    for x in releases:
        for y in deadlines:
            if y < x:
                continue
            demand = sum(1 for r, d in windows if r >= x and d <= y)
            capacity = num_processors * (y - x + 1)
            if demand > capacity:
                return (x, y, demand, capacity)
    return None
