"""Hopcroft-Karp maximum-cardinality bipartite matching.

The scheduling feasibility questions of the paper ("can all jobs be
scheduled?", "can this interval be completely filled?") are answered by
maximum matching between jobs and time slots.  Hopcroft-Karp runs in
``O(E * sqrt(V))`` which is fast enough for every instance size used in the
experiments; the greedy warm start below typically resolves most vertices
before the first BFS phase.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

from .bipartite import BipartiteGraph

__all__ = ["hopcroft_karp", "maximum_matching"]

_INF = float("inf")


def hopcroft_karp(graph: BipartiteGraph) -> Tuple[List[int], List[int]]:
    """Compute a maximum matching of ``graph``.

    Returns ``(match_left, match_right)`` where ``match_left[i]`` is the
    right id matched to left vertex ``i`` (or ``-1``) and ``match_right[j]``
    is the left vertex matched to right id ``j`` (or ``-1``).
    """
    n_left = graph.n_left
    n_right = graph.n_right
    match_left = [-1] * n_left
    match_right = [-1] * n_right

    # Greedy warm start: match each left vertex to its first free neighbor.
    for u in range(n_left):
        for v in graph.neighbors(u):
            if match_right[v] == -1:
                match_left[u] = v
                match_right[v] = u
                break

    dist: List[float] = [0.0] * n_left

    def bfs() -> bool:
        queue: deque = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                w = match_right[v]
                if w == -1:
                    found_free = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_free

    def dfs(u: int) -> bool:
        for v in graph.neighbors(u):
            w = match_right[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] == -1:
                dfs(u)

    return match_left, match_right


def maximum_matching(graph: BipartiteGraph) -> Dict[int, Hashable]:
    """Maximum matching as a ``{left vertex: right label}`` dictionary."""
    match_left, _match_right = hopcroft_karp(graph)
    return graph.matching_to_labels(match_left)
