"""Incremental augmenting-path extension of partial matchings.

Lemma 3 of the paper extends a partial schedule (a partial matching between
jobs and time slots) one job at a time: whenever a feasible complete schedule
exists, an augmenting path adds exactly one new execution time, increasing
the number of gaps by at most one.  :func:`extend_matching` implements that
procedure directly on a :class:`~repro.matching.bipartite.BipartiteGraph`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .bipartite import BipartiteGraph

__all__ = ["augmenting_path", "extend_matching"]


def augmenting_path(
    graph: BipartiteGraph,
    match_left: List[int],
    match_right: List[int],
    start: int,
) -> bool:
    """Search for an augmenting path from unmatched left vertex ``start``.

    On success the matching arrays are updated in place (the path is
    "reversed") and ``True`` is returned; on failure the arrays are left
    untouched and ``False`` is returned.  The search is an iterative DFS so
    deep paths cannot exhaust the Python recursion limit.
    """
    if match_left[start] != -1:
        raise ValueError(f"left vertex {start} is already matched")

    # Iterative DFS over alternating paths.
    parent_right: Dict[int, int] = {}  # right id -> left vertex we came from
    visited_left: Set[int] = {start}
    stack: List[int] = [start]
    end_right: Optional[int] = None

    while stack and end_right is None:
        u = stack.pop()
        for v in graph.neighbors(u):
            if v in parent_right:
                continue
            parent_right[v] = u
            w = match_right[v]
            if w == -1:
                end_right = v
                break
            if w not in visited_left:
                visited_left.add(w)
                stack.append(w)

    if end_right is None:
        return False

    # Unwind the alternating path, flipping matched/unmatched edges.
    v = end_right
    while True:
        u = parent_right[v]
        previous = match_left[u]
        match_left[u] = v
        match_right[v] = u
        if previous == -1 and u == start:
            break
        v = previous
    return True


def extend_matching(
    graph: BipartiteGraph,
    partial: Dict[int, Hashable],
    targets: Optional[Sequence[int]] = None,
) -> Dict[int, Hashable]:
    """Extend a partial matching to cover ``targets`` (default: all left vertices).

    ``partial`` maps left vertices to right labels that are already matched.
    The function augments one left vertex at a time, mirroring Lemma 3 of the
    paper: each successful augmentation adds exactly one newly used right
    label (time slot).  Left vertices that cannot be matched are simply left
    out of the result; callers that require completeness should compare the
    result size with the target count.
    """
    match_left = [-1] * graph.n_left
    match_right = [-1] * graph.n_right
    for left, label in partial.items():
        rid = graph.right_id_of(label)
        if rid is None:
            raise ValueError(f"label {label!r} of partial matching is not in the graph")
        if match_right[rid] != -1:
            raise ValueError(f"label {label!r} matched twice in partial matching")
        if match_left[left] != -1:
            raise ValueError(f"left vertex {left} matched twice in partial matching")
        match_left[left] = rid
        match_right[rid] = left

    if targets is None:
        targets = range(graph.n_left)
    for left in targets:
        if match_left[left] == -1:
            augmenting_path(graph, match_left, match_right, left)

    return graph.matching_to_labels(match_left)
