"""Bipartite matching substrate.

The scheduling problems of the paper reduce feasibility questions to
bipartite matching between jobs and time slots (or (processor, time) slots).
This package provides:

* :class:`~repro.matching.bipartite.BipartiteGraph` — a small adjacency-list
  bipartite graph.
* :func:`~repro.matching.hopcroft_karp.hopcroft_karp` — maximum-cardinality
  matching in O(E sqrt(V)).
* :func:`~repro.matching.augment.extend_matching` — incremental augmenting
  path extension used by Lemma 3 of the paper.
* :func:`~repro.matching.hall.hall_violation` — a Hall-condition certificate
  of infeasibility for one-interval instances.
"""

from .bipartite import BipartiteGraph
from .hopcroft_karp import hopcroft_karp, maximum_matching
from .augment import augmenting_path, extend_matching
from .hall import hall_violation

__all__ = [
    "BipartiteGraph",
    "hopcroft_karp",
    "maximum_matching",
    "augmenting_path",
    "extend_matching",
    "hall_violation",
]
