"""A small adjacency-list bipartite graph used by all matching routines.

Left vertices are integers ``0..n_left-1`` (in this library: job indices) and
right vertices are arbitrary hashable objects (time slots or
(processor, time) pairs).  Right vertices are interned to contiguous integer
ids so that the matching algorithms can run on plain lists.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """Adjacency-list bipartite graph with hashable right-side labels.

    Parameters
    ----------
    n_left:
        Number of left vertices, labelled ``0..n_left-1``.
    """

    def __init__(self, n_left: int) -> None:
        if n_left < 0:
            raise ValueError(f"n_left must be non-negative, got {n_left}")
        self._n_left = n_left
        self._adj: List[List[int]] = [[] for _ in range(n_left)]
        self._right_ids: Dict[Hashable, int] = {}
        self._right_labels: List[Hashable] = []

    # -- construction ----------------------------------------------------------
    def right_id(self, label: Hashable) -> int:
        """Intern a right-side label, returning its integer id."""
        rid = self._right_ids.get(label)
        if rid is None:
            rid = len(self._right_labels)
            self._right_ids[label] = rid
            self._right_labels.append(label)
        return rid

    def add_edge(self, left: int, right_label: Hashable) -> None:
        """Add an edge between left vertex ``left`` and right label ``right_label``."""
        if not 0 <= left < self._n_left:
            raise ValueError(f"left vertex {left} out of range [0, {self._n_left})")
        rid = self.right_id(right_label)
        self._adj[left].append(rid)

    def add_edges(self, left: int, right_labels: Iterable[Hashable]) -> None:
        """Add edges from ``left`` to every label in ``right_labels``."""
        for label in right_labels:
            self.add_edge(left, label)

    # -- accessors ---------------------------------------------------------------
    @property
    def n_left(self) -> int:
        """Number of left vertices."""
        return self._n_left

    @property
    def n_right(self) -> int:
        """Number of (interned) right vertices."""
        return len(self._right_labels)

    @property
    def num_edges(self) -> int:
        """Total number of edges."""
        return sum(len(neighbors) for neighbors in self._adj)

    def neighbors(self, left: int) -> Sequence[int]:
        """Right-vertex ids adjacent to ``left``."""
        return self._adj[left]

    def right_label(self, right_id: int) -> Hashable:
        """The original label of right vertex ``right_id``."""
        return self._right_labels[right_id]

    def right_labels(self) -> List[Hashable]:
        """All right labels in id order."""
        return list(self._right_labels)

    def has_right(self, label: Hashable) -> bool:
        """True when ``label`` has been interned as a right vertex."""
        return label in self._right_ids

    def right_id_of(self, label: Hashable) -> Optional[int]:
        """The id of ``label`` if present, else ``None`` (does not intern)."""
        return self._right_ids.get(label)

    # -- conversions --------------------------------------------------------------
    def matching_to_labels(self, match_left: Sequence[int]) -> Dict[int, Hashable]:
        """Convert a left-indexed matching array into a label dictionary.

        ``match_left[i]`` is the right id matched to left vertex ``i`` or -1.
        """
        result: Dict[int, Hashable] = {}
        for left, rid in enumerate(match_left):
            if rid is not None and rid >= 0:
                result[left] = self._right_labels[rid]
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(n_left={self.n_left}, n_right={self.n_right}, "
            f"edges={self.num_edges})"
        )
