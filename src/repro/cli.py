"""Command-line interface: ``python -m repro`` or the ``repro-sched`` script.

Sub-commands
------------
``solve``
    The unified façade entry point: read an instance (or a full problem)
    from a JSON file, pick a solver from the registry, print the result as
    text or JSON.
``list-solvers``
    Show every registered solver with its capabilities.
``solve-gap``
    Solve a one-interval multiprocessor instance given as ``release,deadline``
    pairs and print the optimal schedule and gap count (Theorem 1).
``solve-power``
    Same input plus ``--alpha``; prints the optimal power schedule (Theorem 2).
``approx-power``
    Multi-interval instance given as semicolon-separated time lists; runs the
    Theorem 3 approximation.
``throughput``
    Multi-interval instance plus ``--max-gaps``; runs the Theorem 11 greedy.
``experiment``
    Regenerate one experiment table (or all of them) from DESIGN.md.
``verify``
    Run the differential verification harness on one JSON instance/problem:
    every capable registered solver, independent certificates, consistency
    matrix, metamorphic relations.
``fuzz``
    Seedable differential fuzzing over generated instances
    (``--seed --n --objective``), with a replayable JSON failure corpus
    (``--corpus`` to save, ``--replay`` to re-run saved failures) and
    ``--profile`` to print the interval-DP engine's aggregated pruning and
    memoization statistics.
``bench``
    Benchmark the interval-DP engines (v2 bottom-up vs v1 trampoline) and
    the frozen pre-engine seed solvers over the generator families and
    write a schema-validated JSON report (``BENCH_dp.json``); ``--quick``
    is the CI smoke matrix, ``--check`` validates an existing report's
    schema without re-running anything, ``--compare PATH`` gates the
    fresh run against a committed report — or, when PATH is a
    ``HISTORY.jsonl`` file, against its latest entry — (exit 1 on a
    >1.25x regression of any shared case above the noise floor),
    ``--median-window K`` steadies the history gate with per-case rolling
    medians over the last K entries, and ``--append HISTORY.jsonl``
    records the run as one timestamped history line for trend tracking.
``cache``
    Inspect (``cache stats``) or empty (``cache clear``) the on-disk tier
    of the canonical solve cache.
``serve``
    Run the scheduling service: an HTTP/JSON API over a persistent SQLite
    job queue, drained by an asyncio scheduler through the configured
    execution backend (see :mod:`repro.service` and ``docs/service.md``).
    SIGTERM/SIGINT drain gracefully; interrupted jobs are re-enqueued on
    the next start.
``submit`` / ``status`` / ``result`` / ``cancel``
    Client verbs against a running service (``--url``): submit a JSON
    instance/problem (``--wait`` blocks for the result envelope), poll a
    job's status, fetch its result, or cancel it.
``stats``
    Print the operational stats payload as JSON — cache tiers, aggregated
    engine counters, task totals; with ``--url`` the live payload of a
    running service (identical shape to ``GET /v1/stats``).

Two top-level flags configure the :mod:`repro.runtime` execution layer
for whichever sub-command follows: ``--backend serial|thread|process``
selects the execution backend (equivalently ``REPRO_BACKEND``), and
``--cache-dir PATH`` enables the persistent solve-cache tier
(equivalently ``REPRO_CACHE_DIR``).

All solving goes through :mod:`repro.api`; this module never imports a
solver implementation directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from . import __version__
from .analysis.experiments import run_all_experiments, run_experiment
from .analysis.reporting import format_table, render_tables
from .api import (
    MultiIntervalInstance,
    MultiprocessorInstance,
    Problem,
    ReproError,
    SolveResult,
    from_json,
    list_solvers,
    solve,
    to_json,
)

__all__ = ["main", "build_parser"]


def _parse_pair(spec: str) -> Tuple[int, int]:
    """``type=`` callback turning ``release,deadline`` into an int pair.

    Raising :class:`argparse.ArgumentTypeError` from inside a ``type=``
    callback makes argparse print a usage error and exit with code 2
    instead of letting a traceback escape.
    """
    parts = spec.split(",")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"job {spec!r} is not of the form release,deadline"
        )
    try:
        return (int(parts[0]), int(parts[1]))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"job {spec!r} must contain two integers, as in '0,5'"
        ) from None


def _parse_time_lists(spec: str) -> List[List[int]]:
    jobs = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        jobs.append([int(token) for token in chunk.replace(",", " ").split()])
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Gap and power scheduling (SPAA 2007 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    from .runtime import available_backends

    parser.add_argument(
        "--backend",
        choices=available_backends(),
        help="execution backend for batch work in the sub-command "
        "(default: REPRO_BACKEND, else serial)",
    )
    parser.add_argument(
        "--cache-dir",
        help="enable the persistent on-disk solve-cache tier rooted here "
        "(default: REPRO_CACHE_DIR, else disabled)",
    )
    from .core.interval_dp import ENGINE_CHOICES

    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        help="DP evaluator for the sub-command: v3 vectorized (numpy), "
        "v2 scalar, v1 trampoline (default: auto — v3 when numpy is "
        "installed, else v2)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    unified = sub.add_parser(
        "solve", help="solve a JSON instance/problem through the repro.api façade"
    )
    unified.add_argument(
        "--input",
        "-i",
        required=True,
        help="path to a JSON instance or problem ('-' reads stdin)",
    )
    unified.add_argument(
        "--objective",
        choices=["gaps", "power", "throughput"],
        help="objective (required unless the input file is a full problem)",
    )
    unified.add_argument(
        "--solver",
        default="auto",
        help="registry solver name, or 'auto' for capability-based dispatch",
    )
    unified.add_argument("--alpha", type=float, help="wake-up cost (power objective)")
    unified.add_argument(
        "--max-gaps", type=int, help="gap budget (throughput objective)"
    )
    unified.add_argument(
        "--budget",
        type=float,
        metavar="SECONDS",
        help="race the solver portfolio under this wall-clock budget and "
        "return the best feasible answer with a certified optimality gap "
        "(requires --solver auto)",
    )
    unified.add_argument(
        "--json", action="store_true", help="print the SolveResult as JSON"
    )

    sub.add_parser("list-solvers", help="list the registered façade solvers")

    gap = sub.add_parser("solve-gap", help="exact multiprocessor gap scheduling")
    gap.add_argument(
        "jobs", nargs="+", type=_parse_pair, help="jobs as release,deadline pairs"
    )
    gap.add_argument("--processors", "-p", type=int, default=1)

    power = sub.add_parser("solve-power", help="exact multiprocessor power minimization")
    power.add_argument(
        "jobs", nargs="+", type=_parse_pair, help="jobs as release,deadline pairs"
    )
    power.add_argument("--processors", "-p", type=int, default=1)
    power.add_argument("--alpha", type=float, required=True)

    approx = sub.add_parser("approx-power", help="Theorem 3 approximation")
    approx.add_argument(
        "jobs", help="semicolon-separated allowed-time lists, e.g. '0 1;4 5;0 4'"
    )
    approx.add_argument("--alpha", type=float, required=True)

    throughput = sub.add_parser("throughput", help="Theorem 11 greedy throughput")
    throughput.add_argument("jobs", help="semicolon-separated allowed-time lists")
    throughput.add_argument("--max-gaps", type=int, required=True)

    experiment = sub.add_parser("experiment", help="regenerate experiment tables")
    experiment.add_argument(
        "which", nargs="?", default="all", help="experiment id (E1..E12) or 'all'"
    )
    experiment.add_argument("--scale", choices=["smoke", "paper"], default="smoke")

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk solve-cache tier"
    )
    cache.add_argument(
        "action", choices=["stats", "clear"], help="what to do with the cache"
    )

    verify = sub.add_parser(
        "verify", help="differentially verify a JSON instance/problem"
    )
    verify.add_argument(
        "--input",
        "-i",
        required=True,
        help="path to a JSON instance or problem ('-' reads stdin)",
    )
    verify.add_argument(
        "--objective",
        choices=["gaps", "power", "throughput"],
        help="objective (required unless the input file is a full problem)",
    )
    verify.add_argument("--alpha", type=float, help="wake-up cost (power objective)")
    verify.add_argument(
        "--max-gaps", type=int, help="gap budget (throughput objective)"
    )
    verify.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic relation checks",
    )

    fuzz_cmd = sub.add_parser(
        "fuzz", help="differential fuzzing across all registered solvers"
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, help="master RNG seed (default 0; not with --replay)"
    )
    fuzz_cmd.add_argument(
        "--n", type=int, help="number of fuzz cases (default 100; not with --replay)"
    )
    fuzz_cmd.add_argument(
        "--objective",
        action="append",
        choices=["gaps", "power", "throughput"],
        help="objective(s) to fuzz (repeatable; default: all three)",
    )
    fuzz_cmd.add_argument(
        "--corpus", help="write failing cases to this JSON corpus file"
    )
    fuzz_cmd.add_argument(
        "--replay", help="replay a saved JSON failure corpus instead of generating"
    )
    fuzz_cmd.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic relation checks",
    )
    fuzz_cmd.add_argument(
        "--profile",
        action="store_true",
        help="print aggregated interval-DP engine pruning/memo statistics",
    )
    fuzz_cmd.add_argument(
        "--portfolio",
        action="store_true",
        help="differentially fuzz the budget-raced portfolio against the "
        "exact DPs on small seeded instances (honors --seed/--n only)",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark the interval-DP engines against each other and the seed solvers",
    )
    bench.add_argument(
        "--quick", action="store_true", help="reduced CI smoke matrix"
    )
    bench.add_argument(
        "--out",
        help="report path (default BENCH_dp.json; BENCH_smoke.json with --quick, "
        "so a quick run never overwrites the committed full-matrix report)",
    )
    bench.add_argument("--repeats", type=int, help="timed runs per case (default 3)")
    bench.add_argument("--warmup", type=int, help="untimed warmup runs (default 1)")
    bench.add_argument("--seed", type=int, default=0, help="instance generator seed")
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the frozen seed-solver comparison",
    )
    bench.add_argument(
        "--no-v1",
        action="store_true",
        help="skip the v1 trampoline-engine comparison",
    )
    bench.add_argument(
        "--no-v3",
        action="store_true",
        help="skip the v3 vectorized-engine comparison (it is also skipped "
        "automatically, with null columns, when numpy is unavailable)",
    )
    bench.add_argument(
        "--check",
        metavar="PATH",
        help="validate an existing report's schema and exit (runs nothing)",
    )
    bench.add_argument(
        "--compare",
        metavar="PATH",
        help="after running, gate the fresh report against a committed report "
        "and exit 1 when any shared case's engine median regresses beyond "
        "the threshold",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        help="regression factor for --compare (default 1.25)",
    )
    bench.add_argument(
        "--append",
        metavar="HISTORY",
        help="append the run to this JSONL history file (one timestamped "
        "line per run; --compare accepts the same file and gates against "
        "its latest entry)",
    )
    bench.add_argument(
        "--median-window",
        type=int,
        metavar="K",
        help="with --compare HISTORY: gate against per-case rolling medians "
        "of the last K same-schema history entries instead of the single "
        "latest entry (steadies the gate against one-off fast runs)",
    )
    bench.add_argument(
        "--filter",
        metavar="REGEX",
        help="run only cases whose name matches this regular expression "
        "(error when nothing matches)",
    )
    bench.add_argument(
        "--portfolio",
        action="store_true",
        help="also run the budget-raced large-n portfolio cases (reported, "
        "never gated by --compare)",
    )
    bench.add_argument(
        "--stream",
        action="store_true",
        help="run the solve_stream throughput microbenchmark instead of the "
        "interval-DP matrix (own schema, default output BENCH_stream.json; "
        "--append grows a BENCH_stream.jsonl history and --compare gates "
        "jobs/sec against its rolling median)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the scheduling service (HTTP API + persistent job queue)",
    )
    serve.add_argument(
        "--db",
        default="service_jobs.db",
        help="SQLite job-store path (default service_jobs.db); interrupted "
        "jobs found here are re-enqueued on startup",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8737, help="bind port (0 for ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, help="worker count for the execution backend"
    )
    serve.add_argument(
        "--window",
        type=int,
        default=4,
        help="max jobs claimed/in flight per scheduling round (default 4)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        help="idle-queue poll interval in seconds (default 0.05)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="sustained submissions/s per client (0 disables; default 50)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=100,
        help="rate-limit burst capacity per client (default 100)",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=1024,
        help="max outstanding jobs per client (0 disables; default 1024)",
    )

    def _client_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8737"
        )
        return p

    submit = _client_parser("submit", "submit a job to a running service")
    submit.add_argument(
        "--input",
        "-i",
        required=True,
        help="path to a JSON instance or problem ('-' reads stdin)",
    )
    submit.add_argument(
        "--objective",
        choices=["gaps", "power", "throughput"],
        help="objective (required unless the input file is a full problem)",
    )
    submit.add_argument("--alpha", type=float, help="wake-up cost (power objective)")
    submit.add_argument(
        "--max-gaps", type=int, help="gap budget (throughput objective)"
    )
    submit.add_argument(
        "--solver", help="registry solver name (default: the service's default)"
    )
    submit.add_argument(
        "--client", default="cli", help="client id for admission control"
    )
    submit.add_argument(
        "--priority", type=int, default=0, help="higher runs first (default 0)"
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print the result envelope",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="--wait timeout in seconds (default 60)",
    )

    status = _client_parser("status", "show a job's status")
    status.add_argument("job_id")

    result_cmd = _client_parser("result", "fetch (await) a job's result envelope")
    result_cmd.add_argument("job_id")
    result_cmd.add_argument(
        "--no-wait",
        action="store_true",
        help="fail instead of polling when the job is still pending",
    )
    result_cmd.add_argument(
        "--timeout", type=float, default=60.0, help="poll timeout (default 60)"
    )

    cancel = _client_parser("cancel", "cancel a queued or running job")
    cancel.add_argument("job_id")

    stats = sub.add_parser(
        "stats",
        help="print operational stats (cache tiers, engine counters) as JSON",
    )
    stats.add_argument(
        "--url",
        help="fetch a running service's /v1/stats instead of local counters",
    )

    return parser


def _load_problem(args: argparse.Namespace, parser: argparse.ArgumentParser) -> Problem:
    """Build a Problem from the ``solve`` subcommand's --input file and flags."""
    if args.input == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            parser.error(f"cannot read --input file: {exc}")
    loaded = from_json(text)
    if isinstance(loaded, Problem):
        conflicting = [
            flag
            for flag, value in [
                ("--objective", args.objective),
                ("--alpha", args.alpha),
                ("--max-gaps", args.max_gaps),
            ]
            if value is not None
        ]
        if conflicting:
            parser.error(
                f"--input holds a full problem; {', '.join(conflicting)} "
                "would be ignored — drop the flag(s) or pass a bare instance"
            )
        return loaded
    if args.objective is None:
        parser.error(
            "--objective is required when --input holds a bare instance "
            "(or store a full problem in the file)"
        )
    return Problem(
        objective=args.objective,
        instance=loaded,
        alpha=args.alpha,
        max_gaps=args.max_gaps,
    )


def _print_schedule_rows(schedule) -> None:
    """Print a schedule's as_table rows (single- or multiprocessor shape)."""
    for row in schedule.as_table():
        if len(row) == 4:
            job_idx, name, proc, t = row
            print(f"  t={t:>4}  processor {proc}  job {name} (#{job_idx})")
        else:
            job_idx, name, t = row
            print(f"  t={t:>4}  job {name} (#{job_idx})")


def _print_result(result: SolveResult) -> None:
    """Human-readable rendering of a SolveResult."""
    print(
        f"status: {result.status}  objective: {result.objective}  "
        f"solver: {result.solver}"
    )
    if not result.feasible:
        return
    value = result.value
    value_text = f"{value:g}" if isinstance(value, float) else str(value)
    print(f"value: {value_text}")
    if result.guarantee_factor is not None:
        print(f"guarantee factor: {result.guarantee_factor:g}")
    gap = (result.extra or {}).get("optimality_gap")
    if gap is not None:
        ratio = gap.get("ratio")
        ratio_text = "unbounded" if ratio is None else f"{ratio:g}"
        print(
            f"certified gap: lower {gap['lower']:g}  upper {gap['upper']:g}  "
            f"ratio {ratio_text}"
        )
    if result.schedule is not None:
        _print_schedule_rows(result.schedule)


def _client_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The service-client verbs: submit / status / result / cancel / stats.

    Service-side denials (429 quota, 410 cancelled, 404 unknown) exit 1
    with the structured payload on stderr; local usage mistakes stay
    argparse errors (exit 2).
    """
    from .service import ServiceClient, ServiceError

    if args.command == "stats":
        if args.url is None:
            from .service.stats import operational_stats

            payload = operational_stats()
        else:
            try:
                payload = ServiceClient(args.url).stats()
            except ServiceError as exc:
                print(f"stats failed: {exc}", file=sys.stderr)
                return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    client = ServiceClient(args.url, client_id=getattr(args, "client", "cli"))
    try:
        if args.command == "submit":
            try:
                problem = _load_problem(args, parser)
            except (ReproError, ValueError) as exc:
                parser.error(str(exc))
            job_id = client.submit(
                problem, priority=args.priority, solver=args.solver
            )
            if not args.wait:
                print(job_id)
                return 0
            result = client.result(job_id, timeout=args.timeout)
            print(to_json(result, indent=2))
            return 0
        if args.command == "status":
            print(json.dumps(client.status(args.job_id), indent=2, sort_keys=True))
            return 0
        if args.command == "result":
            result = client.result(
                args.job_id, wait=not args.no_wait, timeout=args.timeout
            )
            print(to_json(result, indent=2))
            return 0
        if args.command == "cancel":
            print(json.dumps(client.cancel(args.job_id), indent=2, sort_keys=True))
            return 0
    except ServiceError as exc:
        print(f"{args.command} failed: {exc}", file=sys.stderr)
        if exc.payload:
            print(json.dumps(exc.payload, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    parser.error(f"unknown client command {args.command!r}")  # pragma: no cover
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # `repro-sched ... | head` closes stdout mid-print; exit with the
        # conventional SIGPIPE code instead of a traceback.  Re-pointing
        # stdout at devnull stops the interpreter's shutdown flush from
        # raising the same error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


def _dispatch(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from .runtime import configure_backend, configure_disk_cache, get_disk_cache

    if args.backend is not None:
        configure_backend(args.backend)
    if args.engine is not None:
        from .core.exceptions import EngineConfigurationError
        from .core.interval_dp import set_default_engine

        try:
            set_default_engine(args.engine)
        except EngineConfigurationError as exc:
            parser.error(str(exc))
    if args.cache_dir is not None:
        try:
            configure_disk_cache(args.cache_dir)
        except OSError as exc:
            parser.error(f"cannot use --cache-dir {args.cache_dir!r}: {exc}")

    if args.command == "cache":
        disk = get_disk_cache()
        if disk is None:
            parser.error(
                "no cache directory configured; pass --cache-dir PATH (before "
                "the sub-command) or set REPRO_CACHE_DIR"
            )
        if args.action == "clear":
            removed = disk.clear()
            print(f"removed {removed} entries from {disk.root}")
            return 0
        stats = disk.stats()
        print(f"path:          {stats['path']}")
        print(f"version:       {stats['version']}")
        print(f"entries:       {stats['entries']}")
        print(f"stale entries: {stats['stale_entries']}")
        print(f"bytes:         {stats['bytes']}")
        return 0

    if args.command == "serve":
        from .service import ServiceServer

        try:
            server = ServiceServer(
                args.db,
                host=args.host,
                port=args.port,
                backend=args.backend,
                workers=args.workers,
                window=args.window,
                poll_interval=args.poll_interval,
                rate=args.rate,
                burst=args.burst,
                max_queued=args.max_queued,
            )
        except (ValueError, OSError) as exc:
            parser.error(str(exc))
        try:
            # The announce line is parsed by supervisors (and the tests), so
            # it must not sit in a block buffer when stdout is a pipe.
            server.run_forever(announce=lambda line: print(line, flush=True))
        except OSError as exc:
            parser.error(f"cannot serve on {args.host}:{args.port}: {exc}")
        return 0

    if args.command in ("submit", "status", "result", "cancel", "stats"):
        return _client_command(args, parser)

    if args.command == "solve":
        # Bad input files, malformed problems and unknown solver names must
        # surface as usage errors (exit 2), not tracebacks.
        if args.budget is not None and args.budget <= 0:
            parser.error("--budget must be positive")
        try:
            problem = _load_problem(args, parser)
            result = solve(problem, solver=args.solver, budget=args.budget)
        except (ReproError, ValueError) as exc:
            parser.error(str(exc))
        if args.json:
            print(to_json(result, indent=2))
        else:
            _print_result(result)
        return 0 if result.feasible else 1

    if args.command == "list-solvers":
        for spec in list_solvers():
            types = "/".join(t.__name__ for t in spec.instance_types)
            print(f"{spec.name:<24} {spec.objective:<11} {spec.kind:<12} {types}")
            if spec.description:
                print(f"{'':<24} {spec.description}")
        return 0

    if args.command == "solve-gap":
        instance = MultiprocessorInstance.from_pairs(
            args.jobs, num_processors=args.processors
        )
        result = solve(Problem(objective="gaps", instance=instance))
        if not result.feasible:
            print("infeasible")
            return 1
        print(f"optimal gaps: {result.value}")
        _print_schedule_rows(result.require_schedule())
        return 0

    if args.command == "solve-power":
        instance = MultiprocessorInstance.from_pairs(
            args.jobs, num_processors=args.processors
        )
        result = solve(Problem(objective="power", instance=instance, alpha=args.alpha))
        if not result.feasible:
            print("infeasible")
            return 1
        print(f"optimal power: {result.value:g} (alpha={args.alpha:g})")
        _print_schedule_rows(result.require_schedule())
        return 0

    if args.command == "approx-power":
        instance = MultiIntervalInstance.from_time_lists(_parse_time_lists(args.jobs))
        result = solve(
            Problem(objective="power", instance=instance, alpha=args.alpha),
            solver="power-approx",
        )
        if not result.feasible:
            print("infeasible")
            return 1
        print(
            f"power: {result.value:g}  gaps: {result.extra['num_gaps']}  "
            f"guarantee factor: {result.guarantee_factor:g}"
        )
        _print_schedule_rows(result.require_schedule())
        return 0

    if args.command == "throughput":
        instance = MultiIntervalInstance.from_time_lists(_parse_time_lists(args.jobs))
        result = solve(
            Problem(objective="throughput", instance=instance, max_gaps=args.max_gaps)
        )
        intervals = result.extra["working_intervals"]
        print(
            f"scheduled {result.value}/{instance.num_jobs} jobs "
            f"in {len(intervals)} working intervals"
        )
        for interval in intervals:
            print(
                f"  interval [{interval['start']}, {interval['end']}] "
                f"jobs {interval['jobs']}"
            )
        return 0

    if args.command == "verify":
        from .verify import metamorphic_issues, run_differential

        try:
            problem = _load_problem(args, parser)
        except (ReproError, ValueError) as exc:
            parser.error(str(exc))
        report = run_differential(problem)
        for run in report.runs:
            if run.error is not None:
                print(f"{run.name:<24} ERROR  {run.error}")
                continue
            cert = "certified" if run.certificate and run.certificate.ok else "FAILED"
            print(
                f"{run.name:<24} {run.result.status:<12} "
                f"value={run.result.value}  {cert}"
            )
        for name in report.skipped:
            print(f"{name:<24} skipped (instance too large to enumerate)")
        issues = list(report.issues)
        if not args.no_metamorphic:
            # Same checks as the fuzz path: base result reused from the
            # differential runs, processor relabeling included.
            issues.extend(metamorphic_issues(problem, report, meta_seed=0))
        if issues:
            print("ISSUES:")
            for issue in issues:
                print(f"  - {issue}")
            return 1
        print("consistency matrix: OK")
        return 0

    if args.command == "fuzz":
        from .verify import fuzz as run_fuzz
        from .verify import replay as run_replay

        if args.portfolio:
            conflicting = [
                flag
                for flag, value in [
                    ("--objective", args.objective),
                    ("--corpus", args.corpus),
                    ("--replay", args.replay),
                ]
                if value is not None
            ]
            if args.profile or args.no_metamorphic:
                conflicting.append("--profile/--no-metamorphic")
            if conflicting:
                parser.error(
                    f"--portfolio honors --seed/--n only; drop "
                    f"{', '.join(conflicting)}"
                )
            from .verify import portfolio_fuzz

            report = portfolio_fuzz(
                seed=args.seed if args.seed is not None else 0,
                n=args.n if args.n is not None else 100,
            )
            print(report.summary())
            for failure in report.failures:
                print(
                    f"  case {failure.index} [{failure.objective}"
                    f"/alpha={failure.alpha}] pairs={failure.pairs}:"
                )
                for issue in failure.issues:
                    print(f"    - {issue}")
            return 0 if report.ok else 1

        if args.replay is not None:
            conflicting = [
                flag
                for flag, value in [
                    ("--seed", args.seed),
                    ("--n", args.n),
                    ("--objective", args.objective),
                ]
                if value is not None
            ]
            if conflicting:
                parser.error(
                    f"--replay re-runs the saved corpus; {', '.join(conflicting)} "
                    "would be ignored — drop the flag(s) or fuzz without --replay"
                )
            try:
                report = run_replay(args.replay, metamorphic=not args.no_metamorphic)
            except (OSError, ValueError, KeyError) as exc:
                parser.error(f"cannot replay corpus {args.replay!r}: {exc}")
            if args.corpus:
                # Persist the still-failing subset, letting users shrink a
                # corpus as bugs get fixed.
                from .verify import save_corpus

                save_corpus(report.failures, args.corpus)
        else:
            objectives = (
                tuple(dict.fromkeys(args.objective))
                if args.objective
                else ("gaps", "power", "throughput")
            )
            report = run_fuzz(
                seed=args.seed if args.seed is not None else 0,
                n=args.n if args.n is not None else 100,
                objectives=objectives,
                metamorphic=not args.no_metamorphic,
                corpus_path=args.corpus,
            )
        print(report.summary())
        if args.profile:
            for line in report.engine_profile():
                print(line)
        for failure in report.failures:
            print(f"  case {failure.index} [{failure.kind}/{failure.objective}"
                  f"/{failure.generator}]:")
            for issue in failure.issues:
                print(f"    - {issue}")
        if args.corpus:
            print(f"corpus written to {args.corpus}")
        return 0 if report.ok else 1

    if args.command == "bench":
        from .perf import (
            DEFAULT_REGRESSION_THRESHOLD,
            BenchSchemaError,
            append_history,
            compare_reports,
            load_comparison_report,
            rolling_median_reference,
            run_bench,
            validate_report_file,
            write_report,
        )

        if args.stream:
            from .perf import (
                append_stream_history,
                compare_stream_history,
                run_stream_bench,
                write_stream_report,
            )
            from .perf.streambench import DEFAULT_STREAM_THRESHOLD

            conflicting = [
                flag
                for flag, value in [
                    ("--warmup", args.warmup),
                    ("--check", args.check),
                    ("--filter", args.filter),
                ]
                if value is not None
            ]
            if args.quick or args.no_baseline or args.no_v1 or args.no_v3:
                conflicting.append("--quick/--no-*")
            if args.portfolio:
                conflicting.append("--portfolio")
            if conflicting:
                parser.error(
                    f"--stream honors --out/--repeats/--seed/--append/"
                    f"--compare/--median-window/--threshold only; drop "
                    f"{', '.join(conflicting)}"
                )
            if args.threshold is not None and args.compare is None:
                parser.error("--threshold is only meaningful with --compare")
            if args.threshold is not None and args.threshold <= 1.0:
                parser.error("--threshold must be > 1.0 for --stream")
            if args.median_window is not None and args.compare is None:
                parser.error("--median-window is only meaningful with --compare")
            if args.median_window is not None and args.median_window < 1:
                parser.error("--median-window must be >= 1")
            stream_report = run_stream_bench(seed=args.seed, repeats=args.repeats)
            for entry in stream_report["backends"]:
                print(
                    f"{entry['backend']:<12} "
                    f"{entry['problems_per_second']:>10.0f} problems/s  "
                    f"{entry['jobs_per_second']:>10.0f} jobs/s"
                )
            out = args.out or "BENCH_stream.json"
            write_stream_report(stream_report, out)
            print(f"stream report written to {out}")
            if args.compare is not None:
                window = args.median_window or 5
                threshold = (
                    args.threshold
                    if args.threshold is not None
                    else DEFAULT_STREAM_THRESHOLD
                )
                try:
                    regressions, samples = compare_stream_history(
                        stream_report, args.compare, window, threshold
                    )
                except OSError as exc:
                    parser.error(f"cannot read history {args.compare!r}: {exc}")
                except BenchSchemaError as exc:
                    print(f"stream history error: {exc}")
                    return 1
                if regressions:
                    print(
                        f"stream throughput regression vs {args.compare} "
                        f"(rolling median, window {window}):"
                    )
                    for line in regressions:
                        print(f"  - {line}")
                    return 1
                print(
                    f"stream throughput gate passed vs {args.compare} "
                    f"({samples} historical sample(s), window {window}, "
                    f"threshold {threshold:g}x)"
                )
            if args.append is not None:
                append_stream_history(stream_report, args.append)
                print(f"stream history appended to {args.append}")
            return 0

        if args.check is not None:
            conflicting = [
                flag
                for flag, value in [
                    ("--repeats", args.repeats),
                    ("--warmup", args.warmup),
                    ("--out", args.out),
                    ("--compare", args.compare),
                    ("--threshold", args.threshold),
                    ("--append", args.append),
                    ("--median-window", args.median_window),
                    ("--filter", args.filter),
                ]
                if value is not None
            ]
            if (
                args.quick
                or args.no_baseline
                or args.no_v1
                or args.no_v3
                or args.portfolio
                or args.seed != 0
                or conflicting
            ):
                parser.error(
                    "--check only validates an existing report; drop the other flags"
                )
            try:
                data = validate_report_file(args.check)
            except OSError as exc:
                parser.error(f"cannot read report {args.check!r}: {exc}")
            except (BenchSchemaError, ValueError) as exc:
                print(f"schema drift in {args.check}: {exc}")
                return 1
            print(
                f"{args.check}: schema ok "
                f"({len(data['cases'])} cases, quick={data['quick']})"
            )
            return 0

        if args.threshold is not None and args.compare is None:
            parser.error("--threshold is only meaningful with --compare")
        if args.threshold is not None and args.threshold <= 0:
            parser.error("--threshold must be positive")
        if args.median_window is not None and args.compare is None:
            parser.error("--median-window is only meaningful with --compare")
        if args.median_window is not None and args.median_window < 1:
            parser.error("--median-window must be >= 1")

        def _print_case(record) -> None:
            engine_ms = record["engine"]["median"] * 1000.0
            if record.get("portfolio") is not None:
                race = record["portfolio"]
                ratio = race["ratio"]
                ratio_text = "unbounded" if ratio is None else f"{ratio:.3f}"
                print(
                    f"{record['name']:<28} raced {engine_ms:>9.2f} ms "
                    f"(budget {race['budget']:g}s)   winner {race['winner']}   "
                    f"gap ratio {ratio_text}"
                )
                return
            line = f"{record['name']:<28} v2 {engine_ms:>9.2f} ms"
            if record["engine_v3"] is not None:
                v3_ms = record["engine_v3"]["median"] * 1000.0
                line += f"   v3 {v3_ms:>9.2f} ms ({record['speedup_vs_v2']:.2f}x)"
            if record["engine_v1"] is not None:
                v1_ms = record["engine_v1"]["median"] * 1000.0
                line += f"   v1 {v1_ms:>9.2f} ms ({record['speedup_vs_v1']:.2f}x)"
            if record["baseline"] is not None:
                base_ms = record["baseline"]["median"] * 1000.0
                line += f"   seed {base_ms:>9.2f} ms (speedup {record['speedup']:.2f}x)"
            if record["decomposed"] is not None:
                dec_ms = record["decomposed"]["median"] * 1000.0
                line += (
                    f"   decomp {dec_ms:>9.2f} ms "
                    f"({record['speedup_vs_mono']:.2f}x vs mono)"
                )
            print(line)

        if args.repeats is not None and args.repeats < 1:
            parser.error("--repeats must be >= 1")
        if args.warmup is not None and args.warmup < 0:
            parser.error("--warmup must be >= 0")
        committed = None
        compare_label = args.compare
        if args.compare is not None:
            # Load the committed reference before the (slow) run so a bad
            # path or schema fails fast.  The reference may be a plain
            # report or a JSONL history file (gated against its latest
            # entry).
            try:
                committed, compare_source = load_comparison_report(args.compare)
            except OSError as exc:
                parser.error(f"cannot read report {args.compare!r}: {exc}")
            except (BenchSchemaError, ValueError, KeyError) as exc:
                parser.error(f"--compare report {args.compare!r}: {exc}")
            if args.median_window is not None and compare_source != "history":
                parser.error(
                    "--median-window needs --compare to name a history file, "
                    f"not a plain report ({args.compare!r})"
                )
            if compare_source == "history":
                if args.median_window is not None:
                    try:
                        committed, entries_used = rolling_median_reference(
                            args.compare, args.median_window
                        )
                    except (BenchSchemaError, ValueError) as exc:
                        parser.error(f"--median-window on {args.compare!r}: {exc}")
                    compare_label = (
                        f"{args.compare} (rolling median of last "
                        f"{entries_used} entries)"
                    )
                else:
                    compare_label = f"{args.compare} (latest history entry)"
        out = args.out
        if out is None:
            out = "BENCH_smoke.json" if args.quick else "BENCH_dp.json"
        try:
            report = run_bench(
                quick=args.quick,
                repeats=args.repeats,
                warmup=args.warmup,
                seed=args.seed,
                baseline=not args.no_baseline,
                compare_v1=not args.no_v1,
                compare_v3=not args.no_v3,
                progress=_print_case,
                # Deliberately only the explicit flag: a REPRO_BACKEND default
                # must not silently parallelize (and distort) timed runs.
                backend=args.backend,
                portfolio=args.portfolio,
                name_filter=args.filter,
            )
        except ValueError as exc:
            # An empty --filter match is a usage error, not a traceback.
            parser.error(str(exc))
        write_report(report, out)
        print(f"report written to {out}")
        if args.append is not None:
            try:
                entry = append_history(report, args.append)
            except OSError as exc:
                print(f"cannot append to {args.append!r}: {exc}", file=sys.stderr)
                return 1
            print(f"history appended to {args.append} ({entry['timestamp']})")
        if committed is not None:
            threshold = (
                DEFAULT_REGRESSION_THRESHOLD
                if args.threshold is None
                else args.threshold
            )
            outcome = compare_reports(report, committed, threshold=threshold)
            for warning in outcome["warnings"]:
                print(f"  note: {warning}")
            print(
                f"regression gate vs {compare_label}: "
                f"{len(outcome['compared'])} cases compared, "
                f"{len(outcome['skipped'])} skipped (sub-noise-floor), "
                f"{len(outcome['unmatched'])} unmatched"
            )
            if outcome["regressions"]:
                for entry in outcome["regressions"]:
                    if entry["metric"] == "speedup_vs_v1":
                        detail = (
                            f"v2-over-v1 speedup fell to {entry['fresh_value']:.2f}x "
                            f"from committed {entry['committed_value']:.2f}x"
                        )
                    else:
                        detail = (
                            f"{entry['fresh_value'] * 1000.0:.2f} ms vs committed "
                            f"{entry['committed_value'] * 1000.0:.2f} ms"
                        )
                    print(
                        f"  REGRESSION {entry['name']}: {detail} "
                        f"({entry['ratio']:.2f}x > {threshold:.2f}x)"
                    )
                return 1
            print(f"no case regressed beyond {threshold:.2f}x")
        return 0

    if args.command == "experiment":
        if args.which.lower() == "all":
            tables = run_all_experiments(scale=args.scale)
            print(render_tables(tables))
        else:
            print(format_table(run_experiment(args.which, scale=args.scale)))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
