"""Command-line interface: ``python -m repro`` or the ``repro-sched`` script.

Sub-commands
------------
``solve-gap``
    Solve a one-interval multiprocessor instance given as ``release,deadline``
    pairs and print the optimal schedule and gap count (Theorem 1).
``solve-power``
    Same input plus ``--alpha``; prints the optimal power schedule (Theorem 2).
``approx-power``
    Multi-interval instance given as semicolon-separated time lists; runs the
    Theorem 3 approximation.
``throughput``
    Multi-interval instance plus ``--max-gaps``; runs the Theorem 11 greedy.
``experiment``
    Regenerate one experiment table (or all of them) from DESIGN.md.

The CLI is intentionally small: it exists so the examples in the README can
be reproduced without writing Python, and so the experiment harness can be
invoked from shell scripts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.experiments import ALL_EXPERIMENTS, run_all_experiments, run_experiment
from .analysis.reporting import format_table, render_tables
from .core.jobs import MultiIntervalInstance, MultiprocessorInstance
from .core.multiproc_gap_dp import solve_multiprocessor_gap
from .core.multiproc_power_dp import solve_multiprocessor_power
from .core.power_approx import approximate_power_schedule
from .core.throughput import greedy_throughput_schedule

__all__ = ["main", "build_parser"]


def _parse_pairs(specs: Sequence[str]) -> List[tuple]:
    pairs = []
    for spec in specs:
        parts = spec.split(",")
        if len(parts) != 2:
            raise argparse.ArgumentTypeError(
                f"job {spec!r} is not of the form release,deadline"
            )
        pairs.append((int(parts[0]), int(parts[1])))
    return pairs


def _parse_time_lists(spec: str) -> List[List[int]]:
    jobs = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        jobs.append([int(token) for token in chunk.replace(",", " ").split()])
    return jobs


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Gap and power scheduling (SPAA 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gap = sub.add_parser("solve-gap", help="exact multiprocessor gap scheduling")
    gap.add_argument("jobs", nargs="+", help="jobs as release,deadline pairs")
    gap.add_argument("--processors", "-p", type=int, default=1)

    power = sub.add_parser("solve-power", help="exact multiprocessor power minimization")
    power.add_argument("jobs", nargs="+", help="jobs as release,deadline pairs")
    power.add_argument("--processors", "-p", type=int, default=1)
    power.add_argument("--alpha", type=float, required=True)

    approx = sub.add_parser("approx-power", help="Theorem 3 approximation")
    approx.add_argument(
        "jobs", help="semicolon-separated allowed-time lists, e.g. '0 1;4 5;0 4'"
    )
    approx.add_argument("--alpha", type=float, required=True)

    throughput = sub.add_parser("throughput", help="Theorem 11 greedy throughput")
    throughput.add_argument("jobs", help="semicolon-separated allowed-time lists")
    throughput.add_argument("--max-gaps", type=int, required=True)

    experiment = sub.add_parser("experiment", help="regenerate experiment tables")
    experiment.add_argument(
        "which", nargs="?", default="all", help="experiment id (E1..E12) or 'all'"
    )
    experiment.add_argument("--scale", choices=["smoke", "paper"], default="smoke")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "solve-gap":
        instance = MultiprocessorInstance.from_pairs(
            _parse_pairs(args.jobs), num_processors=args.processors
        )
        solution = solve_multiprocessor_gap(instance)
        if not solution.feasible:
            print("infeasible")
            return 1
        print(f"optimal gaps: {solution.num_gaps}")
        for job_idx, name, proc, t in solution.require_schedule().as_table():
            print(f"  t={t:>4}  processor {proc}  job {name} (#{job_idx})")
        return 0

    if args.command == "solve-power":
        instance = MultiprocessorInstance.from_pairs(
            _parse_pairs(args.jobs), num_processors=args.processors
        )
        solution = solve_multiprocessor_power(instance, alpha=args.alpha)
        if not solution.feasible:
            print("infeasible")
            return 1
        print(f"optimal power: {solution.power:g} (alpha={args.alpha:g})")
        for job_idx, name, proc, t in solution.require_schedule().as_table():
            print(f"  t={t:>4}  processor {proc}  job {name} (#{job_idx})")
        return 0

    if args.command == "approx-power":
        instance = MultiIntervalInstance.from_time_lists(_parse_time_lists(args.jobs))
        result = approximate_power_schedule(instance, alpha=args.alpha)
        print(
            f"power: {result.power:g}  gaps: {result.num_gaps}  "
            f"guarantee factor: {result.guarantee_factor:g}"
        )
        for job_idx, name, t in result.schedule.as_table():
            print(f"  t={t:>4}  job {name} (#{job_idx})")
        return 0

    if args.command == "throughput":
        instance = MultiIntervalInstance.from_time_lists(_parse_time_lists(args.jobs))
        result = greedy_throughput_schedule(instance, max_gaps=args.max_gaps)
        print(
            f"scheduled {result.num_scheduled}/{instance.num_jobs} jobs "
            f"in {len(result.working_intervals)} working intervals"
        )
        for interval in result.working_intervals:
            print(f"  interval [{interval.start}, {interval.end}] jobs {list(interval.jobs)}")
        return 0

    if args.command == "experiment":
        if args.which.lower() == "all":
            tables = run_all_experiments(scale=args.scale)
            print(render_tables(tables))
        else:
            print(format_table(run_experiment(args.which, scale=args.scale)))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
