"""A thin HTTP client for the scheduling service (urllib, no dependencies).

:class:`ServiceClient` wraps the five service endpoints in typed calls:
``submit`` takes a façade :class:`~repro.api.problem.Problem` and returns a
job id; ``result`` polls until the job is terminal and hands back the
decoded :class:`~repro.api.result.SolveResult` — byte-identical (modulo
``wall_time``, which the façade already excludes from equality) to what a
local :func:`repro.api.solve` call would have produced, because it is the
same envelope, computed by the same engine, round-tripped through the same
canonical wire format.

Every non-2xx response raises :class:`ServiceError` carrying the HTTP
status and the server's structured JSON payload, so callers can
distinguish a 429 quota denial (inspect ``payload["error"]`` and
``payload["retry_after"]``) from a 410 cancelled job or a 404 typo.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

from ..api.problem import Problem
from ..api.result import SolveResult
from ..api.serialization import from_dict, to_dict
from ..core.exceptions import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-success response from the service.

    ``status`` is the HTTP status code (``None`` for transport failures),
    ``payload`` the decoded JSON error body (``{}`` when absent).
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Talks to one service instance at ``url`` on behalf of ``client_id``."""

    def __init__(
        self, url: str, *, client_id: str = "client", timeout: float = 10.0
    ) -> None:
        self.url = url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- transport ------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        try:
            request = urllib.request.Request(
                self.url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
        except ValueError as exc:
            # urllib raises bare ValueError for a malformed/empty URL; keep
            # the client's error surface uniform for CLI consumers.
            raise ServiceError(f"invalid service URL {self.url!r}: {exc}") from exc
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}: "
                f"{payload.get('error', 'unknown error')}",
                status=exc.code,
                payload=payload,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc

    # -- job lifecycle --------------------------------------------------------
    def submit(
        self,
        problem: Problem,
        *,
        priority: int = 0,
        solver: Optional[str] = None,
    ) -> str:
        """Submit one problem; returns the job id (raises on 429/503)."""
        body: Dict[str, Any] = {
            "problem": to_dict(problem),
            "client_id": self.client_id,
            "priority": priority,
        }
        if solver is not None:
            body["solver"] = solver
        return str(self._request("POST", "/v1/jobs", body)["id"])

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's public status view."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(
        self,
        job_id: str,
        *,
        wait: bool = True,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
    ) -> SolveResult:
        """Fetch (by default: await) the job's result envelope.

        Polls until the job turns terminal; raises :class:`ServiceError`
        for a cancelled job (410), an error job without an envelope, or on
        timeout.  With ``wait=False`` a single 202 "not ready" also raises.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self._request("GET", f"/v1/jobs/{job_id}/result")
            if payload.get("result") is not None:
                return from_dict(payload["result"])
            state = payload.get("state")
            if state == "error":
                raise ServiceError(
                    f"job {job_id} failed without a result envelope: "
                    f"{payload.get('error')}",
                    status=200,
                    payload=payload,
                )
            if not wait:
                raise ServiceError(
                    f"job {job_id} is still {state}", status=202, payload=payload
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for job {job_id} "
                    f"(last state: {state})",
                    payload=payload,
                )
            time.sleep(poll_interval)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns ``{"state": "cancelled"|"cancelling"}``."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    # -- operational surfaces -------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The service's full ``/v1/stats`` payload."""
        return self._request("GET", "/v1/stats")

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` liveness payload."""
        return self._request("GET", "/healthz")
