"""The persistent job store of the scheduling service (SQLite, WAL mode).

One row per job, one file per deployment.  The store is the service's
source of truth: the daemon claims work out of it, the HTTP layer reads
status from it, and because every state transition is a committed SQLite
transaction, a killed daemon loses nothing — :meth:`JobQueue.recover`
re-enqueues whatever was mid-flight and the replacement process continues
where the dead one stopped.

Job lifecycle::

    queued ──claim──▶ running ──complete──▶ done | error
       │                 │
       │ cancel          │ cancel (flag) ──complete──▶ cancelled
       ▼                 ▼
    cancelled         cancel_requested=1

Transitions are atomic (``BEGIN IMMEDIATE`` transactions) and one-way:
``done`` / ``error`` / ``cancelled`` are terminal.  Cancelling a *queued*
job takes effect immediately; cancelling a *running* job sets a flag — the
in-flight DP is not interruptible — and the job lands in ``cancelled``
(result discarded) when the solve returns.

Concurrency: connections are per-thread (the HTTP handler threads and the
daemon's executor thread each get their own), WAL mode lets readers
proceed under a writer, and the claim transaction is the only contended
write path.

Jobs carry the serialized :class:`~repro.api.problem.Problem` JSON, the
submitting client id, a priority (higher first, FIFO within a priority),
and the full timestamp trail.  :class:`JobRecord` is registered with the
façade wire format (:func:`repro.api.register_codec` under the
``"service_job"`` tag), so a job envelope round-trips through
``to_json`` / ``from_json`` like any other façade value.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..api.serialization import register_codec

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobQueue",
]

#: Every state a job can be in.
JOB_STATES = ("queued", "running", "done", "error", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "error", "cancelled"})

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    client_id        TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    solver           TEXT NOT NULL DEFAULT 'auto',
    problem          TEXT NOT NULL,
    state            TEXT NOT NULL DEFAULT 'queued',
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    result           TEXT,
    error            TEXT
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC);
CREATE INDEX IF NOT EXISTS jobs_by_client
    ON jobs (client_id, state);
"""


@dataclass(frozen=True)
class JobRecord:
    """One job as stored: identity, payload, state, and timestamp trail.

    ``problem`` and ``result`` hold canonical façade JSON *text* (or
    ``None`` for ``result`` until the job finishes), so a record is cheap
    to move around and decodes on demand via :meth:`problem_obj` /
    :meth:`result_obj`.
    """

    id: str
    client_id: str
    priority: int
    solver: str
    problem: str
    state: str
    cancel_requested: bool
    attempts: int
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    result: Optional[str]
    error: Optional[str]

    def problem_obj(self):
        """Decode the stored problem JSON into a façade ``Problem``."""
        from ..api.serialization import from_json

        return from_json(self.problem)

    def result_obj(self):
        """Decode the stored result JSON (``None`` until terminal)."""
        if self.result is None:
            return None
        from ..api.serialization import from_json

        return from_json(self.result)

    def public_dict(self) -> Dict[str, object]:
        """The status view the HTTP API serves (no payload bodies)."""
        return {
            "id": self.id,
            "client_id": self.client_id,
            "priority": self.priority,
            "solver": self.solver,
            "state": self.state,
            "cancel_requested": self.cancel_requested,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


def _canonical_text(data: object) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _encode_job_record(record: JobRecord) -> Dict[str, object]:
    payload = record.public_dict()
    payload["problem"] = json.loads(record.problem)
    payload["result"] = None if record.result is None else json.loads(record.result)
    return payload


def _decode_job_record(data: Dict[str, object]) -> JobRecord:
    return JobRecord(
        id=str(data["id"]),
        client_id=str(data["client_id"]),
        priority=int(data["priority"]),
        solver=str(data["solver"]),
        problem=_canonical_text(data["problem"]),
        state=str(data["state"]),
        cancel_requested=bool(data["cancel_requested"]),
        attempts=int(data["attempts"]),
        submitted_at=float(data["submitted_at"]),
        started_at=None if data.get("started_at") is None else float(data["started_at"]),
        finished_at=None
        if data.get("finished_at") is None
        else float(data["finished_at"]),
        result=None if data.get("result") is None else _canonical_text(data["result"]),
        error=None if data.get("error") is None else str(data["error"]),
    )


register_codec(JobRecord, "service_job", _encode_job_record, _decode_job_record)


class JobQueue:
    """SQLite-backed job store with atomic, crash-safe state transitions."""

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._local = threading.local()
        self._conn()  # eagerly create the file, switch to WAL, apply schema

    # -- connection management ----------------------------------------------
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(self.path, timeout=30.0)
            conn.row_factory = sqlite3.Row
            # Autocommit mode: transactions are explicit (BEGIN IMMEDIATE)
            # so multi-statement transitions hold the write lock they need.
            conn.isolation_level = None
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            self._local.conn = conn
        return conn

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        """Close this thread's connection (other threads' stay open)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- submission and lookup ----------------------------------------------
    def submit(
        self,
        problem_json: str,
        *,
        client_id: str = "anonymous",
        priority: int = 0,
        solver: str = "auto",
    ) -> JobRecord:
        """Append a job in state ``queued`` and return its record."""
        record = JobRecord(
            id=uuid.uuid4().hex,
            client_id=client_id,
            priority=int(priority),
            solver=solver,
            problem=problem_json,
            state="queued",
            cancel_requested=False,
            attempts=0,
            submitted_at=time.time(),
            started_at=None,
            finished_at=None,
            result=None,
            error=None,
        )
        with self._tx() as conn:
            conn.execute(
                "INSERT INTO jobs (id, client_id, priority, solver, problem,"
                " state, cancel_requested, attempts, submitted_at)"
                " VALUES (?, ?, ?, ?, ?, 'queued', 0, 0, ?)",
                (
                    record.id,
                    record.client_id,
                    record.priority,
                    record.solver,
                    record.problem,
                    record.submitted_at,
                ),
            )
        return record

    @staticmethod
    def _from_row(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            client_id=row["client_id"],
            priority=row["priority"],
            solver=row["solver"],
            problem=row["problem"],
            state=row["state"],
            cancel_requested=bool(row["cancel_requested"]),
            attempts=row["attempts"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            result=row["result"],
            error=row["error"],
        )

    def get(self, job_id: str) -> Optional[JobRecord]:
        """Look a job up by id, or ``None``."""
        row = self._conn().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return None if row is None else self._from_row(row)

    def list_jobs(
        self, state: Optional[str] = None, limit: int = 100
    ) -> List[JobRecord]:
        """Most recent jobs first, optionally filtered by state."""
        if state is None:
            rows = self._conn().execute(
                "SELECT * FROM jobs ORDER BY rowid DESC LIMIT ?", (limit,)
            ).fetchall()
        else:
            rows = self._conn().execute(
                "SELECT * FROM jobs WHERE state = ? ORDER BY rowid DESC LIMIT ?",
                (state, limit),
            ).fetchall()
        return [self._from_row(row) for row in rows]

    # -- scheduler-side transitions ------------------------------------------
    def claim(self, limit: int) -> List[JobRecord]:
        """Atomically move up to ``limit`` queued jobs to ``running``.

        Selection order is priority (higher first), then submission order.
        Queued jobs whose cancellation was requested are finalized to
        ``cancelled`` here instead of being dispatched — their slot is not
        refilled this round, which only costs one poll interval.
        """
        claimed: List[JobRecord] = []
        now = time.time()
        with self._tx() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued'"
                " ORDER BY priority DESC, rowid ASC LIMIT ?",
                (int(limit),),
            ).fetchall()
            # time.time() is not monotonic, and sub-millisecond jobs make a
            # backwards step observable; clamping keeps the per-job
            # submitted <= started <= finished invariant unconditional.
            for row in rows:
                record = self._from_row(row)
                if record.cancel_requested:
                    conn.execute(
                        "UPDATE jobs SET state = 'cancelled',"
                        " finished_at = MAX(?, submitted_at) WHERE id = ?",
                        (now, record.id),
                    )
                    continue
                started = max(now, record.submitted_at)
                conn.execute(
                    "UPDATE jobs SET state = 'running', started_at = ?,"
                    " attempts = attempts + 1 WHERE id = ?",
                    (started, record.id),
                )
                claimed.append(
                    replace(
                        record,
                        state="running",
                        started_at=started,
                        attempts=record.attempts + 1,
                    )
                )
        return claimed

    def complete(
        self,
        job_id: str,
        *,
        result_json: Optional[str],
        error: Optional[str] = None,
        failed: bool = False,
    ) -> Optional[str]:
        """Finish a running job; returns the final state it landed in.

        ``failed=True`` records ``state="error"`` (with ``result_json``
        carrying the captured error envelope).  A pending cancellation wins
        over the computed result: the job lands in ``cancelled`` and the
        result is discarded.  Completing a job that is not running is a
        no-op returning its current state (``None`` for unknown ids) —
        this makes write-back safe against races with recovery.
        """
        now = time.time()
        with self._tx() as conn:
            row = conn.execute(
                "SELECT state, cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            if row["state"] != "running":
                return row["state"]
            if row["cancel_requested"]:
                conn.execute(
                    "UPDATE jobs SET state = 'cancelled',"
                    " finished_at = MAX(?, COALESCE(started_at, submitted_at)),"
                    " result = NULL, error = NULL WHERE id = ?",
                    (now, job_id),
                )
                return "cancelled"
            state = "error" if failed else "done"
            conn.execute(
                "UPDATE jobs SET state = ?,"
                " finished_at = MAX(?, COALESCE(started_at, submitted_at)),"
                " result = ?, error = ? WHERE id = ?",
                (state, now, result_json, error, job_id),
            )
            return state

    def recover(self) -> int:
        """Re-enqueue every ``running`` job (daemon startup after a crash).

        Attempts are preserved, so a poison job that keeps killing workers
        remains visible in its attempt count.
        """
        with self._tx() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL"
                " WHERE state = 'running'"
            )
            return cursor.rowcount

    # -- client-side transitions ---------------------------------------------
    def request_cancel(self, job_id: str) -> Optional[str]:
        """Cancel a job; returns the transition outcome.

        ``"cancelled"`` — the job was queued and is now terminally
        cancelled; ``"cancelling"`` — the job is running, the flag is set,
        and it will land in ``cancelled`` when the solve returns; a
        terminal state name — the job already finished (the caller maps
        this to 409); ``None`` — unknown id.
        """
        now = time.time()
        with self._tx() as conn:
            row = conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            state = row["state"]
            if state == "queued":
                conn.execute(
                    "UPDATE jobs SET state = 'cancelled', cancel_requested = 1,"
                    " finished_at = MAX(?, submitted_at) WHERE id = ?",
                    (now, job_id),
                )
                return "cancelled"
            if state == "running":
                conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
                )
                return "cancelling"
            return state

    # -- operational views ----------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Per-state job counts (every state present, zeros included)."""
        totals = {state: 0 for state in JOB_STATES}
        for row in self._conn().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            totals[row["state"]] = row["n"]
        return totals

    def pending_count(self) -> int:
        """Jobs still owed an answer (queued + running)."""
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state IN ('queued', 'running')"
        ).fetchone()
        return row["n"]

    def client_load(self, client_id: str) -> int:
        """This client's queued + running jobs (the admission quota input)."""
        row = self._conn().execute(
            "SELECT COUNT(*) AS n FROM jobs"
            " WHERE client_id = ? AND state IN ('queued', 'running')",
            (client_id,),
        ).fetchone()
        return row["n"]

    def oldest_queued_age(self, now: Optional[float] = None) -> Optional[float]:
        """Age in seconds of the longest-waiting queued job, or ``None``."""
        row = self._conn().execute(
            "SELECT MIN(submitted_at) AS t FROM jobs WHERE state = 'queued'"
        ).fetchone()
        if row["t"] is None:
            return None
        return (time.time() if now is None else now) - row["t"]
