"""Admission control: per-client token buckets and a queued-jobs quota.

Admission is the service's only defense against a single client drowning
the queue, so it runs *before* anything touches SQLite's write path.  Two
independent checks, each individually disableable:

* **Rate limit** — a classic token bucket per client id: ``burst`` tokens
  of capacity, refilled at ``rate`` tokens/second; one token per submit.
  An empty bucket yields a denial with a ``retry_after`` hint (seconds
  until one token exists again), which the HTTP layer surfaces as a
  structured 429 with a ``Retry-After`` header.
* **Queue quota** — a cap on the client's *outstanding* jobs (queued +
  running).  The current load is supplied by the caller (it lives in the
  job store), keeping this module pure state-machine and trivially
  testable with a fake clock.

Buckets are created lazily per client and pruned once they are both full
and stale, so an open service does not grow memory with every client id
it has ever seen.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

__all__ = ["AdmissionDecision", "AdmissionController"]

#: Denial reason codes (the ``error`` field of the structured 429).
REASON_RATE = "rate_limited"
REASON_QUOTA = "quota_exceeded"

#: Idle buckets are pruned once this many seconds past full refill.
_PRUNE_SLACK = 60.0


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``allowed`` is the verdict; on denial ``reason`` is a stable machine
    code (``rate_limited`` / ``quota_exceeded``), ``retry_after`` a hint in
    seconds when waiting helps (``None`` when it does not — a full queue
    only drains by jobs finishing), and ``detail`` a human sentence.
    """

    allowed: bool
    reason: Optional[str] = None
    retry_after: Optional[float] = None
    detail: str = ""

    def to_payload(self) -> Dict[str, object]:
        """The structured 429 body served on denial."""
        return {
            "error": self.reason,
            "retry_after": self.retry_after,
            "detail": self.detail,
        }


class AdmissionController:
    """Decides whether one more job from ``client_id`` may enter the queue.

    Parameters
    ----------
    rate:
        Sustained submissions per second per client; ``rate <= 0`` disables
        rate limiting entirely.
    burst:
        Bucket capacity — how many submissions a quiet client may fire
        back-to-back before the sustained rate applies.
    max_queued:
        Maximum outstanding (queued + running) jobs per client;
        ``max_queued <= 0`` disables the quota.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        *,
        rate: float = 50.0,
        burst: int = 100,
        max_queued: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self.max_queued = int(max_queued)
        self._clock = clock
        self._lock = threading.Lock()
        #: client id -> (tokens, last refill timestamp)
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self.admitted = 0
        self.denied: Dict[str, int] = {REASON_RATE: 0, REASON_QUOTA: 0}

    def admit(self, client_id: str, outstanding: int) -> AdmissionDecision:
        """Check (and on success consume) one submission from ``client_id``.

        ``outstanding`` is the client's current queued + running job count
        as reported by the job store.  Quota is checked before the rate
        bucket so a denied-by-quota submit does not also burn a token.
        """
        with self._lock:
            if 0 < self.max_queued <= outstanding:
                self.denied[REASON_QUOTA] += 1
                return AdmissionDecision(
                    allowed=False,
                    reason=REASON_QUOTA,
                    retry_after=None,
                    detail=(
                        f"client {client_id!r} has {outstanding} outstanding "
                        f"jobs (limit {self.max_queued}); wait for results "
                        "or cancel jobs"
                    ),
                )
            if self.rate > 0:
                now = self._clock()
                tokens, last = self._buckets.get(client_id, (float(self.burst), None))
                if last is not None:
                    tokens = min(float(self.burst), tokens + (now - last) * self.rate)
                if tokens < 1.0:
                    self._buckets[client_id] = (tokens, now)
                    self.denied[REASON_RATE] += 1
                    # Denials record bucket state too, so a fleet of
                    # clients that only ever gets denied would otherwise
                    # grow the table without bound.
                    self._prune(now)
                    retry_after = (1.0 - tokens) / self.rate
                    return AdmissionDecision(
                        allowed=False,
                        reason=REASON_RATE,
                        retry_after=retry_after,
                        detail=(
                            f"client {client_id!r} exceeded {self.rate:g} "
                            f"submissions/s (burst {self.burst}); retry in "
                            f"{retry_after:.3f}s"
                        ),
                    )
                self._buckets[client_id] = (tokens - 1.0, now)
                self._prune(now)
            self.admitted += 1
            return AdmissionDecision(allowed=True)

    def _prune(self, now: float) -> None:
        # A bucket refilled to capacity carries no state worth keeping; give
        # it some slack so hot clients are not churned in and out.
        if len(self._buckets) < 1024:
            return
        horizon = (self.burst / self.rate) + _PRUNE_SLACK
        stale = [
            client
            for client, (_tokens, last) in self._buckets.items()
            if now - last > horizon
        ]
        for client in stale:
            del self._buckets[client]

    def config(self) -> Dict[str, object]:
        """The live limits (served under ``/v1/stats``)."""
        return {
            "rate": self.rate,
            "burst": self.burst,
            "max_queued": self.max_queued,
        }

    def stats(self) -> Dict[str, object]:
        """Admission counters plus configuration."""
        with self._lock:
            return {
                **self.config(),
                "admitted": self.admitted,
                "denied": dict(self.denied),
                "tracked_clients": len(self._buckets),
            }
