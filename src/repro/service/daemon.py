"""The scheduler loop: drain the persistent queue through the runtime.

An asyncio loop with one job: repeatedly *claim* a window of queued jobs
from the :class:`~repro.service.queue.JobQueue` (atomically marking them
``running``), push the window through :func:`repro.runtime.solve_stream`
under the configured execution backend, and write each
:class:`~repro.api.result.SolveResult` envelope back the moment it
completes — results stream back in completion order, so a fast job is
pollable before its slower batchmates finish.

Everything the runtime layer already does for batch solving carries over
for free: the backend pool (serial/thread/process), in-flight canonical
dedupe (fifty isomorphic submissions burn one DP), the two-tier solve
cache, and per-task error capture (a crashing solve becomes one
``status="error"`` envelope stored on that job, not a dead daemon).

Crash safety comes from the store, not the loop: claimed jobs are
``running`` rows in SQLite, so a killed process leaves a trail that
:meth:`~repro.service.queue.JobQueue.recover` re-enqueues on the next
start.  Graceful drain is the inverse: :meth:`SchedulerDaemon.request_stop`
lets the in-flight window finish and write back before the loop exits —
nothing is left ``running`` after a clean stop.

The loop sleeps ``poll_interval`` between empty polls; the HTTP layer
calls :meth:`SchedulerDaemon.kick` after each accepted submission to wake
it immediately, so idle-service latency is not bounded by the poll.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..api.serialization import from_json, to_json
from ..runtime import add_task_observer, remove_task_observer, solve_stream
from .queue import JobQueue, JobRecord
from .stats import TaskMetrics

__all__ = ["SchedulerDaemon"]


class SchedulerDaemon:
    """Drains a :class:`JobQueue` through the runtime's solve pipeline.

    Parameters
    ----------
    store:
        The persistent job queue to drain.
    backend / workers:
        Execution backend selection, passed through to
        :func:`repro.runtime.solve_stream` for every claimed window.
    window:
        Maximum jobs claimed (and therefore in flight) per scheduling
        round — the concurrency window.
    poll_interval:
        Seconds to sleep between polls of an empty queue.
    metrics:
        Optional :class:`TaskMetrics` registered as a runtime task
        observer for the daemon's lifetime.
    """

    def __init__(
        self,
        store: JobQueue,
        *,
        backend: Optional[object] = None,
        workers: Optional[int] = None,
        window: int = 4,
        poll_interval: float = 0.05,
        metrics: Optional[TaskMetrics] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.store = store
        self.backend = backend
        self.workers = workers
        self.window = int(window)
        self.poll_interval = float(poll_interval)
        self.metrics = metrics
        self.state = "idle"  # idle -> running -> draining -> stopped
        self.rounds = 0
        self.completed = 0
        self._stop_requested = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None

    # -- cross-thread controls ----------------------------------------------
    def kick(self) -> None:
        """Wake the loop now (called by the HTTP layer after a submit)."""
        loop, wake = self._loop, self._wake
        if loop is not None and wake is not None:
            try:
                loop.call_soon_threadsafe(wake.set)
            except RuntimeError:
                pass  # loop already closed — nothing left to wake

    def request_stop(self) -> None:
        """Begin a graceful drain: finish the in-flight window, then stop."""
        if self.state == "running":
            self.state = "draining"
        self._stop_requested.set()
        self.kick()

    # -- the loop ------------------------------------------------------------
    async def run(self) -> None:
        """Run until :meth:`request_stop`; safe to call once per instance."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self.state = "running"
        if self.metrics is not None:
            add_task_observer(self.metrics.observe)
        try:
            while not self._stop_requested.is_set():
                batch = self.store.claim(self.window)
                if not batch:
                    self._wake.clear()
                    # Re-check after clearing: a kick between claim() and
                    # clear() must not be lost.
                    if self._stop_requested.is_set():
                        break
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(), timeout=self.poll_interval
                        )
                    except asyncio.TimeoutError:
                        pass
                    continue
                self.rounds += 1
                # The blocking pipeline runs on an executor thread; awaiting
                # it here is what makes a stop request drain gracefully —
                # the in-flight window always writes back before the loop
                # exits.
                await self._loop.run_in_executor(None, self._execute_batch, batch)
        finally:
            if self.metrics is not None:
                remove_task_observer(self.metrics.observe)
            # The daemon owns the process tree it spawned: solve batches run
            # through the shared warm pool, so a stopping daemon must reap
            # those workers or every drain leaks them.
            from ..runtime.pool import shutdown_worker_pool

            shutdown_worker_pool()
            self.state = "stopped"

    # -- one claimed window ---------------------------------------------------
    def _execute_batch(self, batch: List[JobRecord]) -> None:
        """Solve one claimed window and write every envelope back."""
        # Jobs may name different solvers; solve_stream takes one solver per
        # call, so group while preserving claim order within each group.
        groups: "OrderedDict[str, List[Tuple[JobRecord, Any]]]" = OrderedDict()
        for record in batch:
            try:
                problem = from_json(record.problem)
            except Exception as exc:  # noqa: BLE001 — bad payloads become error jobs
                self.store.complete(
                    record.id,
                    result_json=None,
                    error=f"{type(exc).__name__}: {exc}",
                    failed=True,
                )
                continue
            groups.setdefault(record.solver, []).append((record, problem))
        for solver, pairs in groups.items():
            problems = [problem for _record, problem in pairs]
            for index, result in solve_stream(
                problems,
                solver=solver,
                backend=self.backend,
                workers=self.workers,
                ordered=False,
                with_index=True,
                on_error="result",
            ):
                self._write_back(pairs[index][0], result)

    def _write_back(self, record: JobRecord, result: Any) -> None:
        failed = result.status == "error"
        error = None
        if failed:
            error_type = result.extra.get("error_type", "Exception")
            error = f"{error_type}: {result.extra.get('error', '')}"
        state = self.store.complete(
            record.id,
            result_json=to_json(result),
            error=error,
            failed=failed,
        )
        if state is not None:
            self.completed += 1

    def stats(self) -> Dict[str, object]:
        """Loop-level counters for the stats surface."""
        return {
            "state": self.state,
            "window": self.window,
            "rounds": self.rounds,
            "completed": self.completed,
        }
