"""repro.service — scheduling-as-a-service on top of the runtime layer.

The batch pipeline in :mod:`repro.runtime` answers "solve these N
instances"; this package answers "keep solving whatever arrives".  It is
a long-lived daemon with a persistent job queue, built entirely from the
standard library (a hard rule, enforced by a hygiene test):

* :mod:`~repro.service.queue` — SQLite-backed job store (WAL mode) with
  atomic ``queued → running → done|error|cancelled`` transitions.  The
  store is the source of truth: a killed daemon loses nothing, and
  restart re-enqueues whatever was mid-flight.
* :mod:`~repro.service.daemon` — the asyncio scheduler loop: claim a
  window of jobs, drain it through :func:`repro.runtime.solve_stream`
  under a configurable backend, write envelopes back as they complete,
  drain gracefully on stop.
* :mod:`~repro.service.server` — the HTTP/JSON API (``POST /v1/jobs``,
  status/result/cancel, ``GET /v1/stats``, ``GET /healthz``) on stdlib
  ``http.server``.
* :mod:`~repro.service.admission` — per-client token-bucket rate limits
  and an outstanding-jobs quota, surfaced as structured 429s.
* :mod:`~repro.service.client` — a urllib-based :class:`ServiceClient`
  plus the ``repro-sched submit/status/result/cancel`` CLI verbs.
* :mod:`~repro.service.stats` — the shared operational-stats payload
  (cache tiers, engine counters, task totals) used by both the CLI's
  ``stats`` subcommand and ``GET /v1/stats``.

Quickstart (in-process; see ``docs/service.md`` for the CLI flow)::

    from repro.service import start_service, ServiceClient
    from repro.api import Problem, OneIntervalInstance, Job

    server = start_service("jobs.db", port=0)
    client = ServiceClient(server.url, client_id="demo")
    job_id = client.submit(Problem(
        instance=OneIntervalInstance(jobs=[Job(0, 2), Job(1, 3)]),
        objective="gap",
    ))
    result = client.result(job_id)   # a façade SolveResult, same bytes
    server.stop()                    # graceful drain
"""

from .admission import AdmissionController, AdmissionDecision
from .client import ServiceClient, ServiceError
from .daemon import SchedulerDaemon
from .queue import JOB_STATES, TERMINAL_STATES, JobQueue, JobRecord
from .server import ServiceServer, start_service
from .stats import TaskMetrics, operational_stats

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobQueue",
    "JobRecord",
    "AdmissionController",
    "AdmissionDecision",
    "SchedulerDaemon",
    "ServiceServer",
    "start_service",
    "ServiceClient",
    "ServiceError",
    "TaskMetrics",
    "operational_stats",
]
