"""The HTTP/JSON boundary of the scheduling service (stdlib only).

A deliberately boring server: :class:`http.server.ThreadingHTTPServer`
parses the protocol, every response body is canonical JSON, and the
handler does nothing but translate HTTP verbs into calls on the job store,
the admission controller, and the scheduler daemon.  No framework, no new
runtime dependency — CI enforces that the service layer imports only the
stdlib and ``repro`` itself.

API surface (all JSON)::

    POST /v1/jobs               submit {"problem": <tagged>, "client_id",
                                "priority", "solver"} -> 202 {"id", "state"}
                                (429 structured denial, 503 while draining)
    GET  /v1/jobs/<id>          status view             -> 200 (404 unknown)
    GET  /v1/jobs/<id>/result   result envelope         -> 200 when terminal
                                with a result, 202 while pending, 410 when
                                cancelled
    POST /v1/jobs/<id>/cancel   cancel                  -> 200 {"state":
                                "cancelled"|"cancelling"}, 409 if finished
    GET  /v1/stats              queue depths, per-state counts, cache tiers,
                                engine counters, admission + daemon counters
    GET  /healthz               liveness + drain state

:class:`ServiceServer` owns the lifecycle: it wires store + admission +
daemon together, runs the HTTP pool and the asyncio scheduler loop on
background threads, and implements graceful drain — on ``stop()`` (or
SIGTERM under ``repro-sched serve``) it refuses new submissions with 503,
lets the in-flight window finish and write back, then tears the listener
down.  A SIGKILLed server instead leaves ``running`` rows behind, which
the next start re-enqueues via :meth:`JobQueue.recover` — the
kill/restart test in the suite exercises exactly that path.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..api.problem import Problem
from ..api.serialization import from_dict, to_json
from .admission import AdmissionController
from .daemon import SchedulerDaemon
from .queue import JobQueue
from .stats import TaskMetrics, operational_stats

__all__ = ["ServiceServer", "start_service"]


class _BadRequest(ValueError):
    """Maps to a 400 with its message in the body."""


class _Handler(BaseHTTPRequestHandler):
    # Keep-alive needs accurate Content-Length on every response; _send
    # always sets it.
    protocol_version = "HTTP/1.1"
    server_version = "repro-sched-service"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # operational visibility comes from /v1/stats, not stderr spam

    @property
    def service(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------
    def _send(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _BadRequest("request body must be a JSON object")
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise _BadRequest("request body must be a JSON object")
        return data

    def _job_path(self) -> Tuple[Optional[str], Optional[str]]:
        """Split ``/v1/jobs/<id>[/verb]`` into (job id, verb)."""
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "jobs":
            return parts[2], parts[3] if len(parts) > 3 else None
        return None, None

    # -- verbs ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            svc = self.service
            self._send(
                200,
                {
                    "status": "ok",
                    "state": "draining" if svc.draining else svc.daemon.state,
                    "pending": svc.store.pending_count(),
                },
            )
            return
        if path == "/v1/stats":
            self._send(200, self.service.stats_payload())
            return
        job_id, verb = self._job_path()
        if job_id is not None and verb is None:
            record = self.service.store.get(job_id)
            if record is None:
                self._send(404, {"error": "unknown job", "id": job_id})
                return
            self._send(200, record.public_dict())
            return
        if job_id is not None and verb == "result":
            self._get_result(job_id)
            return
        self._send(404, {"error": f"no such endpoint: GET {path}"})

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/v1/jobs":
            try:
                self._submit()
            except _BadRequest as exc:
                self._send(400, {"error": str(exc)})
            return
        job_id, verb = self._job_path()
        if job_id is not None and verb == "cancel":
            self._cancel(job_id)
            return
        self._send(404, {"error": f"no such endpoint: POST {path}"})

    # -- endpoint bodies -----------------------------------------------------
    def _submit(self) -> None:
        svc = self.service
        if svc.draining:
            self._send(
                503, {"error": "draining", "detail": "service is shutting down"}
            )
            return
        body = self._read_body()
        problem_data = body.get("problem")
        if not isinstance(problem_data, dict):
            raise _BadRequest(
                "body must carry a 'problem' key holding a tagged problem object"
            )
        try:
            problem = from_dict(problem_data)
        except Exception as exc:  # noqa: BLE001 — decoding errors are client errors
            raise _BadRequest(f"cannot decode problem: {exc}") from exc
        if not isinstance(problem, Problem):
            raise _BadRequest(
                f"'problem' decodes to {type(problem).__name__}, expected a "
                "problem (wrap bare instances in a problem object)"
            )
        client_id = str(body.get("client_id") or "anonymous")
        solver = str(body.get("solver") or svc.default_solver)
        try:
            priority = int(body.get("priority") or 0)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"priority must be an integer: {exc}") from exc
        decision = svc.admission.admit(client_id, svc.store.client_load(client_id))
        if not decision.allowed:
            headers = {}
            if decision.retry_after is not None:
                headers["Retry-After"] = f"{decision.retry_after:.3f}"
            self._send(429, decision.to_payload(), headers)
            return
        record = svc.store.submit(
            to_json(problem), client_id=client_id, priority=priority, solver=solver
        )
        svc.daemon.kick()
        self._send(202, {"id": record.id, "state": record.state})

    def _get_result(self, job_id: str) -> None:
        record = self.service.store.get(job_id)
        if record is None:
            self._send(404, {"error": "unknown job", "id": job_id})
            return
        if record.state == "cancelled":
            self._send(410, {"id": record.id, "state": record.state})
            return
        if record.result is None:
            # queued / running, or an error job that never produced an
            # envelope (undecodable payload) — the latter is terminal, so
            # report it as such rather than "try again".
            if record.state == "error":
                self._send(
                    200,
                    {"id": record.id, "state": record.state, "result": None,
                     "error": record.error},
                )
                return
            self._send(202, {"id": record.id, "state": record.state})
            return
        self._send(
            200,
            {
                "id": record.id,
                "state": record.state,
                "result": json.loads(record.result),
            },
        )

    def _cancel(self, job_id: str) -> None:
        outcome = self.service.store.request_cancel(job_id)
        if outcome is None:
            self._send(404, {"error": "unknown job", "id": job_id})
            return
        if outcome in ("cancelled", "cancelling"):
            self._send(200, {"id": job_id, "state": outcome})
            return
        self._send(
            409,
            {"id": job_id, "state": outcome, "error": "job already finished"},
        )


class ServiceServer:
    """The assembled service: store + admission + daemon + HTTP listener.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`).
    Construction recovers interrupted jobs from the store; :meth:`start`
    launches the listener and the scheduler loop on daemon threads and
    returns immediately — use :meth:`run_forever` for the CLI's blocking,
    signal-driven variant.
    """

    def __init__(
        self,
        db_path: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: Optional[object] = None,
        workers: Optional[int] = None,
        window: int = 4,
        poll_interval: float = 0.05,
        rate: float = 50.0,
        burst: int = 100,
        max_queued: int = 1024,
        default_solver: str = "auto",
        recover: bool = True,
    ) -> None:
        self.store = JobQueue(db_path)
        self.metrics = TaskMetrics()
        self.admission = AdmissionController(
            rate=rate, burst=burst, max_queued=max_queued
        )
        self.daemon = SchedulerDaemon(
            self.store,
            backend=backend,
            workers=workers,
            window=window,
            poll_interval=poll_interval,
            metrics=self.metrics,
        )
        self.default_solver = default_solver
        self.recovered = self.store.recover() if recover else 0
        self.backend = backend
        self.draining = False
        self.started_at: Optional[float] = None
        self._requested_host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._daemon_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "ServiceServer":
        """Bind the listener and launch the scheduler loop; non-blocking."""
        if self._httpd is not None:
            raise RuntimeError("service already started")
        self._httpd = ThreadingHTTPServer(
            (self._requested_host, self._requested_port), _Handler
        )
        self._httpd.service = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._http_thread.start()
        self._daemon_thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.run()),
            name="repro-service-scheduler",
            daemon=True,
        )
        self._daemon_thread.start()
        self.started_at = time.time()
        return self

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        if self._httpd is None:
            raise RuntimeError("service not started")
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain: 503 new submits, finish in-flight, tear down."""
        self.draining = True
        self.daemon.request_stop()
        if self._daemon_thread is not None:
            self._daemon_thread.join(timeout=timeout)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=timeout)
        self.store.close()

    def run_forever(self, announce=None) -> None:
        """Blocking serve loop with SIGTERM/SIGINT graceful drain.

        ``announce`` is called with one human-readable line once the
        listener is bound (the CLI passes ``print``).
        """
        stop_event = threading.Event()

        def _handle(signum, frame):  # noqa: ARG001 — signal API
            stop_event.set()

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handle)
        self.start()
        try:
            if announce is not None:
                announce(
                    f"repro-sched service listening on {self.url} "
                    f"(db={self.store.path}, window={self.daemon.window}, "
                    f"recovered={self.recovered})"
                )
            while not stop_event.is_set():
                stop_event.wait(0.2)
            if announce is not None:
                announce("drain requested; finishing in-flight jobs...")
            self.stop()
            if announce is not None:
                counts = self.store.counts()
                announce(
                    f"drained cleanly (done={counts['done']} "
                    f"error={counts['error']} cancelled={counts['cancelled']} "
                    f"queued={counts['queued']})"
                )
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def wait_idle(self, timeout: float = 30.0, poll: float = 0.02) -> bool:
        """Block until no job is queued or running (testing convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.store.pending_count() == 0:
                return True
            time.sleep(poll)
        return False

    # -- the stats surface ----------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        """``GET /v1/stats``: the shared operational payload + service block."""
        payload = operational_stats(self.metrics)
        counts = self.store.counts()
        payload["service"] = {
            "state": "draining" if self.draining else self.daemon.state,
            "uptime": None
            if self.started_at is None
            else time.time() - self.started_at,
            "recovered_jobs": self.recovered,
            "jobs": counts,
            "queue_depth": counts["queued"] + counts["running"],
            "oldest_queued_age": self.store.oldest_queued_age(),
            "scheduler": self.daemon.stats(),
            "admission": self.admission.stats(),
        }
        return payload


def start_service(db_path: str, **kwargs: Any) -> ServiceServer:
    """Construct and start a :class:`ServiceServer` in one call."""
    return ServiceServer(db_path, **kwargs).start()
