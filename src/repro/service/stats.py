"""Operational statistics: one payload shape for CLI and HTTP surfaces.

``repro-sched stats`` and the daemon's ``GET /v1/stats`` must never drift
apart, so both render their output through :func:`operational_stats` here.
The payload has two process-level blocks that exist with or without a
running service:

* ``cache`` — :func:`repro.api.solve_cache_stats` verbatim: memory-tier
  size/hits/misses, fresh-solve count, and the disk tier's counters.
* ``engine`` / ``tasks`` — aggregated from a :class:`TaskMetrics`, which
  observes every result the runtime delivers (via
  :func:`repro.runtime.add_task_observer`) and accumulates the interval-DP
  engine's pruning/memoization counters plus per-status task totals.

The daemon installs its own :class:`TaskMetrics` for its lifetime; the CLI
reports the in-process counters (zero in a fresh process — the cache block
still carries the on-disk inventory), or fetches a live service's payload
with ``repro-sched stats --url``.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = ["TaskMetrics", "operational_stats"]

#: Engine counters aggregated by maximum instead of sum (high-water marks).
_PEAK_COUNTERS = frozenset({"peak_stack_depth"})


class TaskMetrics:
    """Thread-safe aggregation of delivered task results.

    ``observe(problem, result)`` matches the runtime task-observer
    signature, so an instance plugs straight into
    :func:`repro.runtime.add_task_observer`.  Counters mirror the fuzz
    driver's engine-profile semantics: additive counters sum across tasks,
    high-water marks (``peak_stack_depth``) take the maximum.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._statuses: Dict[str, int] = {}
        self._engine: Dict[str, int] = {}
        self._completed = 0

    def observe(self, problem: Any, result: Any) -> None:
        """Fold one delivered result into the counters."""
        status = str(getattr(result, "status", "unknown"))
        extra = getattr(result, "extra", None)
        engine_stats = None
        if isinstance(extra, dict):
            meta = extra.get("engine")
            if isinstance(meta, dict):
                stats = meta.get("stats")
                if isinstance(stats, dict):
                    engine_stats = stats
        with self._lock:
            self._completed += 1
            self._statuses[status] = self._statuses.get(status, 0) + 1
            if engine_stats:
                for name, value in engine_stats.items():
                    if not isinstance(value, int):
                        continue
                    if name in _PEAK_COUNTERS:
                        self._engine[name] = max(self._engine.get(name, 0), value)
                    else:
                        self._engine[name] = self._engine.get(name, 0) + value

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._statuses.clear()
            self._engine.clear()
            self._completed = 0

    def snapshot(self) -> Dict[str, Any]:
        """Consistent copy: ``{"tasks": {...}, "engine": {...}}``."""
        with self._lock:
            return {
                "tasks": {
                    "completed": self._completed,
                    "by_status": dict(sorted(self._statuses.items())),
                },
                "engine": dict(sorted(self._engine.items())),
            }


#: Metrics the bare CLI reports on; a daemon uses its own instance instead.
PROCESS_METRICS = TaskMetrics()


def operational_stats(metrics: Optional[TaskMetrics] = None) -> Dict[str, Any]:
    """The shared stats payload: cache tiers + engine counters + task totals.

    ``metrics`` defaults to the module-level :data:`PROCESS_METRICS`
    (all-zero unless something registered it as a task observer); the
    daemon passes its own live instance and layers a ``service`` block on
    top.
    """
    from ..api.solvers import solve_cache_stats

    payload: Dict[str, Any] = {"cache": solve_cache_stats()}
    payload.update((metrics or PROCESS_METRICS).snapshot())
    return payload
