"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  The concrete subclasses distinguish between
malformed inputs, infeasible instances and invalid schedules, because the
three situations call for different user reactions (fix the data, relax the
instance, or report a solver bug respectively).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class InvalidInstanceError(ReproError, ValueError):
    """Raised when an instance is structurally malformed.

    Examples: a job with a deadline earlier than its release time, a
    multi-interval job with an empty allowed-time set, a non-positive
    processor count, or a negative wake-up cost ``alpha``.
    """


class InfeasibleInstanceError(ReproError):
    """Raised when an instance admits no feasible schedule.

    Solvers that are asked for a schedule (rather than a feasibility flag)
    raise this exception when the underlying bipartite matching cannot
    saturate all jobs.
    """


class InvalidScheduleError(ReproError, ValueError):
    """Raised when a schedule object violates the problem constraints.

    This covers double-booked processor/time slots, jobs scheduled outside
    their allowed times, and schedules that reference unknown jobs.
    """


class SolverError(ReproError, RuntimeError):
    """Raised when a solver reaches an internal inconsistency.

    This should never happen for valid inputs; it indicates a bug and is
    used by internal assertions that are cheap enough to keep enabled.
    """


class EngineConfigurationError(ReproError, RuntimeError):
    """Raised when a requested DP evaluator cannot run in this environment.

    Currently: forcing ``engine="v3"`` (via ``build_engine``,
    ``set_default_engine``, or the CLI ``--engine v3`` flag) when numpy is
    not importable.  The vectorized evaluator is an optional fast path —
    install it with ``pip install 'repro-sched[speed]'`` — and the
    ``"auto"`` selector degrades to the scalar v2 evaluator instead of
    raising.
    """


class CacheConfigurationError(ReproError, OSError):
    """Raised when a requested cache directory cannot be used.

    Covers paths shadowed by an existing file, unwritable directories, and
    filesystem errors while preparing the layout.  Raised eagerly at
    configuration time (``configure_disk_cache`` / ``--cache-dir`` /
    ``REPRO_CACHE_DIR``) so a misconfigured cache fails before the first
    solve instead of during an arbitrary later write.  Also an
    :class:`OSError`, so pre-existing ``except OSError`` callers keep
    working.
    """
