"""Minimum-restart / throughput maximization (Theorem 11).

Given multi-interval unit jobs and a budget ``k`` on the number of gaps
("restarts"), maximise the number of scheduled jobs.  Theorem 11 of the
paper gives a greedy ``O(sqrt(n))``-approximation:

    repeat ``k`` times: find the largest time interval ``[a, b]`` such that
    ``b - a + 1`` still-unscheduled jobs can completely fill it (checked by
    maximum matching), and schedule those jobs in it.

Each selected *working interval* is a contiguous busy block, so ``k`` blocks
yield at most ``k`` gaps when, following the convention of Section 5, one of
the two infinite idle intervals is also counted as a gap (and at most
``k - 1`` internal gaps otherwise).  The solver reports both counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..matching import BipartiteGraph, hopcroft_karp
from .exceptions import InvalidInstanceError
from .jobs import MultiIntervalInstance
from .schedule import Schedule

__all__ = ["ThroughputResult", "WorkingInterval", "greedy_throughput_schedule"]


@dataclass(frozen=True)
class WorkingInterval:
    """A contiguous block of time completely filled by jobs."""

    start: int
    end: int
    jobs: Tuple[int, ...]

    @property
    def length(self) -> int:
        """Number of time slots (= number of jobs) in the block."""
        return self.end - self.start + 1


@dataclass
class ThroughputResult:
    """Result of the greedy throughput algorithm."""

    schedule: Schedule
    working_intervals: List[WorkingInterval]
    max_gaps: int

    @property
    def num_scheduled(self) -> int:
        """Number of scheduled jobs."""
        return self.schedule.num_scheduled

    @property
    def num_internal_gaps(self) -> int:
        """Gaps strictly between busy spans (finite idle intervals)."""
        return self.schedule.num_gaps()


def _saturating_fill(
    instance: MultiIntervalInstance,
    available: Sequence[int],
    start: int,
    end: int,
) -> Optional[Dict[int, int]]:
    """Try to fill every slot of [start, end] with distinct available jobs.

    Returns a job -> time assignment covering every slot, or ``None`` when
    the interval cannot be completely filled.
    """
    slots = list(range(start, end + 1))
    slot_ids = {t: i for i, t in enumerate(slots)}
    graph = BipartiteGraph(n_left=len(available))
    for local_idx, job_idx in enumerate(available):
        for t in instance.jobs[job_idx].times:
            if start <= t <= end:
                graph.add_edge(local_idx, t)
    match_left, match_right = hopcroft_karp(graph)
    matched_slots = {graph.right_label(rid) for rid in range(graph.n_right) if match_right[rid] != -1}
    if len(matched_slots) < len(slots) or any(t not in matched_slots for t in slots):
        return None
    assignment: Dict[int, int] = {}
    for local_idx, rid in enumerate(match_left):
        if rid != -1:
            t = graph.right_label(rid)
            assignment[available[local_idx]] = t
    # Keep only the jobs that landed inside the interval (all matched ones did).
    return assignment


def greedy_throughput_schedule(
    instance: MultiIntervalInstance, max_gaps: int
) -> ThroughputResult:
    """Run the Theorem 11 greedy: ``max_gaps`` rounds of largest fillable interval.

    Parameters
    ----------
    instance:
        The multi-interval instance.
    max_gaps:
        The gap budget ``k``; the greedy performs ``k`` rounds.

    Returns
    -------
    :class:`ThroughputResult` with the partial schedule (not all jobs need be
    scheduled) and the chosen working intervals in selection order.
    """
    if max_gaps < 0:
        raise InvalidInstanceError(f"max_gaps must be non-negative, got {max_gaps}")

    unscheduled: Set[int] = set(range(instance.num_jobs))
    assignment: Dict[int, int] = {}
    working_intervals: List[WorkingInterval] = []
    used_times: Set[int] = set()

    for _round in range(max_gaps):
        if not unscheduled:
            break
        available = sorted(unscheduled)
        candidate_times = sorted(
            {t for j in available for t in instance.jobs[j].times if t not in used_times}
        )
        if not candidate_times:
            break
        best_fill: Optional[Dict[int, int]] = None
        best_interval: Optional[Tuple[int, int]] = None
        # Enumerate candidate intervals by decreasing length; endpoints must be
        # allowed times of some available job, otherwise the border slot could
        # never be filled.
        intervals = [
            (a, b)
            for a in candidate_times
            for b in candidate_times
            if b >= a and not any(a <= t <= b for t in used_times)
        ]
        intervals.sort(key=lambda ab: (-(ab[1] - ab[0] + 1), ab[0]))
        for a, b in intervals:
            if best_interval is not None and (b - a + 1) <= (
                best_interval[1] - best_interval[0] + 1
            ):
                break
            if b - a + 1 > len(available):
                continue
            fill = _saturating_fill(instance, available, a, b)
            if fill is not None:
                best_fill = fill
                best_interval = (a, b)
                break
        if best_fill is None or best_interval is None:
            break
        a, b = best_interval
        scheduled_jobs = tuple(sorted(best_fill))
        working_intervals.append(WorkingInterval(start=a, end=b, jobs=scheduled_jobs))
        for job_idx, t in best_fill.items():
            assignment[job_idx] = t
            used_times.add(t)
            unscheduled.discard(job_idx)

    schedule = Schedule(instance=instance, assignment=assignment)
    schedule.validate(require_complete=False)
    return ThroughputResult(
        schedule=schedule, working_intervals=working_intervals, max_gaps=max_gaps
    )
