"""Split-aware instance decomposition for the exact interval DPs.

The interval dynamic programs are polynomial but superlinear, so an
instance whose jobs fall into *time-disjoint clusters* is much cheaper to
solve cluster by cluster than as one monolith — and the clusters are
independent: no feasible schedule moves work across an interval that no
job window covers.  This module finds those clusters; the orchestration
(solving components concurrently and merging their schedules) lives in
:mod:`repro.api.decomposition`.

Two detection mechanisms compose:

* **Idle-seam sweep** — sort jobs by release and track the running
  maximum deadline ``D``; when the next release ``r`` satisfies
  ``r - D - 1 >= min_seam`` the instances separate there.  ``min_seam``
  is objective-dependent: the gap objective needs at least one forbidden
  integer time between clusters (``min_seam = 1``) so busy runs can never
  merge across the seam, while the power objective needs the seam to be
  at least ``alpha`` so every cross-seam bridge saturates at
  ``min(stretch, alpha) = alpha`` and per-component wake-up costs add
  exactly (``min_seam = alpha``).
* **Hall-count saturation clipping** — anchored at the global horizon
  ends: whenever the jobs with deadline ``<= y`` *exactly* fill the
  ``p * (y - min_release + 1)`` slots of the prefix ``[min_release, y]``,
  every other job is forced past ``y`` and its release clips to
  ``y + 1`` (symmetrically for suffixes and deadlines).  Counts
  *exceeding* capacity prove infeasibility outright — the caller can
  short-circuit without running any DP.  Clipping runs to a fixpoint
  (releases only ever grow and deadlines only ever shrink) and preserves
  the instance's feasible-schedule set exactly, so components are built
  from the clipped windows.

A subtle honesty note on the second rule: a clip lands the affected
window *adjacent* to the saturated region (seam length 0), so for
objectives with ``min_seam >= 1`` saturation clipping does not by itself
mint new split points — its value here is the free infeasibility check,
tightened component windows, and genuine splits for ``min_seam = 0``
objectives (power with ``alpha = 0``).

Everything in this module is pure structure: no solver imports, no
caches, no threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .jobs import Job

__all__ = [
    "Component",
    "Decomposition",
    "clip_windows",
    "decompose_instance",
]


@dataclass(frozen=True)
class Component:
    """One independent cluster of jobs, in original absolute time.

    ``jobs`` carry the (possibly Hall-clipped) windows; ``job_indices``
    maps each position back to the job's index in the original instance,
    so merged schedules can be expressed against the caller's jobs.
    """

    jobs: Tuple[Job, ...]
    job_indices: Tuple[int, ...]
    start: int  # min release over the component (clipped)
    end: int  # max deadline over the component (clipped)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class Decomposition:
    """The outcome of split detection on one instance.

    ``seams`` holds the idle-interval length between consecutive
    components (``len(components) - 1`` entries, each ``>= min_seam``).
    ``infeasible`` is a *proof* from Hall counting — when set, the
    instance admits no feasible schedule and ``components`` is empty.
    """

    components: Tuple[Component, ...]
    seams: Tuple[int, ...]
    min_seam: float
    num_processors: int
    infeasible: bool = False
    clipped_jobs: int = 0

    @property
    def is_split(self) -> bool:
        """True when there is more than one component to solve."""
        return len(self.components) > 1


def _prefix_clip(
    windows: List[List[int]], num_processors: int
) -> Tuple[bool, bool]:
    """One prefix-saturation pass; returns ``(changed, infeasible)``.

    For every distinct deadline ``y`` (ascending), the jobs with
    ``deadline <= y`` must all run inside ``[min_release, y]``.  A count
    above ``p * (y - min_release + 1)`` is a Hall violation; an exact
    count pins every one of those slots busy, forcing all other windows
    past ``y``.
    """
    if not windows:
        return False, False
    min_release = min(w[0] for w in windows)
    changed = False
    by_deadline = sorted(range(len(windows)), key=lambda i: windows[i][1])
    count = 0
    idx = 0
    deadlines = sorted({w[1] for w in windows})
    for y in deadlines:
        while idx < len(by_deadline) and windows[by_deadline[idx]][1] <= y:
            count += 1
            idx += 1
        capacity = num_processors * (y - min_release + 1)
        if count > capacity:
            return changed, True
        if count == capacity:
            for w in windows:
                if w[1] > y and w[0] <= y:
                    w[0] = y + 1
                    changed = True
    return changed, False


def _suffix_clip(
    windows: List[List[int]], num_processors: int
) -> Tuple[bool, bool]:
    """Mirror of :func:`_prefix_clip` anchored at the maximum deadline."""
    if not windows:
        return False, False
    max_deadline = max(w[1] for w in windows)
    changed = False
    by_release = sorted(range(len(windows)), key=lambda i: -windows[i][0])
    count = 0
    idx = 0
    releases = sorted({w[0] for w in windows}, reverse=True)
    for x in releases:
        while idx < len(by_release) and windows[by_release[idx]][0] >= x:
            count += 1
            idx += 1
        capacity = num_processors * (max_deadline - x + 1)
        if count > capacity:
            return changed, True
        if count == capacity:
            for w in windows:
                if w[0] < x and w[1] >= x:
                    w[1] = x - 1
                    changed = True
    return changed, False


def clip_windows(
    jobs: Sequence[Job], num_processors: int
) -> Tuple[Tuple[Tuple[int, int], ...], bool, int]:
    """Hall-saturation window clipping, run to a fixpoint.

    Returns ``(windows, infeasible, clipped_jobs)`` where ``windows`` is
    the per-job ``(release, deadline)`` after clipping (original order)
    and ``clipped_jobs`` counts jobs whose window changed.  The clipped
    instance has exactly the same feasible schedules as the original.
    Termination: each pass only ever raises releases or lowers deadlines,
    both bounded by the finite horizon.
    """
    windows = [[job.release, job.deadline] for job in jobs]
    infeasible = False
    while True:
        changed_pre, bad = _prefix_clip(windows, num_processors)
        if bad:
            infeasible = True
            break
        changed_suf, bad = _suffix_clip(windows, num_processors)
        if bad:
            infeasible = True
            break
        if any(w[0] > w[1] for w in windows):
            infeasible = True
            break
        if not (changed_pre or changed_suf):
            break
    clipped = sum(
        1
        for job, w in zip(jobs, windows)
        if (job.release, job.deadline) != (w[0], w[1])
    )
    return tuple((w[0], w[1]) for w in windows), infeasible, clipped


def decompose_instance(
    jobs: Sequence[Job], num_processors: int, min_seam: float
) -> Decomposition:
    """Split ``jobs`` into independent components separated by idle seams.

    ``min_seam`` is the smallest number of window-free integer times that
    makes two clusters independent for the caller's objective (``1`` for
    gaps, ``alpha`` for power).  Windows are Hall-clipped first; a Hall
    violation (or a window inverted by clipping) yields an infeasibility
    proof with no components.
    """
    if num_processors < 1:
        raise ValueError(f"num_processors must be >= 1, got {num_processors}")
    if min_seam < 0:
        raise ValueError(f"min_seam must be >= 0, got {min_seam}")
    if not jobs:
        return Decomposition(
            components=(),
            seams=(),
            min_seam=min_seam,
            num_processors=num_processors,
        )
    windows, infeasible, clipped = clip_windows(jobs, num_processors)
    if infeasible:
        return Decomposition(
            components=(),
            seams=(),
            min_seam=min_seam,
            num_processors=num_processors,
            infeasible=True,
            clipped_jobs=clipped,
        )
    order = sorted(range(len(jobs)), key=lambda i: (windows[i][0], windows[i][1], i))
    groups: List[List[int]] = [[order[0]]]
    seams: List[int] = []
    max_deadline = windows[order[0]][1]
    for idx in order[1:]:
        release, deadline = windows[idx]
        seam = release - max_deadline - 1
        if seam >= min_seam:
            seams.append(seam)
            groups.append([idx])
        else:
            groups[-1].append(idx)
        max_deadline = max(max_deadline, deadline)
    components = []
    for group in groups:
        group_jobs = tuple(
            Job(
                release=windows[i][0],
                deadline=windows[i][1],
                name=jobs[i].name,
            )
            for i in group
        )
        components.append(
            Component(
                jobs=group_jobs,
                job_indices=tuple(group),
                start=min(w.release for w in group_jobs),
                end=max(w.deadline for w in group_jobs),
            )
        )
    return Decomposition(
        components=tuple(components),
        seams=tuple(seams),
        min_seam=min_seam,
        num_processors=num_processors,
        clipped_jobs=clipped,
    )
