"""Candidate ("relevant") time columns for the exact dynamic programs.

Baptiste [Bap06] proved that for unit jobs there is always an optimal
schedule in which the execution time of every job lies within distance ``n``
of some release time or deadline.  The paper extends the same argument to
the multiprocessor case (proof of Theorem 1).  The dynamic programs in
:mod:`repro.core.multiproc_gap_dp` and :mod:`repro.core.multiproc_power_dp`
therefore only ever place jobs at *candidate columns*:

``candidates = union over jobs j of [r_j, r_j + n] and [d_j - n, d_j]``,

clipped to the instance horizon.  For small horizons (at most
``SMALL_HORIZON_FACTOR * n + SMALL_HORIZON_SLACK`` columns) the full set of
integer times is used instead; this removes any reliance on the structural
lemma in the regime where the exhaustive test oracles run, so the
property-based tests compare solvers on exactly the same search space.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .jobs import Job, MultiprocessorInstance, OneIntervalInstance

__all__ = [
    "candidate_times",
    "candidate_times_for_jobs",
    "stretch_lengths",
    "SMALL_HORIZON_FACTOR",
    "SMALL_HORIZON_SLACK",
]

SMALL_HORIZON_FACTOR = 4
SMALL_HORIZON_SLACK = 16


def candidate_times_for_jobs(
    jobs: Sequence[Job], use_full_horizon: bool = False
) -> List[int]:
    """Sorted candidate execution times for ``jobs``.

    Parameters
    ----------
    jobs:
        The unit jobs of the instance.
    use_full_horizon:
        When true, return every integer time in the instance horizon
        regardless of size.  Used by test oracles.
    """
    if not jobs:
        return []
    n = len(jobs)
    lo = min(job.release for job in jobs)
    hi = max(job.deadline for job in jobs)
    horizon = hi - lo + 1

    if use_full_horizon or horizon <= SMALL_HORIZON_FACTOR * n + SMALL_HORIZON_SLACK:
        return list(range(lo, hi + 1))

    candidates = set()
    for job in jobs:
        start = max(lo, job.release)
        end = min(hi, job.release + n)
        candidates.update(range(start, end + 1))
        start = max(lo, job.deadline - n)
        end = min(hi, job.deadline)
        candidates.update(range(start, end + 1))
    return sorted(candidates)


def candidate_times(
    instance: "OneIntervalInstance | MultiprocessorInstance",
    use_full_horizon: bool = False,
) -> List[int]:
    """Candidate execution times for a one-interval or multiprocessor instance."""
    return candidate_times_for_jobs(instance.jobs, use_full_horizon=use_full_horizon)


def stretch_lengths(columns: Sequence[int]) -> Tuple[int, ...]:
    """Idle-stretch lengths between consecutive candidate columns.

    ``stretch_lengths(columns)[i]`` is the number of integer times strictly
    between ``columns[i]`` and ``columns[i + 1]``.  Together with the column
    count, the stretch vector determines the time geometry the interval DPs
    see: the gap objective reads only column adjacency from it and the power
    objective charges ``min(stretch, alpha)`` bridges over it, which is why
    :mod:`repro.core.canonical` preserves it exactly in the canonical key.
    """
    return tuple(
        columns[i + 1] - columns[i] - 1 for i in range(len(columns) - 1)
    )
