"""Core algorithms of the reproduction: data model, exact DPs, approximations."""

from .exceptions import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
    SolverError,
)
from .jobs import (
    Job,
    MultiIntervalInstance,
    MultiIntervalJob,
    MultiprocessorInstance,
    OneIntervalInstance,
    jobs_from_pairs,
)
from .schedule import (
    MultiprocessorSchedule,
    Schedule,
    gap_lengths_of_busy_times,
    gaps_of_busy_times,
    power_cost_of_busy_times,
    spans_of_busy_times,
)
from .feasibility import (
    complete_partial_schedule,
    edf_schedule,
    feasible_schedule,
    feasible_schedule_multiproc,
    is_feasible,
    is_feasible_multiproc,
)
from .baptiste import (
    BaptisteGapResult,
    BaptistePowerResult,
    minimize_gaps_single_processor,
    minimize_power_single_processor,
)
from .decompose import (
    Component,
    Decomposition,
    clip_windows,
    decompose_instance,
)
from .interval_dp import (
    ENGINE_CHOICES,
    ENGINE_NAME,
    ENGINE_VERSION,
    TRAMPOLINE_ENGINE_VERSION,
    EngineStats,
    GapObjective,
    IntervalDPEngine,
    PowerObjective,
    TrampolineDPEngine,
    build_engine,
)
from .multiproc_gap_dp import GapSolution, MultiprocessorGapSolver, solve_multiprocessor_gap
from .multiproc_power_dp import (
    MultiprocessorPowerSolver,
    PowerSolution,
    solve_multiprocessor_power,
)

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "InvalidScheduleError",
    "SolverError",
    "Job",
    "MultiIntervalJob",
    "OneIntervalInstance",
    "MultiprocessorInstance",
    "MultiIntervalInstance",
    "jobs_from_pairs",
    "Schedule",
    "MultiprocessorSchedule",
    "gaps_of_busy_times",
    "gap_lengths_of_busy_times",
    "spans_of_busy_times",
    "power_cost_of_busy_times",
    "is_feasible",
    "is_feasible_multiproc",
    "feasible_schedule",
    "feasible_schedule_multiproc",
    "edf_schedule",
    "complete_partial_schedule",
    "BaptisteGapResult",
    "BaptistePowerResult",
    "minimize_gaps_single_processor",
    "minimize_power_single_processor",
    "Component",
    "Decomposition",
    "clip_windows",
    "decompose_instance",
    "ENGINE_NAME",
    "ENGINE_VERSION",
    "ENGINE_CHOICES",
    "TRAMPOLINE_ENGINE_VERSION",
    "EngineStats",
    "IntervalDPEngine",
    "TrampolineDPEngine",
    "build_engine",
    "GapObjective",
    "PowerObjective",
    "MultiprocessorGapSolver",
    "GapSolution",
    "solve_multiprocessor_gap",
    "MultiprocessorPowerSolver",
    "PowerSolution",
    "solve_multiprocessor_power",
]
