"""Greedy 3-approximation for one-interval gap scheduling [FHKN06].

The paper's related-work section describes the following simple algorithm
for single-processor one-interval gap scheduling: repeatedly pick the
*largest* interval of time that can be declared idle while still leaving a
feasible schedule for all jobs (feasibility is checked with a maximum
matching), remove those time slots, and repeat until no further idle
interval can be inserted.  Feige, Hajiaghayi, Khanna and Naor proved that
this greedy is a 3-approximation; the easy bound is O(lg n) by analogy with
set cover.

This module implements the greedy exactly as described.  It serves as the
baseline against which the exact DP (Theorem 1 with p = 1) is compared in
experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..matching import BipartiteGraph, hopcroft_karp
from .exceptions import InfeasibleInstanceError
from .jobs import OneIntervalInstance
from .schedule import Schedule

__all__ = ["GreedyGapResult", "greedy_gap_schedule"]


@dataclass
class GreedyGapResult:
    """Result of the greedy gap-scheduling baseline."""

    feasible: bool
    num_gaps: Optional[int]
    schedule: Optional[Schedule]
    removed_intervals: List[Tuple[int, int]]


def _feasible_with_slots(instance: OneIntervalInstance, slots: Sequence[int]) -> bool:
    """Can all jobs be scheduled using only the given time slots?"""
    slot_set = set(slots)
    graph = BipartiteGraph(n_left=instance.num_jobs)
    for job_idx, job in enumerate(instance.jobs):
        for t in job.allowed_times():
            if t in slot_set:
                graph.add_edge(job_idx, t)
    match_left, _ = hopcroft_karp(graph)
    return all(m != -1 for m in match_left)


def _schedule_with_slots(
    instance: OneIntervalInstance, slots: Sequence[int]
) -> Schedule:
    slot_set = set(slots)
    graph = BipartiteGraph(n_left=instance.num_jobs)
    for job_idx, job in enumerate(instance.jobs):
        for t in job.allowed_times():
            if t in slot_set:
                graph.add_edge(job_idx, t)
    match_left, _ = hopcroft_karp(graph)
    if any(m == -1 for m in match_left):
        raise InfeasibleInstanceError("slot set became infeasible during greedy")
    assignment = {i: graph.right_label(r) for i, r in enumerate(match_left)}
    return Schedule(instance=instance, assignment=assignment)


def _candidate_idle_intervals(slots: List[int]) -> List[Tuple[int, int]]:
    """Candidate maximal idle intervals: contiguous sub-ranges of the slot list.

    Only intervals whose endpoints are existing slots matter, and removing an
    interval that is not flanked by retained slots can never create a gap, so
    it suffices to consider contiguous runs of currently available slots that
    are strictly inside the horizon.  Sorted by decreasing length.
    """
    candidates: List[Tuple[int, int]] = []
    n = len(slots)
    for i in range(n):
        for j in range(i, n):
            lo, hi = slots[i], slots[j]
            candidates.append((lo, hi))
    candidates.sort(key=lambda iv: (-(iv[1] - iv[0] + 1), iv[0]))
    return candidates


def greedy_gap_schedule(instance: OneIntervalInstance) -> GreedyGapResult:
    """Run the [FHKN06] greedy 3-approximation.

    Returns the schedule built on the surviving slots together with the list
    of idle intervals the greedy carved out (largest first).  When the
    instance is infeasible the result has ``feasible=False``.
    """
    n = instance.num_jobs
    if n == 0:
        return GreedyGapResult(
            feasible=True,
            num_gaps=0,
            schedule=Schedule(instance=instance, assignment={}),
            removed_intervals=[],
        )

    lo, hi = instance.horizon
    slots = list(range(lo, hi + 1))
    if not _feasible_with_slots(instance, slots):
        return GreedyGapResult(
            feasible=False, num_gaps=None, schedule=None, removed_intervals=[]
        )

    removed: List[Tuple[int, int]] = []
    while True:
        slot_list = sorted(slots)
        best: Optional[Tuple[int, int]] = None
        for interval in _candidate_idle_intervals(slot_list):
            a, b = interval
            remaining = [t for t in slot_list if t < a or t > b]
            if len(remaining) < n:
                continue
            if _feasible_with_slots(instance, remaining):
                best = interval
                break
        if best is None:
            break
        a, b = best
        removed.append(best)
        slots = [t for t in slots if t < a or t > b]

    schedule = _schedule_with_slots(instance, slots)
    schedule.validate()
    return GreedyGapResult(
        feasible=True,
        num_gaps=schedule.num_gaps(),
        schedule=schedule,
        removed_intervals=removed,
    )
