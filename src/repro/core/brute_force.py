"""Exact exponential-time oracles used to validate the polynomial solvers.

Every optimization problem in the paper has a small-instance brute-force
solver here.  These are deliberately written in the most direct way possible
(enumerate, evaluate, take the best) so that they can serve as independent
ground truth for the property-based tests and for the small-scale columns of
the experiment tables.  They must only be called on small instances; each
function documents its practical size limit.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .jobs import (
    Job,
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from .schedule import (
    MultiprocessorSchedule,
    Schedule,
    gaps_of_busy_times,
    power_cost_of_busy_times,
)

__all__ = [
    "brute_force_gap_single",
    "brute_force_gap_multiproc",
    "brute_force_power_multiproc",
    "brute_force_gap_multi_interval",
    "brute_force_power_multi_interval",
    "brute_force_throughput",
    "enumerate_time_assignments",
]

SingleInstance = Union[OneIntervalInstance, MultiIntervalInstance]


def _allowed_times(instance: SingleInstance) -> List[List[int]]:
    allowed: List[List[int]] = []
    for job in instance.jobs:
        if isinstance(job, Job):
            allowed.append(list(job.allowed_times()))
        else:
            allowed.append(list(job.times))
    return allowed


def enumerate_time_assignments(
    allowed: Sequence[Sequence[int]], capacity: int = 1
) -> Iterable[Dict[int, int]]:
    """Yield every assignment of jobs to times respecting per-time ``capacity``.

    Backtracks over jobs in index order; intended for n <= ~9 jobs.
    """
    n = len(allowed)
    usage: Dict[int, int] = {}
    current: Dict[int, int] = {}

    def backtrack(job_idx: int):
        if job_idx == n:
            yield dict(current)
            return
        for t in allowed[job_idx]:
            if usage.get(t, 0) >= capacity:
                continue
            usage[t] = usage.get(t, 0) + 1
            current[job_idx] = t
            yield from backtrack(job_idx + 1)
            usage[t] -= 1
            del current[job_idx]

    yield from backtrack(0)


def _stack_staircase(
    instance: MultiprocessorInstance, times: Dict[int, int]
) -> MultiprocessorSchedule:
    by_time: Dict[int, List[int]] = {}
    for job_idx, t in times.items():
        by_time.setdefault(t, []).append(job_idx)
    assignment: Dict[int, Tuple[int, int]] = {}
    for t, job_indices in by_time.items():
        for level, job_idx in enumerate(sorted(job_indices), start=1):
            assignment[job_idx] = (level, t)
    return MultiprocessorSchedule(instance=instance, assignment=assignment)


def brute_force_gap_single(
    instance: SingleInstance,
) -> Tuple[Optional[int], Optional[Schedule]]:
    """Optimal (gap count, schedule) for a single-processor instance, or (None, None).

    Practical limit: about 9 jobs with windows of length up to ~8.
    """
    allowed = _allowed_times(instance)
    best_gaps: Optional[int] = None
    best_assignment: Optional[Dict[int, int]] = None
    for assignment in enumerate_time_assignments(allowed, capacity=1):
        gaps = gaps_of_busy_times(assignment.values())
        if best_gaps is None or gaps < best_gaps:
            best_gaps = gaps
            best_assignment = assignment
    if best_assignment is None:
        if not allowed:
            return 0, Schedule(instance=instance, assignment={})
        return None, None
    return best_gaps, Schedule(instance=instance, assignment=best_assignment)


def brute_force_gap_multiproc(
    instance: MultiprocessorInstance, exhaustive_processors: bool = False
) -> Tuple[Optional[int], Optional[MultiprocessorSchedule]]:
    """Optimal (total gaps, schedule) for a multiprocessor instance, or (None, None).

    By default job-to-time assignments are enumerated and processors are
    filled in staircase order, which is optimal by Lemma 1 of the paper.
    With ``exhaustive_processors=True`` every explicit processor assignment
    is enumerated as well (only sensible for ~5 jobs and 2 processors); the
    test-suite uses this mode to validate Lemma 1 itself.
    """
    allowed = [list(job.allowed_times()) for job in instance.jobs]
    p = instance.num_processors
    best_gaps: Optional[int] = None
    best_schedule: Optional[MultiprocessorSchedule] = None

    if not allowed:
        return 0, MultiprocessorSchedule(instance=instance, assignment={})

    if exhaustive_processors:
        slot_options = [
            [(proc, t) for t in times for proc in range(1, p + 1)] for times in allowed
        ]
        for combo in itertools.product(*slot_options):
            if len(set(combo)) != len(combo):
                continue
            schedule = MultiprocessorSchedule(
                instance=instance,
                assignment={i: slot for i, slot in enumerate(combo)},
            )
            gaps = schedule.num_gaps()
            if best_gaps is None or gaps < best_gaps:
                best_gaps = gaps
                best_schedule = schedule
        return best_gaps, best_schedule

    for assignment in enumerate_time_assignments(allowed, capacity=p):
        schedule = _stack_staircase(instance, assignment)
        gaps = schedule.num_gaps()
        if best_gaps is None or gaps < best_gaps:
            best_gaps = gaps
            best_schedule = schedule
    return best_gaps, best_schedule


def brute_force_power_multiproc(
    instance: MultiprocessorInstance, alpha: float
) -> Tuple[Optional[float], Optional[MultiprocessorSchedule]]:
    """Optimal (power, schedule) for a multiprocessor instance, or (None, None).

    Uses the staircase stacking justified by Lemma 2.  Practical limit: about
    8 jobs.
    """
    allowed = [list(job.allowed_times()) for job in instance.jobs]
    if not allowed:
        return 0.0, MultiprocessorSchedule(instance=instance, assignment={})
    p = instance.num_processors
    best_power: Optional[float] = None
    best_schedule: Optional[MultiprocessorSchedule] = None
    for assignment in enumerate_time_assignments(allowed, capacity=p):
        schedule = _stack_staircase(instance, assignment)
        power = schedule.power_cost(alpha)
        if best_power is None or power < best_power:
            best_power = power
            best_schedule = schedule
    return best_power, best_schedule


def brute_force_gap_multi_interval(
    instance: MultiIntervalInstance,
) -> Tuple[Optional[int], Optional[Schedule]]:
    """Optimal (gap count, schedule) for a multi-interval instance, or (None, None)."""
    return brute_force_gap_single(instance)


def brute_force_power_multi_interval(
    instance: MultiIntervalInstance, alpha: float
) -> Tuple[Optional[float], Optional[Schedule]]:
    """Optimal (power, schedule) for a multi-interval instance, or (None, None)."""
    allowed = _allowed_times(instance)
    best_power: Optional[float] = None
    best_assignment: Optional[Dict[int, int]] = None
    for assignment in enumerate_time_assignments(allowed, capacity=1):
        power = power_cost_of_busy_times(assignment.values(), alpha)
        if best_power is None or power < best_power:
            best_power = power
            best_assignment = assignment
    if best_assignment is None:
        if not allowed:
            return 0.0, Schedule(instance=instance, assignment={})
        return None, None
    return best_power, Schedule(instance=instance, assignment=best_assignment)


def brute_force_throughput(
    instance: MultiIntervalInstance, max_gaps: int
) -> Tuple[int, Optional[Schedule]]:
    """Maximum number of jobs schedulable with at most ``max_gaps`` gaps.

    Enumerates job subsets from largest to smallest and, for each subset,
    every assignment; stops at the first subset size that admits a schedule
    within the gap budget.  Practical limit: about 8 jobs.
    """
    n = instance.num_jobs
    allowed = _allowed_times(instance)
    for size in range(n, 0, -1):
        for subset in itertools.combinations(range(n), size):
            subset_allowed = [allowed[i] for i in subset]
            for assignment in enumerate_time_assignments(subset_allowed, capacity=1):
                times = list(assignment.values())
                if gaps_of_busy_times(times) <= max_gaps:
                    mapped = {
                        subset[local]: t for local, t in assignment.items()
                    }
                    return size, Schedule(instance=instance, assignment=mapped)
    return 0, Schedule(instance=instance, assignment={})
