"""Job and instance data model.

The paper considers unit-length jobs in three settings:

* **One-interval** jobs (Section 2 and the Baptiste substrate): each job has
  an integer release time ``release`` and an integer deadline ``deadline``
  and may execute at any integer time ``t`` with ``release <= t <= deadline``.
* **Multi-interval** jobs (Sections 3-6): each job has an explicit set of
  integer times at which it may execute.
* **Multiprocessor** instances (Section 2): one-interval jobs plus a number
  of identical processors ``p``; each (processor, time) slot holds at most
  one job.

All classes in this module are immutable value objects.  They deliberately
store *sorted tuples* rather than sets so that instances hash, compare and
repr deterministically, which matters for memoised dynamic programs and for
reproducible experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .exceptions import InvalidInstanceError

__all__ = [
    "Job",
    "MultiIntervalJob",
    "OneIntervalInstance",
    "MultiprocessorInstance",
    "MultiIntervalInstance",
    "jobs_from_pairs",
]


@dataclass(frozen=True, order=True)
class Job:
    """A unit-length job with a single contiguous execution window.

    Parameters
    ----------
    release:
        Earliest integer time at which the job may run.
    deadline:
        Latest integer time at which the job may run (inclusive).
    name:
        Optional human-readable identifier used in schedules and reports.
    """

    release: int
    deadline: int
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.release, int) or not isinstance(self.deadline, int):
            raise InvalidInstanceError(
                f"job release/deadline must be integers, got "
                f"({self.release!r}, {self.deadline!r})"
            )
        if self.deadline < self.release:
            raise InvalidInstanceError(
                f"job deadline {self.deadline} precedes release {self.release}"
            )

    @property
    def window(self) -> Tuple[int, int]:
        """The inclusive ``(release, deadline)`` window."""
        return (self.release, self.deadline)

    @property
    def window_length(self) -> int:
        """Number of allowed time slots (``deadline - release + 1``)."""
        return self.deadline - self.release + 1

    def allowed_times(self) -> range:
        """Iterate over the allowed integer times of this job."""
        return range(self.release, self.deadline + 1)

    def can_run_at(self, time: int) -> bool:
        """Return ``True`` when the job may execute at integer ``time``."""
        return self.release <= time <= self.deadline

    def to_multi_interval(self) -> "MultiIntervalJob":
        """View this job as a multi-interval job with one contiguous interval."""
        return MultiIntervalJob(times=tuple(self.allowed_times()), name=self.name)


@dataclass(frozen=True)
class MultiIntervalJob:
    """A unit-length job that may execute at an arbitrary set of times.

    ``times`` is stored as a sorted, de-duplicated tuple of integers.  The
    "intervals" of the paper are recovered by :meth:`intervals`, which groups
    consecutive integers into maximal runs.
    """

    times: Tuple[int, ...]
    name: str = field(default="", compare=False)

    def __init__(self, times: Iterable[int], name: str = "") -> None:
        normalized = tuple(sorted(set(int(t) for t in times)))
        if not normalized:
            raise InvalidInstanceError("multi-interval job needs at least one allowed time")
        object.__setattr__(self, "times", normalized)
        object.__setattr__(self, "name", name)

    @property
    def num_times(self) -> int:
        """Number of allowed time slots."""
        return len(self.times)

    def can_run_at(self, time: int) -> bool:
        """Return ``True`` when the job may execute at integer ``time``."""
        return time in self._time_set()

    def _time_set(self) -> frozenset:
        # A tiny cached set; recomputing is cheap but this is on hot paths of
        # the matching-based solvers.
        cached = getattr(self, "_cached_time_set", None)
        if cached is None:
            cached = frozenset(self.times)
            object.__setattr__(self, "_cached_time_set", cached)
        return cached

    def intervals(self) -> List[Tuple[int, int]]:
        """Return maximal runs of consecutive allowed times as ``(lo, hi)`` pairs."""
        runs: List[Tuple[int, int]] = []
        start = prev = self.times[0]
        for t in self.times[1:]:
            if t == prev + 1:
                prev = t
                continue
            runs.append((start, prev))
            start = prev = t
        runs.append((start, prev))
        return runs

    @property
    def num_intervals(self) -> int:
        """Number of maximal contiguous intervals of allowed times."""
        return len(self.intervals())

    @classmethod
    def from_intervals(
        cls, intervals: Iterable[Tuple[int, int]], name: str = ""
    ) -> "MultiIntervalJob":
        """Build a job from inclusive ``(lo, hi)`` interval pairs."""
        times: List[int] = []
        for lo, hi in intervals:
            if hi < lo:
                raise InvalidInstanceError(f"interval ({lo}, {hi}) is empty")
            times.extend(range(lo, hi + 1))
        return cls(times=times, name=name)


def jobs_from_pairs(pairs: Iterable[Tuple[int, int]]) -> List[Job]:
    """Convenience constructor: build :class:`Job` objects from (release, deadline) pairs."""
    return [Job(release=r, deadline=d, name=f"j{i}") for i, (r, d) in enumerate(pairs)]


class _JobCollectionMixin:
    """Shared helpers for instances that carry a tuple of one-interval jobs."""

    jobs: Tuple[Job, ...]

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the instance."""
        return len(self.jobs)

    @property
    def releases(self) -> Tuple[int, ...]:
        """Release times in job order."""
        return tuple(job.release for job in self.jobs)

    @property
    def deadlines(self) -> Tuple[int, ...]:
        """Deadlines in job order."""
        return tuple(job.deadline for job in self.jobs)

    @property
    def horizon(self) -> Tuple[int, int]:
        """The inclusive ``(min release, max deadline)`` time horizon."""
        if not self.jobs:
            return (0, 0)
        return (min(self.releases), max(self.deadlines))

    def jobs_sorted_by_deadline(self) -> List[int]:
        """Return job indices sorted by (deadline, release, index)."""
        return sorted(
            range(len(self.jobs)),
            key=lambda i: (self.jobs[i].deadline, self.jobs[i].release, i),
        )

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class OneIntervalInstance(_JobCollectionMixin):
    """A single-processor instance of one-interval unit jobs.

    This is the classical setting of Baptiste [Bap06]: schedule every job at
    a distinct integer time inside its window on one machine, minimizing the
    number of gaps (or the power cost for the power variant).
    """

    jobs: Tuple[Job, ...]

    def __init__(self, jobs: Iterable[Job]) -> None:
        object.__setattr__(self, "jobs", tuple(jobs))
        for job in self.jobs:
            if not isinstance(job, Job):
                raise InvalidInstanceError(f"expected Job, got {type(job)!r}")

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "OneIntervalInstance":
        """Build an instance from ``(release, deadline)`` pairs."""
        return cls(jobs_from_pairs(pairs))

    def to_multiprocessor(self, num_processors: int = 1) -> "MultiprocessorInstance":
        """Lift this instance to a multiprocessor instance with ``num_processors`` machines."""
        return MultiprocessorInstance(jobs=self.jobs, num_processors=num_processors)

    def to_multi_interval(self) -> "MultiIntervalInstance":
        """View the instance as a multi-interval instance (one interval per job)."""
        return MultiIntervalInstance(jobs=[job.to_multi_interval() for job in self.jobs])


@dataclass(frozen=True)
class MultiprocessorInstance(_JobCollectionMixin):
    """One-interval unit jobs on ``num_processors`` identical processors.

    This is the input of Theorem 1 (gap scheduling) and Theorem 2 (power
    minimization) of the paper.
    """

    jobs: Tuple[Job, ...]
    num_processors: int

    def __init__(self, jobs: Iterable[Job], num_processors: int) -> None:
        object.__setattr__(self, "jobs", tuple(jobs))
        object.__setattr__(self, "num_processors", int(num_processors))
        if self.num_processors < 1:
            raise InvalidInstanceError(
                f"need at least one processor, got {self.num_processors}"
            )
        for job in self.jobs:
            if not isinstance(job, Job):
                raise InvalidInstanceError(f"expected Job, got {type(job)!r}")

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[int, int]], num_processors: int
    ) -> "MultiprocessorInstance":
        """Build an instance from ``(release, deadline)`` pairs."""
        return cls(jobs_from_pairs(pairs), num_processors=num_processors)

    def single_processor_view(self) -> OneIntervalInstance:
        """Drop the processor count (useful when ``num_processors == 1``)."""
        return OneIntervalInstance(self.jobs)


@dataclass(frozen=True)
class MultiIntervalInstance:
    """A single-processor instance of multi-interval unit jobs.

    This is the input of Sections 3-6 of the paper: each job carries an
    explicit set of allowed times; a schedule assigns each job a distinct
    allowed time; a gap is a finite maximal interval of idle time.
    """

    jobs: Tuple[MultiIntervalJob, ...]

    def __init__(self, jobs: Iterable[MultiIntervalJob]) -> None:
        normalized: List[MultiIntervalJob] = []
        for job in jobs:
            if isinstance(job, Job):
                job = job.to_multi_interval()
            if not isinstance(job, MultiIntervalJob):
                raise InvalidInstanceError(
                    f"expected MultiIntervalJob, got {type(job)!r}"
                )
            normalized.append(job)
        object.__setattr__(self, "jobs", tuple(normalized))

    @classmethod
    def from_time_lists(
        cls, time_lists: Iterable[Iterable[int]]
    ) -> "MultiIntervalInstance":
        """Build an instance from an iterable of allowed-time iterables."""
        return cls(
            [
                MultiIntervalJob(times=times, name=f"j{i}")
                for i, times in enumerate(time_lists)
            ]
        )

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the instance."""
        return len(self.jobs)

    @property
    def all_times(self) -> Tuple[int, ...]:
        """Sorted union of all allowed times across jobs."""
        union = set()
        for job in self.jobs:
            union.update(job.times)
        return tuple(sorted(union))

    @property
    def horizon(self) -> Tuple[int, int]:
        """The inclusive ``(earliest allowed time, latest allowed time)`` horizon."""
        times = self.all_times
        if not times:
            return (0, 0)
        return (times[0], times[-1])

    def max_intervals_per_job(self) -> int:
        """Maximum number of maximal contiguous intervals over all jobs."""
        if not self.jobs:
            return 0
        return max(job.num_intervals for job in self.jobs)

    def is_unit_interval(self) -> bool:
        """True when every maximal interval of every job has length one."""
        return all(
            all(hi == lo for lo, hi in job.intervals()) for job in self.jobs
        )

    def is_disjoint_unit(self) -> bool:
        """True when the instance is a *disjoint-unit* instance (Section 5.3).

        In a disjoint-unit instance the allowed-time sets of distinct jobs are
        pairwise disjoint (each time belongs to at most one job).
        """
        seen: Dict[int, int] = {}
        for idx, job in enumerate(self.jobs):
            for t in job.times:
                if t in seen and seen[t] != idx:
                    return False
                seen[t] = idx
        return True

    def allowed_map(self) -> Dict[int, List[int]]:
        """Map each time to the list of job indices that may run there."""
        mapping: Dict[int, List[int]] = {}
        for idx, job in enumerate(self.jobs):
            for t in job.times:
                mapping.setdefault(t, []).append(idx)
        return mapping

    def __iter__(self) -> Iterator[MultiIntervalJob]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)
