"""Single-processor optimal gap and power scheduling (Baptiste's problem).

Baptiste [Bap06] gave the first polynomial-time algorithm for scheduling
unit jobs with release times and deadlines on one machine while minimizing
the number of idle periods (gaps); the same dynamic program also minimizes
power with wake-up cost ``alpha``.  The paper's Theorem 1/2 dynamic program
contains Baptiste's algorithm as the special case ``p = 1``, and this module
exposes exactly that specialization by binding the gap/power objectives onto
the shared :class:`~repro.core.interval_dp.IntervalDPEngine` at ``p = 1``.
The engine's ``job -> time`` assignment is used directly, so schedules come
back as plain :class:`~repro.core.schedule.Schedule` objects with no
multiprocessor round-trip.

These functions are the exact baselines used throughout the experiment
harness (e.g. against the greedy 3-approximation of [FHKN06] and against the
online lower-bound family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from .dp_profile import IntervalDecomposition
from .exceptions import InfeasibleInstanceError
from .interval_dp import GapObjective, PowerObjective, build_engine
from .jobs import MultiprocessorInstance, OneIntervalInstance
from .schedule import Schedule

__all__ = [
    "BaptisteGapResult",
    "BaptistePowerResult",
    "minimize_gaps_single_processor",
    "minimize_power_single_processor",
]


@dataclass
class BaptisteGapResult:
    """Optimal single-processor gap scheduling result."""

    feasible: bool
    num_gaps: Optional[int]
    schedule: Optional[Schedule]
    engine: Optional[Dict] = None


@dataclass
class BaptistePowerResult:
    """Optimal single-processor power minimization result."""

    feasible: bool
    power: Optional[float]
    schedule: Optional[Schedule]
    alpha: float
    engine: Optional[Dict] = None


def _as_single_processor(
    instance: Union[OneIntervalInstance, MultiprocessorInstance]
) -> OneIntervalInstance:
    if isinstance(instance, MultiprocessorInstance):
        if instance.num_processors != 1:
            raise InfeasibleInstanceError(
                "single-processor solver called with a multiprocessor instance; "
                "use MultiprocessorGapSolver / MultiprocessorPowerSolver instead"
            )
        return instance.single_processor_view()
    return instance


def _run_engine(
    single: OneIntervalInstance, objective, use_full_horizon: bool
) -> Tuple[Optional[Tuple[float, Schedule]], Dict]:
    """Run the shared engine at p = 1 and lift the assignment to a Schedule."""
    engine = build_engine(
        IntervalDecomposition(
            single.to_multiprocessor(1), use_full_horizon=use_full_horizon
        ),
        objective,
    )
    outcome = engine.solve()
    if not outcome.feasible:
        return None, engine.metadata()
    schedule = Schedule(instance=single, assignment=dict(outcome.assignment))
    schedule.validate()
    return (outcome.value, schedule), engine.metadata()


def minimize_gaps_single_processor(
    instance: Union[OneIntervalInstance, MultiprocessorInstance],
    use_full_horizon: bool = False,
) -> BaptisteGapResult:
    """Minimize the number of gaps of a single-processor one-interval instance.

    Returns a :class:`BaptisteGapResult`; ``feasible`` is ``False`` when the
    jobs cannot all be scheduled.
    """
    single = _as_single_processor(instance)
    solved, metadata = _run_engine(single, GapObjective(1), use_full_horizon)
    if solved is None:
        return BaptisteGapResult(
            feasible=False, num_gaps=None, schedule=None, engine=metadata
        )
    value, schedule = solved
    return BaptisteGapResult(
        feasible=True, num_gaps=int(value), schedule=schedule, engine=metadata
    )


def minimize_power_single_processor(
    instance: Union[OneIntervalInstance, MultiprocessorInstance],
    alpha: float,
    use_full_horizon: bool = False,
) -> BaptistePowerResult:
    """Minimize the power cost of a single-processor one-interval instance."""
    single = _as_single_processor(instance)
    solved, metadata = _run_engine(single, PowerObjective(1, alpha), use_full_horizon)
    if solved is None:
        return BaptistePowerResult(
            feasible=False, power=None, schedule=None, alpha=float(alpha), engine=metadata
        )
    value, schedule = solved
    return BaptistePowerResult(
        feasible=True,
        power=float(value),
        schedule=schedule,
        alpha=float(alpha),
        engine=metadata,
    )
