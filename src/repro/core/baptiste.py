"""Single-processor optimal gap and power scheduling (Baptiste's problem).

Baptiste [Bap06] gave the first polynomial-time algorithm for scheduling
unit jobs with release times and deadlines on one machine while minimizing
the number of idle periods (gaps); the same dynamic program also minimizes
power with wake-up cost ``alpha``.  The paper's Theorem 1/2 dynamic program
contains Baptiste's algorithm as the special case ``p = 1``, and this module
exposes exactly that specialization with a single-processor-friendly API:
schedules are returned as plain :class:`~repro.core.schedule.Schedule`
objects (job -> time) instead of multiprocessor schedules.

These functions are the exact baselines used throughout the experiment
harness (e.g. against the greedy 3-approximation of [FHKN06] and against the
online lower-bound family).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .exceptions import InfeasibleInstanceError
from .jobs import MultiprocessorInstance, OneIntervalInstance
from .multiproc_gap_dp import MultiprocessorGapSolver
from .multiproc_power_dp import MultiprocessorPowerSolver
from .schedule import Schedule

__all__ = [
    "BaptisteGapResult",
    "BaptistePowerResult",
    "minimize_gaps_single_processor",
    "minimize_power_single_processor",
]


@dataclass
class BaptisteGapResult:
    """Optimal single-processor gap scheduling result."""

    feasible: bool
    num_gaps: Optional[int]
    schedule: Optional[Schedule]


@dataclass
class BaptistePowerResult:
    """Optimal single-processor power minimization result."""

    feasible: bool
    power: Optional[float]
    schedule: Optional[Schedule]
    alpha: float


def _as_single_processor(
    instance: Union[OneIntervalInstance, MultiprocessorInstance]
) -> OneIntervalInstance:
    if isinstance(instance, MultiprocessorInstance):
        if instance.num_processors != 1:
            raise InfeasibleInstanceError(
                "single-processor solver called with a multiprocessor instance; "
                "use MultiprocessorGapSolver / MultiprocessorPowerSolver instead"
            )
        return instance.single_processor_view()
    return instance


def minimize_gaps_single_processor(
    instance: Union[OneIntervalInstance, MultiprocessorInstance],
    use_full_horizon: bool = False,
) -> BaptisteGapResult:
    """Minimize the number of gaps of a single-processor one-interval instance.

    Returns a :class:`BaptisteGapResult`; ``feasible`` is ``False`` when the
    jobs cannot all be scheduled.
    """
    single = _as_single_processor(instance)
    solver = MultiprocessorGapSolver(
        single.to_multiprocessor(1), use_full_horizon=use_full_horizon
    )
    solution = solver.solve()
    if not solution.feasible or solution.schedule is None:
        return BaptisteGapResult(feasible=False, num_gaps=None, schedule=None)
    assignment = {job: t for job, (_proc, t) in solution.schedule.assignment.items()}
    schedule = Schedule(instance=single, assignment=assignment)
    schedule.validate()
    return BaptisteGapResult(
        feasible=True, num_gaps=solution.num_gaps, schedule=schedule
    )


def minimize_power_single_processor(
    instance: Union[OneIntervalInstance, MultiprocessorInstance],
    alpha: float,
    use_full_horizon: bool = False,
) -> BaptistePowerResult:
    """Minimize the power cost of a single-processor one-interval instance."""
    single = _as_single_processor(instance)
    solver = MultiprocessorPowerSolver(
        single.to_multiprocessor(1), alpha=alpha, use_full_horizon=use_full_horizon
    )
    solution = solver.solve()
    if not solution.feasible or solution.schedule is None:
        return BaptistePowerResult(
            feasible=False, power=None, schedule=None, alpha=float(alpha)
        )
    assignment = {job: t for job, (_proc, t) in solution.schedule.assignment.items()}
    schedule = Schedule(instance=single, assignment=assignment)
    schedule.validate()
    return BaptistePowerResult(
        feasible=True, power=solution.power, schedule=schedule, alpha=float(alpha)
    )
