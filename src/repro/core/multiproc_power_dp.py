"""Exact multiprocessor power minimization (Theorem 2 of the paper).

Problem
-------
As in multiprocessor gap scheduling, ``n`` unit jobs with release times and
deadlines run on ``p`` identical processors.  Each processor starts asleep,
pays ``alpha`` for every transition to the active state and one unit of
energy per active time unit, and may remain active while idle (so a gap of
length ``g`` costs ``min(g, alpha)``).  The objective is the total power:
active time plus ``alpha`` times the number of wake-ups, summed over
processors.

Algorithm
---------
A thin binding of :class:`~repro.core.interval_dp.PowerObjective` onto the
shared :class:`~repro.core.interval_dp.IntervalDPEngine` — the same interval
DP as the gap solver with the state reinterpreted exactly as in the proof of
Theorem 2: the boundary parameters count *active* processors rather than
busy processors, the subproblem value is a scalar, and idle-but-active
stretches between busy columns are folded into a closed-form *bridging*
charge (``min(stretch length, alpha)`` per processor active on both sides),
which keeps the DP on the polynomial set of candidate columns (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from .dp_profile import IntervalDecomposition
from .exceptions import InfeasibleInstanceError
from .interval_dp import PowerObjective, build_engine, staircase_schedule
from .jobs import MultiprocessorInstance, OneIntervalInstance
from .schedule import MultiprocessorSchedule

__all__ = ["MultiprocessorPowerSolver", "PowerSolution", "solve_multiprocessor_power"]


@dataclass
class PowerSolution:
    """Result of the exact power solver."""

    feasible: bool
    power: Optional[float]
    schedule: Optional[MultiprocessorSchedule]
    alpha: float

    def require_schedule(self) -> MultiprocessorSchedule:
        """Return the schedule, raising :class:`InfeasibleInstanceError` if absent."""
        if not self.feasible or self.schedule is None:
            raise InfeasibleInstanceError("instance admits no feasible schedule")
        return self.schedule


class MultiprocessorPowerSolver:
    """Exact solver for multiprocessor power minimization (Theorem 2).

    Parameters
    ----------
    instance:
        The multiprocessor instance (a one-interval instance is treated as a
        single-processor instance).
    alpha:
        Non-negative wake-up (transition) cost.
    use_full_horizon:
        Use all integer times as candidate columns (tests only).
    engine:
        Evaluator selector: ``"v3"`` (vectorized, requires numpy), ``"v2"``
        (bottom-up array-packed scalar), ``"v1"`` (legacy generator
        trampoline, kept for benchmarks), or ``"auto"``.  ``None`` (the
        default) resolves through the process-wide default — ``"auto"``
        unless overridden with
        :func:`~repro.core.interval_dp.set_default_engine`.
    """

    def __init__(
        self,
        instance: Union[MultiprocessorInstance, OneIntervalInstance],
        alpha: float,
        use_full_horizon: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        if isinstance(instance, OneIntervalInstance):
            instance = instance.to_multiprocessor(1)
        self.instance = instance
        self.alpha = float(alpha)
        self.p = instance.num_processors
        self.decomp = IntervalDecomposition(instance, use_full_horizon=use_full_horizon)
        # PowerObjective validates alpha >= 0.
        self.engine = build_engine(
            self.decomp, PowerObjective(self.p, alpha), engine=engine
        )

    def solve(self) -> PowerSolution:
        """Solve the instance, returning the optimal power and a schedule."""
        outcome = self.engine.solve()
        if not outcome.feasible:
            return PowerSolution(
                feasible=False, power=None, schedule=None, alpha=self.alpha
            )
        schedule = staircase_schedule(self.instance, outcome.assignment)
        return PowerSolution(
            feasible=True,
            power=float(outcome.value),
            schedule=schedule,
            alpha=self.alpha,
        )

    def optimal_power(self) -> Optional[float]:
        """Convenience wrapper returning only the optimal power (None if infeasible)."""
        solution = self.solve()
        return solution.power if solution.feasible else None

    def engine_metadata(self) -> Dict:
        """Engine identification plus pruning/memo statistics (JSON-native)."""
        return self.engine.metadata()


def solve_multiprocessor_power(
    instance: Union[MultiprocessorInstance, OneIntervalInstance],
    alpha: float,
    use_full_horizon: bool = False,
    engine: Optional[str] = None,
) -> PowerSolution:
    """Solve multiprocessor power minimization exactly (Theorem 2 convenience wrapper)."""
    solver = MultiprocessorPowerSolver(
        instance, alpha=alpha, use_full_horizon=use_full_horizon, engine=engine
    )
    return solver.solve()
