"""Exact multiprocessor power minimization (Theorem 2 of the paper).

Problem
-------
As in multiprocessor gap scheduling, ``n`` unit jobs with release times and
deadlines run on ``p`` identical processors.  Each processor starts asleep,
pays ``alpha`` for every transition to the active state and one unit of
energy per active time unit, and may remain active while idle (so a gap of
length ``g`` costs ``min(g, alpha)``).  The objective is the total power:
active time plus ``alpha`` times the number of wake-ups, summed over
processors.

Algorithm
---------
The same interval dynamic program as the gap solver (see
:mod:`repro.core.multiproc_gap_dp`), with the state reinterpreted exactly as
in the proof of Theorem 2: the boundary parameters count *active* processors
rather than busy processors.  In the staircase form of Lemma 2 the power
cost is::

    sum over columns t of  A(t) + alpha * max(0, A(t) - A(t-1))

where ``A(t)`` is the number of active processors at column ``t``.  Both
terms are local to consecutive columns, so the subproblem value is a scalar.
Idle-but-active stretches between busy columns are folded into a closed-form
*bridging* charge (``min(stretch length, alpha)`` per processor active on
both sides), which keeps the DP on the polynomial set of candidate columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .dp_profile import IntervalDecomposition
from .exceptions import InfeasibleInstanceError, InvalidInstanceError
from .jobs import MultiprocessorInstance, OneIntervalInstance
from .schedule import MultiprocessorSchedule

__all__ = ["MultiprocessorPowerSolver", "PowerSolution", "solve_multiprocessor_power"]

StateKey = Tuple[int, int, int, int, int, int]
StateValue = Optional[Tuple[float, Tuple]]


@dataclass
class PowerSolution:
    """Result of the exact power solver."""

    feasible: bool
    power: Optional[float]
    schedule: Optional[MultiprocessorSchedule]
    alpha: float

    def require_schedule(self) -> MultiprocessorSchedule:
        """Return the schedule, raising :class:`InfeasibleInstanceError` if absent."""
        if not self.feasible or self.schedule is None:
            raise InfeasibleInstanceError("instance admits no feasible schedule")
        return self.schedule


class MultiprocessorPowerSolver:
    """Exact solver for multiprocessor power minimization (Theorem 2).

    Parameters
    ----------
    instance:
        The multiprocessor instance (a one-interval instance is treated as a
        single-processor instance).
    alpha:
        Non-negative wake-up (transition) cost.
    use_full_horizon:
        Use all integer times as candidate columns (tests only).
    """

    def __init__(
        self,
        instance: Union[MultiprocessorInstance, OneIntervalInstance],
        alpha: float,
        use_full_horizon: bool = False,
    ) -> None:
        if isinstance(instance, OneIntervalInstance):
            instance = instance.to_multiprocessor(1)
        if alpha < 0:
            raise InvalidInstanceError(f"alpha must be non-negative, got {alpha}")
        self.instance = instance
        self.alpha = float(alpha)
        self.p = instance.num_processors
        self.decomp = IntervalDecomposition(instance, use_full_horizon=use_full_horizon)
        self._memo: Dict[StateKey, StateValue] = {}

    # -- public API -------------------------------------------------------------
    def solve(self) -> PowerSolution:
        """Solve the instance, returning the optimal power and a schedule."""
        n = self.instance.num_jobs
        if n == 0:
            return PowerSolution(
                feasible=True,
                power=0.0,
                schedule=MultiprocessorSchedule(instance=self.instance, assignment={}),
                alpha=self.alpha,
            )

        i1, i2 = 0, len(self.decomp.columns) - 1
        best_value: Optional[float] = None
        best_root: Optional[StateKey] = None
        best_first_active: int = 0

        for a1 in range(0, self.p + 1):
            for a2 in range(0, self.p + 1):
                key: StateKey = (i1, i2, n, 0, a1, a2)
                value = self._solve(key)
                if value is None:
                    continue
                total = a1 * (1.0 + self.alpha) + value[0]
                if best_value is None or total < best_value:
                    best_value = total
                    best_root = key
                    best_first_active = a1

        if best_value is None or best_root is None:
            return PowerSolution(
                feasible=False, power=None, schedule=None, alpha=self.alpha
            )

        times = self._reconstruct(best_root)
        schedule = self._stack(times)
        return PowerSolution(
            feasible=True, power=best_value, schedule=schedule, alpha=self.alpha
        )

    def optimal_power(self) -> Optional[float]:
        """Convenience wrapper returning only the optimal power (None if infeasible)."""
        solution = self.solve()
        return solution.power if solution.feasible else None

    # -- DP helpers ----------------------------------------------------------------
    def _bridge_charge(self, stretch: int, active_before: int, active_after: int) -> float:
        """Cost of the columns strictly between two boundary columns plus the right column.

        ``stretch`` columns separate the boundary columns; ``active_before``
        processors are active at the left boundary and ``active_after`` at
        the right boundary.  Each processor active on both sides either stays
        active through the stretch (cost ``stretch``) or sleeps and wakes
        (cost ``alpha``); processors newly active on the right pay a wake-up.
        The active time of the right boundary column itself is included.
        """
        shared = min(active_before, active_after)
        newly_active = max(0, active_after - active_before)
        return (
            float(active_after)
            + shared * min(float(stretch), self.alpha)
            + newly_active * self.alpha
        )

    def _solve(self, key: StateKey) -> StateValue:
        if key in self._memo:
            return self._memo[key]
        # Placeholder to guard against accidental cycles (there are none by
        # construction, but a clear failure beats infinite recursion).
        self._memo[key] = None
        result = self._compute(key)
        self._memo[key] = result
        return result

    def _compute(self, key: StateKey) -> StateValue:
        i1, i2, k, q, a1, a2 = key
        p = self.p
        columns = self.decomp.columns
        t1, t2 = columns[i1], columns[i2]

        if k < 0 or a1 < 0 or a2 < 0 or q < 0:
            return None
        if a1 > p or a2 > p or q > p or q > a2:
            return None

        node_jobs = self.decomp.node_jobs(t1, t2, k)
        if node_jobs is None:
            return None

        if t1 == t2:
            if a1 != a2:
                return None
            if k + q > a1:
                return None
            if k == 0:
                return (0.0, ("empty",))
            return (0.0, ("column", tuple(node_jobs), t1))

        if k == 0:
            return (self._bridge_charge(t2 - t1 - 1, a1, a2), ("empty",))

        jmax = node_jobs[-1]
        best: StateValue = None

        for col_idx in self.decomp.candidate_columns_for_job(jmax, t1, t2):
            t_prime = columns[col_idx]
            if t_prime == t2:
                candidate = self._case_at_right_end(key, jmax)
            else:
                candidate = self._case_split(key, node_jobs, jmax, col_idx)
            if candidate is not None and (best is None or candidate[0] < best[0]):
                best = candidate
        return best

    def _case_at_right_end(self, key: StateKey, jmax: int) -> StateValue:
        """Case t' == t2: the latest-deadline job runs at the right boundary column."""
        i1, i2, k, q, a1, a2 = key
        if q + 1 > a2:
            return None
        child_key: StateKey = (i1, i2, k - 1, q + 1, a1, a2)
        child = self._solve(child_key)
        if child is None:
            return None
        t2 = self.decomp.columns[i2]
        return (child[0], ("right_end", child_key, jmax, t2))

    def _case_split(
        self, key: StateKey, node_jobs: List[int], jmax: int, col_idx: int
    ) -> StateValue:
        """Case t' < t2: split into left [t1, t'] and right (t', t2] subproblems."""
        i1, i2, k, q, a1, a2 = key
        p = self.p
        columns = self.decomp.columns
        t2 = columns[i2]
        t_prime = columns[col_idx]

        num_right = self.decomp.count_released_after(node_jobs, t_prime)
        k_left = k - 1 - num_right
        k_right = num_right
        if k_left < 0:
            return None

        idx_next = self.decomp.first_column_after(t_prime)
        if idx_next is None or columns[idx_next] > t2:
            return None
        t_next = columns[idx_next]
        stretch = t_next - t_prime - 1

        best: StateValue = None
        for active_mid in range(1, p + 1):  # total active at t' (the jmax column)
            left_key: StateKey = (i1, col_idx, k_left, 1, a1, active_mid)
            left = self._solve(left_key)
            if left is None:
                continue
            for active_next in range(0, p + 1):  # total active at t_next
                right_key: StateKey = (idx_next, i2, k_right, q, active_next, a2)
                right = self._solve(right_key)
                if right is None:
                    continue
                cost = (
                    left[0]
                    + self._bridge_charge(stretch, active_mid, active_next)
                    + right[0]
                )
                if best is None or cost < best[0]:
                    best = (cost, ("split", jmax, t_prime, left_key, right_key))
        return best

    # -- reconstruction --------------------------------------------------------------
    def _reconstruct(self, key: StateKey) -> Dict[int, int]:
        """Recover a job -> time assignment achieving the memoised optimum."""
        assignment: Dict[int, int] = {}
        self._reconstruct_into(key, assignment)
        return assignment

    def _reconstruct_into(self, key: StateKey, assignment: Dict[int, int]) -> None:
        value = self._memo[key]
        if value is None:
            raise AssertionError("reconstruction reached an infeasible state")
        _cost, choice = value
        kind = choice[0]
        if kind == "empty":
            return
        if kind == "column":
            _tag, job_indices, t = choice
            for job_idx in job_indices:
                assignment[job_idx] = t
            return
        if kind == "right_end":
            _tag, child_key, jmax, t2 = choice
            assignment[jmax] = t2
            self._reconstruct_into(child_key, assignment)
            return
        if kind == "split":
            _tag, jmax, t_prime, left_key, right_key = choice
            assignment[jmax] = t_prime
            self._reconstruct_into(left_key, assignment)
            self._reconstruct_into(right_key, assignment)
            return
        raise AssertionError(f"unknown reconstruction tag {kind!r}")

    def _stack(self, times: Dict[int, int]) -> MultiprocessorSchedule:
        """Stack a job -> time assignment onto processors in staircase order."""
        by_time: Dict[int, List[int]] = {}
        for job_idx, t in times.items():
            by_time.setdefault(t, []).append(job_idx)
        assignment: Dict[int, Tuple[int, int]] = {}
        for t, job_indices in by_time.items():
            for level, job_idx in enumerate(sorted(job_indices), start=1):
                assignment[job_idx] = (level, t)
        schedule = MultiprocessorSchedule(instance=self.instance, assignment=assignment)
        schedule.validate()
        return schedule


def solve_multiprocessor_power(
    instance: Union[MultiprocessorInstance, OneIntervalInstance],
    alpha: float,
    use_full_horizon: bool = False,
) -> PowerSolution:
    """Solve multiprocessor power minimization exactly (Theorem 2 convenience wrapper)."""
    solver = MultiprocessorPowerSolver(
        instance, alpha=alpha, use_full_horizon=use_full_horizon
    )
    return solver.solve()
