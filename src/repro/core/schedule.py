"""Schedule objects and gap / power accounting.

The paper's objectives are defined on *where* jobs run, not on which job runs
where, so the accounting helpers in this module work on the set of busy
(processor, time) slots:

* A **span** on a processor is a maximal run of consecutive busy time slots.
* A **gap** on a processor is a finite maximal run of idle time slots, i.e.
  an idle run bounded on both sides by busy slots of that processor.  The
  number of gaps on a processor equals ``max(0, spans - 1)``.
* The **power cost** of a single-processor schedule with wake-up cost
  ``alpha`` is ``busy_time + alpha`` for the first wake-up plus, for every
  gap of length ``g``, ``min(g, alpha)`` (the processor either stays active
  through the gap, paying ``g`` time units, or sleeps and pays ``alpha`` to
  wake up).  Multiprocessor power cost sums this per processor.

These definitions follow Sections 2 and 3 of the paper exactly; the
``PowerModel`` in :mod:`repro.power.model` re-derives the same numbers by
explicit state-machine simulation, which the test-suite uses as a
cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .exceptions import InvalidScheduleError
from .jobs import (
    Job,
    MultiIntervalInstance,
    MultiIntervalJob,
    MultiprocessorInstance,
    OneIntervalInstance,
)

__all__ = [
    "Schedule",
    "MultiprocessorSchedule",
    "gaps_of_busy_times",
    "spans_of_busy_times",
    "gap_lengths_of_busy_times",
    "power_cost_of_busy_times",
    "occupancy_profile",
    "staircase_normalize",
]

InstanceLike = Union[OneIntervalInstance, MultiIntervalInstance, MultiprocessorInstance]


def spans_of_busy_times(busy_times: Iterable[int]) -> List[Tuple[int, int]]:
    """Group busy integer times into maximal runs (spans).

    Returns a list of inclusive ``(start, end)`` pairs sorted by start time.
    """
    times = sorted(set(busy_times))
    spans: List[Tuple[int, int]] = []
    if not times:
        return spans
    start = prev = times[0]
    for t in times[1:]:
        if t == prev + 1:
            prev = t
            continue
        spans.append((start, prev))
        start = prev = t
    spans.append((start, prev))
    return spans


def gap_lengths_of_busy_times(busy_times: Iterable[int]) -> List[int]:
    """Lengths of the finite maximal idle intervals between busy times."""
    spans = spans_of_busy_times(busy_times)
    lengths: List[int] = []
    for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
        lengths.append(s1 - e0 - 1)
    return lengths


def gaps_of_busy_times(busy_times: Iterable[int]) -> int:
    """Number of gaps (finite maximal idle intervals) of a busy-time set."""
    return len(gap_lengths_of_busy_times(busy_times))


def power_cost_of_busy_times(busy_times: Iterable[int], alpha: float) -> float:
    """Minimum power cost of executing jobs at ``busy_times`` on one processor.

    The processor starts asleep.  It pays ``alpha`` per transition to the
    active state, one unit of energy per active time unit, and may stay
    active through a gap when that is cheaper than sleeping.  An empty busy
    set costs zero.
    """
    times = sorted(set(busy_times))
    if not times:
        return 0.0
    cost = float(len(times)) + float(alpha)  # execution time + first wake-up
    for gap in gap_lengths_of_busy_times(times):
        cost += min(float(gap), float(alpha))
    return cost


def occupancy_profile(slots: Iterable[Tuple[int, int]]) -> Dict[int, int]:
    """Number of busy processors per time column for (processor, time) slots."""
    profile: Dict[int, int] = {}
    for _proc, t in slots:
        profile[t] = profile.get(t, 0) + 1
    return profile


def staircase_normalize(
    assignment: Mapping[int, Tuple[int, int]]
) -> Dict[int, Tuple[int, int]]:
    """Re-stack jobs so that, at each time, the busy processors form a prefix.

    ``assignment`` maps job index -> (processor, time).  By Lemma 1 of the
    paper this transformation never increases the number of gaps; it is used
    to canonicalize solver output and by the experiment harness.
    """
    by_time: Dict[int, List[int]] = {}
    for job_idx, (_proc, t) in assignment.items():
        by_time.setdefault(t, []).append(job_idx)
    result: Dict[int, Tuple[int, int]] = {}
    for t, job_indices in by_time.items():
        for level, job_idx in enumerate(sorted(job_indices), start=1):
            result[job_idx] = (level, t)
    return result


@dataclass
class Schedule:
    """A single-processor schedule: a map from job index to execution time.

    The class is instance-aware so that :meth:`validate` can check release
    times, deadlines and allowed-time sets, and so that reports can show job
    names.  All accounting helpers ignore the instance and work purely on the
    set of busy times, matching the paper's definitions.

    :meth:`busy_times` and :meth:`spans` are computed once and cached —
    certification and metamorphic checks read them repeatedly per schedule
    in the fuzz hot path.  Schedules are treated as value objects after
    construction; the rare caller that mutates ``assignment`` in place must
    call :meth:`invalidate_caches` afterwards.
    """

    instance: Union[OneIntervalInstance, MultiIntervalInstance]
    assignment: Dict[int, int]

    def __post_init__(self) -> None:
        self.assignment = dict(self.assignment)
        self._busy_cache: Optional[List[int]] = None
        self._spans_cache: Optional[List[Tuple[int, int]]] = None

    def invalidate_caches(self) -> None:
        """Drop the cached accounting views after an in-place mutation."""
        self._busy_cache = None
        self._spans_cache = None

    # -- structural accessors -------------------------------------------------
    @property
    def scheduled_jobs(self) -> List[int]:
        """Indices of scheduled jobs in increasing order."""
        return sorted(self.assignment)

    @property
    def num_scheduled(self) -> int:
        """Number of scheduled jobs."""
        return len(self.assignment)

    def _busy(self) -> List[int]:
        cached = self._busy_cache
        if cached is None:
            cached = self._busy_cache = sorted(self.assignment.values())
        return cached

    def busy_times(self) -> List[int]:
        """Sorted list of times at which a job executes.

        The sort is computed once and cached; the returned list is a fresh
        copy, so callers may mutate it freely.
        """
        return list(self._busy())

    def is_complete(self) -> bool:
        """True when every job of the instance is scheduled."""
        return len(self.assignment) == len(self.instance.jobs)

    # -- objective values ------------------------------------------------------
    def _spans(self) -> List[Tuple[int, int]]:
        cached = self._spans_cache
        if cached is None:
            cached = self._spans_cache = spans_of_busy_times(self._busy())
        return cached

    def spans(self) -> List[Tuple[int, int]]:
        """Maximal busy runs as inclusive (start, end) pairs (computed once,
        returned as a fresh copy)."""
        return list(self._spans())

    def num_spans(self) -> int:
        """Number of maximal busy runs."""
        return len(self._spans())

    def num_gaps(self) -> int:
        """Number of gaps (finite maximal idle intervals)."""
        return max(0, len(self._spans()) - 1)

    def gap_lengths(self) -> List[int]:
        """Lengths of all gaps in time order."""
        spans = self._spans()
        return [s1 - e0 - 1 for (_s0, e0), (s1, _e1) in zip(spans, spans[1:])]

    def power_cost(self, alpha: float) -> float:
        """Power cost with wake-up cost ``alpha`` (see module docstring)."""
        return power_cost_of_busy_times(self._busy(), alpha)

    # -- validation ------------------------------------------------------------
    def validate(self, require_complete: bool = True) -> None:
        """Raise :class:`InvalidScheduleError` if the schedule is inconsistent.

        Checks that every scheduled job exists, runs at an allowed time, and
        that no two jobs share a time slot.  When ``require_complete`` is
        true, also checks that every job of the instance is scheduled.
        """
        jobs = self.instance.jobs
        seen_times: Dict[int, int] = {}
        for job_idx, t in self.assignment.items():
            if not 0 <= job_idx < len(jobs):
                raise InvalidScheduleError(f"unknown job index {job_idx}")
            job = jobs[job_idx]
            if not job.can_run_at(t):
                raise InvalidScheduleError(
                    f"job {job_idx} ({job.name or 'unnamed'}) cannot run at time {t}"
                )
            if t in seen_times:
                raise InvalidScheduleError(
                    f"time {t} double-booked by jobs {seen_times[t]} and {job_idx}"
                )
            seen_times[t] = job_idx
        if require_complete and not self.is_complete():
            missing = sorted(set(range(len(jobs))) - set(self.assignment))
            raise InvalidScheduleError(f"jobs {missing} are not scheduled")

    def is_valid(self, require_complete: bool = True) -> bool:
        """Boolean wrapper around :meth:`validate`."""
        try:
            self.validate(require_complete=require_complete)
        except InvalidScheduleError:
            return False
        return True

    # -- conversions -----------------------------------------------------------
    def as_table(self) -> List[Tuple[int, str, int]]:
        """Rows of ``(job index, job name, time)`` sorted by time, for reports."""
        rows = []
        for job_idx in self.scheduled_jobs:
            job = self.instance.jobs[job_idx]
            name = getattr(job, "name", "") or f"j{job_idx}"
            rows.append((job_idx, name, self.assignment[job_idx]))
        rows.sort(key=lambda row: row[2])
        return rows


@dataclass
class MultiprocessorSchedule:
    """A multiprocessor schedule: job index -> (processor, time).

    Processors are numbered ``1..p``.  Gap and power accounting follow the
    multiprocessor definitions of Section 2: gaps are counted per processor
    and summed; power is summed per processor with wake-up cost ``alpha``.
    """

    instance: MultiprocessorInstance
    assignment: Dict[int, Tuple[int, int]]

    def __post_init__(self) -> None:
        self.assignment = {k: (int(p), int(t)) for k, (p, t) in self.assignment.items()}
        self._by_proc_cache: Optional[Dict[int, List[int]]] = None

    def invalidate_caches(self) -> None:
        """Drop the cached accounting views after an in-place mutation."""
        self._by_proc_cache = None

    # -- structural accessors -------------------------------------------------
    @property
    def num_scheduled(self) -> int:
        """Number of scheduled jobs."""
        return len(self.assignment)

    def is_complete(self) -> bool:
        """True when every job of the instance is scheduled."""
        return len(self.assignment) == len(self.instance.jobs)

    def _by_proc(self) -> Dict[int, List[int]]:
        cached = self._by_proc_cache
        if cached is None:
            by_proc: Dict[int, List[int]] = {}
            for _job, (proc, t) in self.assignment.items():
                by_proc.setdefault(proc, []).append(t)
            cached = self._by_proc_cache = {
                proc: sorted(times) for proc, times in by_proc.items()
            }
        return cached

    def busy_times_by_processor(self) -> Dict[int, List[int]]:
        """Map each processor to the sorted list of its busy times.

        The grouping and per-processor sorts are computed once and cached
        (gap and power accounting both group by processor, and
        certification reads them repeatedly); the returned mapping and its
        lists are fresh copies, safe for callers to mutate.
        """
        return {proc: list(times) for proc, times in self._by_proc().items()}

    def occupancy_profile(self) -> Dict[int, int]:
        """Number of busy processors per time column."""
        return occupancy_profile(self.assignment.values())

    def used_processors(self) -> int:
        """Number of processors that execute at least one job."""
        return len(self._by_proc())

    # -- objective values ------------------------------------------------------
    def num_gaps(self) -> int:
        """Total number of gaps summed over processors (Theorem 1 objective)."""
        return sum(gaps_of_busy_times(times) for times in self._by_proc().values())

    def gaps_by_processor(self) -> Dict[int, int]:
        """Per-processor gap counts."""
        return {
            proc: gaps_of_busy_times(times) for proc, times in self._by_proc().items()
        }

    def power_cost(self, alpha: float) -> float:
        """Total power cost summed over processors (Theorem 2 objective)."""
        return sum(
            power_cost_of_busy_times(times, alpha)
            for times in self._by_proc().values()
        )

    # -- normalization ---------------------------------------------------------
    def staircase(self) -> "MultiprocessorSchedule":
        """Return the Lemma-1 normalization of this schedule.

        Jobs running at the same time are re-stacked onto the lowest-numbered
        processors.  The result never has more gaps than the original
        schedule (Lemma 1) and is the canonical form produced by the exact
        solvers.
        """
        return MultiprocessorSchedule(
            instance=self.instance,
            assignment=staircase_normalize(self.assignment),
        )

    # -- validation ------------------------------------------------------------
    def validate(self, require_complete: bool = True) -> None:
        """Raise :class:`InvalidScheduleError` if the schedule is inconsistent."""
        jobs = self.instance.jobs
        p = self.instance.num_processors
        seen_slots: Dict[Tuple[int, int], int] = {}
        for job_idx, (proc, t) in self.assignment.items():
            if not 0 <= job_idx < len(jobs):
                raise InvalidScheduleError(f"unknown job index {job_idx}")
            if not 1 <= proc <= p:
                raise InvalidScheduleError(
                    f"job {job_idx} assigned to processor {proc}, but only {p} exist"
                )
            job = jobs[job_idx]
            if not job.can_run_at(t):
                raise InvalidScheduleError(
                    f"job {job_idx} cannot run at time {t} (window {job.window})"
                )
            slot = (proc, t)
            if slot in seen_slots:
                raise InvalidScheduleError(
                    f"slot {slot} double-booked by jobs {seen_slots[slot]} and {job_idx}"
                )
            seen_slots[slot] = job_idx
        if require_complete and not self.is_complete():
            missing = sorted(set(range(len(jobs))) - set(self.assignment))
            raise InvalidScheduleError(f"jobs {missing} are not scheduled")

    def is_valid(self, require_complete: bool = True) -> bool:
        """Boolean wrapper around :meth:`validate`."""
        try:
            self.validate(require_complete=require_complete)
        except InvalidScheduleError:
            return False
        return True

    # -- conversions -----------------------------------------------------------
    def as_table(self) -> List[Tuple[int, str, int, int]]:
        """Rows of ``(job index, job name, processor, time)`` sorted by time."""
        rows = []
        for job_idx in sorted(self.assignment):
            job = self.instance.jobs[job_idx]
            proc, t = self.assignment[job_idx]
            rows.append((job_idx, job.name or f"j{job_idx}", proc, t))
        rows.sort(key=lambda row: (row[3], row[2]))
        return rows
