"""Scalable gap/power heuristics: EDF list scheduling plus block-merge local search.

The exact interval DPs are impractical at n = 10^5; these heuristics trade
optimality for ``O(n log n)``-style running time and pair with the
certified lower bounds of :mod:`repro.bounds` to produce *a-posteriori*
approximation factors (``upper / lower``) instead of worst-case ones.

* :func:`edf_list_schedule` — the work-conserving EDF list schedule
  (feasibility-exact for unit one-interval jobs: it raises
  :class:`~repro.core.exceptions.InfeasibleInstanceError` exactly when no
  schedule exists).
* :func:`merge_local_search` — a local-search pass over gap boundaries:
  repeatedly try to close the gap between two adjacent busy blocks by
  shifting one block flush against the other (re-placing its jobs with an
  EDF fit into the target slots).  Merging always removes one gap; for the
  power objective a move is accepted only when the net cost delta
  (closed gap vs. the widened gap on the block's far side) is negative.

The local search is budgeted: a move budget linear in ``n`` plus an
optional wall-clock deadline keep the worst case (one giant cascading
block) from degenerating to quadratic work.  Stopping early is always
sound — the current schedule is a valid upper bound at every point.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .feasibility import edf_schedule
from .jobs import OneIntervalInstance
from .schedule import Schedule

__all__ = ["LocalSearchResult", "edf_list_schedule", "merge_local_search"]

#: Job-placement budget of one local-search call, as a multiple of ``n``.
DEFAULT_MOVE_BUDGET_FACTOR = 8
#: Hard cap on improvement sweeps (each sweep scans every gap boundary once).
DEFAULT_MAX_SWEEPS = 32

_EPS = 1e-12


@dataclass
class LocalSearchResult:
    """Outcome of :func:`merge_local_search`."""

    schedule: Schedule
    sweeps: int = 0
    merges: int = 0
    moves: int = 0
    exhausted: bool = False  # stopped on budget/deadline, not at a local optimum


def edf_list_schedule(instance: OneIntervalInstance) -> Schedule:
    """Work-conserving EDF; raises ``InfeasibleInstanceError`` iff infeasible."""
    return edf_schedule(instance, work_conserving=True)


def _fit_block(
    jobs, indices: List[int], start: int
) -> Optional[Dict[int, int]]:
    """EDF-fit ``indices`` into the contiguous slots ``start .. start+k-1``.

    Returns the job -> time map, or ``None`` when no feasible placement of
    exactly these jobs into exactly these slots exists (EDF is exact for
    this sub-problem: unit jobs, contiguous slots).
    """
    k = len(indices)
    order = sorted(indices, key=lambda i: (jobs[i].release, i))
    heap: List[Tuple[int, int]] = []
    placed: Dict[int, int] = {}
    p = 0
    for slot in range(start, start + k):
        while p < k and jobs[order[p]].release <= slot:
            idx = order[p]
            heapq.heappush(heap, (jobs[idx].deadline, idx))
            p += 1
        if not heap:
            return None
        deadline, idx = heapq.heappop(heap)
        if deadline < slot:
            return None
        placed[idx] = slot
    return placed


def _blocks_of(times: Dict[int, int]) -> List[List[Tuple[int, int]]]:
    """Maximal runs of consecutive busy slots as ``[(time, job), ...]`` lists."""
    items = sorted((t, j) for j, t in times.items())
    blocks: List[List[Tuple[int, int]]] = []
    for t, j in items:
        if blocks and t == blocks[-1][-1][0] + 1:
            blocks[-1].append((t, j))
        else:
            blocks.append([(t, j)])
    return blocks


def merge_local_search(
    instance: OneIntervalInstance,
    schedule: Optional[Schedule] = None,
    objective: str = "gaps",
    alpha: Optional[float] = None,
    deadline: Optional[float] = None,
    move_budget_factor: int = DEFAULT_MOVE_BUDGET_FACTOR,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    on_improve: Optional[Callable[[Dict[int, int]], None]] = None,
) -> LocalSearchResult:
    """Improve ``schedule`` (default: the EDF list schedule) by merging blocks.

    Parameters
    ----------
    objective:
        ``"gaps"`` (every merge is an improvement) or ``"power"`` (a merge
        is accepted only when the net power delta is negative; requires
        ``alpha``).
    deadline:
        Absolute ``time.perf_counter()`` value after which the search
        stops cooperatively and returns the best schedule so far.
    move_budget_factor:
        The search re-places at most ``factor * n + 64`` jobs in total,
        keeping adversarial cascades (one ever-growing block re-placed at
        every boundary) from going quadratic.
    on_improve:
        Called with the current ``job -> time`` map after the starting
        schedule is fixed and again after every accepted merge.  Every
        map passed is a feasible schedule of the full instance — this is
        the any-time hook the portfolio racer uses to harvest incumbents
        from a search that is later hard-killed mid-sweep.  The callback
        must not mutate the map it is handed.
    """
    if objective not in ("gaps", "power"):
        raise ValueError(f"unsupported local-search objective {objective!r}")
    if objective == "power":
        if alpha is None:
            raise ValueError("the 'power' objective requires alpha")
        alpha = float(alpha)
    if schedule is None:
        schedule = edf_list_schedule(instance)
    jobs = instance.jobs
    times = dict(schedule.assignment)
    n = len(times)
    budget = move_budget_factor * n + 64
    result = LocalSearchResult(schedule=schedule)
    if n == 0:
        return result
    if on_improve is not None:
        on_improve(times)

    def gap_cost(length: int) -> float:
        return float(min(length, alpha)) if objective == "power" else 0.0

    improved = True
    while improved and result.sweeps < max_sweeps and not result.exhausted:
        improved = False
        result.sweeps += 1
        blocks = _blocks_of(times)
        b = 0
        while b + 1 < len(blocks):
            if deadline is not None and _time.perf_counter() >= deadline:
                result.exhausted = True
                break
            left, right = blocks[b], blocks[b + 1]
            gap = right[0][0] - left[-1][0] - 1
            options: List[Tuple[float, int, Dict[int, int], List[Tuple[int, int]]]] = []
            # Try the smaller block first: its EDF fit is the cheaper probe.
            order = (0, 1) if len(right) <= len(left) else (1, 0)
            for which in order:
                if result.moves + len(blocks[b + which]) > budget:
                    result.exhausted = True
                    break
                if which == 0:
                    # shift the right block flush against the left one
                    movers, target = right, left[-1][0] + 1
                    far_gap = (
                        blocks[b + 2][0][0] - right[-1][0] - 1
                        if b + 2 < len(blocks)
                        else None
                    )
                else:
                    # shift the left block flush against the right one
                    movers, target = left, right[0][0] - len(left)
                    far_gap = (
                        left[0][0] - blocks[b - 1][-1][0] - 1
                        if b > 0
                        else None
                    )
                indices = [j for _t, j in movers]
                result.moves += len(indices)
                fit = _fit_block(jobs, indices, target)
                if fit is None:
                    continue
                if objective == "gaps":
                    delta = -1.0
                else:
                    widened = (
                        gap_cost(far_gap + gap) - gap_cost(far_gap)
                        if far_gap is not None
                        else 0.0
                    )
                    delta = widened - gap_cost(gap)
                if delta < -_EPS:
                    options.append((delta, which, fit, movers))
                    break  # first feasible improving direction wins
            if result.exhausted:
                break
            if not options:
                b += 1
                continue
            _delta, which, fit, movers = options[0]
            times.update(fit)
            result.merges += 1
            improved = True
            if on_improve is not None:
                on_improve(times)
            merged = sorted(
                [(t, j) for j, t in fit.items()]
                + (left if which == 0 else right)
            )
            blocks[b : b + 2] = [merged]
            # Stay at the same boundary: the merged block may now close the
            # next gap too (rightward cascade), or b stays valid anyway.

    result.schedule = Schedule(instance=instance, assignment=times)
    return result
