"""Exact multiprocessor gap scheduling (Theorem 1 of the paper).

Problem
-------
``n`` unit jobs with integer release times and deadlines must each be
assigned a distinct (processor, time) slot on ``p`` identical processors,
with the time inside the job's window.  A *gap* on a processor is a finite
maximal interval of idle time on that processor.  The objective is the total
number of gaps summed over processors.

Algorithm
---------
The solver implements the interval dynamic program of Section 2 of the
paper, in the occupancy-profile form licensed by Lemma 1 (staircase
normalization):

* A staircase schedule is described by the number of busy processors per
  time column.  Its total gap count equals ``(number of run-starts) -
  (number of used processors)``, where a *run-start* is a column/processor
  pair that is busy while the previous column is idle on that processor, and
  the number of used processors equals the maximum column occupancy.
* Subproblem state ``(t1, t2, k, q, l1, l2)`` exactly as in the paper:
  schedule the ``k`` earliest-deadline jobs released in ``[t1, t2]`` inside
  that interval, with ``q`` processors at column ``t2`` already taken by
  jobs of enclosing subproblems, exactly ``l1`` of the subproblem's own jobs
  at column ``t1`` and exactly ``l2`` at column ``t2``.
* The recursion branches on the execution column ``t'`` of the
  latest-deadline job; jobs released after ``t'`` form the right subproblem
  and the rest the left subproblem (cases (1)-(4) of the paper's proof).
* The DP value is kept as a vector indexed by the exact maximum occupancy of
  the subinterval, so that the final ``- (used processors)`` correction can
  be applied at the root without losing optimality.

The solver returns both the optimal value and an explicit optimal schedule
(reconstructed from the memoised decisions and stacked onto processors in
staircase order).  Correctness is validated against a brute-force oracle in
the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .dp_profile import IntervalDecomposition
from .exceptions import InfeasibleInstanceError
from .jobs import MultiprocessorInstance, OneIntervalInstance
from .schedule import MultiprocessorSchedule

__all__ = ["MultiprocessorGapSolver", "GapSolution", "solve_multiprocessor_gap"]

# A state is identified by column indices (i1, i2), the job count k, the
# number q of externally-occupied slots at column t2, and the own-job counts
# (l1, l2) at the boundary columns.
StateKey = Tuple[int, int, int, int, int, int]
# For each exact maximum occupancy M the memo stores (cost, choice).
StateValue = Dict[int, Tuple[int, Tuple]]


@dataclass
class GapSolution:
    """Result of the exact gap solver."""

    feasible: bool
    num_gaps: Optional[int]
    schedule: Optional[MultiprocessorSchedule]

    def require_schedule(self) -> MultiprocessorSchedule:
        """Return the schedule, raising :class:`InfeasibleInstanceError` if absent."""
        if not self.feasible or self.schedule is None:
            raise InfeasibleInstanceError("instance admits no feasible schedule")
        return self.schedule


class MultiprocessorGapSolver:
    """Exact solver for multiprocessor gap scheduling (Theorem 1).

    Parameters
    ----------
    instance:
        The multiprocessor instance to solve.  A plain
        :class:`~repro.core.jobs.OneIntervalInstance` is accepted and treated
        as a single-processor instance.
    use_full_horizon:
        Use every integer time in the horizon as a candidate column instead
        of the Baptiste candidate set; only sensible for small horizons
        (used by the tests to match the brute-force search space exactly).
    """

    def __init__(
        self,
        instance: Union[MultiprocessorInstance, OneIntervalInstance],
        use_full_horizon: bool = False,
    ) -> None:
        if isinstance(instance, OneIntervalInstance):
            instance = instance.to_multiprocessor(1)
        self.instance = instance
        self.p = instance.num_processors
        self.decomp = IntervalDecomposition(instance, use_full_horizon=use_full_horizon)
        self._memo: Dict[StateKey, StateValue] = {}

    # -- public API -------------------------------------------------------------
    def solve(self) -> GapSolution:
        """Solve the instance, returning the optimal gap count and a schedule."""
        n = self.instance.num_jobs
        if n == 0:
            return GapSolution(
                feasible=True,
                num_gaps=0,
                schedule=MultiprocessorSchedule(instance=self.instance, assignment={}),
            )

        columns = self.decomp.columns
        i1, i2 = 0, len(columns) - 1
        best_value: Optional[int] = None
        best_root: Optional[Tuple[StateKey, int, int]] = None  # (key, M, l1)

        for l1 in range(0, self.p + 1):
            for l2 in range(0, self.p + 1):
                key: StateKey = (i1, i2, n, 0, l1, l2)
                table = self._solve(key)
                for max_occ, (cost, _choice) in table.items():
                    if max_occ <= 0:
                        continue
                    total = l1 + cost - max_occ
                    if best_value is None or total < best_value:
                        best_value = total
                        best_root = (key, max_occ, l1)

        if best_value is None or best_root is None:
            return GapSolution(feasible=False, num_gaps=None, schedule=None)

        assignment_times = self._reconstruct(best_root[0], best_root[1])
        schedule = self._stack(assignment_times)
        return GapSolution(feasible=True, num_gaps=best_value, schedule=schedule)

    def optimal_gaps(self) -> Optional[int]:
        """Convenience wrapper returning only the optimal gap count (None if infeasible)."""
        solution = self.solve()
        return solution.num_gaps if solution.feasible else None

    # -- DP ----------------------------------------------------------------------
    def _solve(self, key: StateKey) -> StateValue:
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._compute(key)
        self._memo[key] = result
        return result

    def _compute(self, key: StateKey) -> StateValue:
        i1, i2, k, q, l1, l2 = key
        p = self.p
        columns = self.decomp.columns
        t1, t2 = columns[i1], columns[i2]

        # Structural sanity of the state.
        if k < 0 or l1 < 0 or l2 < 0 or q < 0:
            return {}
        if l1 > p or l2 > p or q > p or q + l2 > p:
            return {}
        if l1 > k or l2 > k:
            return {}

        node_jobs = self.decomp.node_jobs(t1, t2, k)
        if node_jobs is None:
            return {}

        if t1 == t2:
            if l1 != l2:
                return {}
            if k == 0:
                if l1 != 0:
                    return {}
                return {q: (0, ("empty",))}
            # All k jobs execute at the single column t1.
            if l1 != k or k + q > p:
                return {}
            # Every node job is released exactly at t1 (its release lies in
            # [t1, t1]) and deadlines are >= releases, so placement is valid.
            return {k + q: (0, ("column", tuple(node_jobs), t1))}

        # t1 < t2 from here on.
        if k == 0:
            if l1 != 0 or l2 != 0:
                return {}
            return {q: (q, ("empty",))}
        if l1 + l2 > k:
            return {}

        jmax = node_jobs[-1]
        best: StateValue = {}

        for col_idx in self.decomp.candidate_columns_for_job(jmax, t1, t2):
            t_prime = columns[col_idx]
            if t_prime == t2:
                self._case_at_right_end(key, jmax, best)
            else:
                self._case_split(key, node_jobs, jmax, col_idx, best)
        return best

    def _case_at_right_end(self, key: StateKey, jmax: int, best: StateValue) -> None:
        """Case t' == t2: the latest-deadline job runs at the right boundary column."""
        i1, i2, k, q, l1, l2 = key
        if l2 < 1 or q + 1 > self.p:
            return
        child_key: StateKey = (i1, i2, k - 1, q + 1, l1, l2 - 1)
        child = self._solve(child_key)
        t2 = self.decomp.columns[i2]
        for max_occ, (cost, _choice) in child.items():
            entry = best.get(max_occ)
            if entry is None or cost < entry[0]:
                best[max_occ] = (cost, ("right_end", child_key, max_occ, jmax, t2))

    def _case_split(
        self,
        key: StateKey,
        node_jobs: List[int],
        jmax: int,
        col_idx: int,
        best: StateValue,
    ) -> None:
        """Case t' < t2: split into left [t1, t'] and right (t', t2] subproblems."""
        i1, i2, k, q, l1, l2 = key
        p = self.p
        columns = self.decomp.columns
        t1, t2 = columns[i1], columns[i2]
        t_prime = columns[col_idx]

        num_right = self.decomp.count_released_after(node_jobs, t_prime)
        k_left = k - 1 - num_right
        k_right = num_right
        if k_left < 0:
            return

        idx_next = self.decomp.first_column_after(t_prime)
        if idx_next is None or columns[idx_next] > t2:
            return
        t_next = columns[idx_next]
        adjacent = t_next == t_prime + 1
        right_touches_t2 = idx_next == i2

        # The subproblem's own jobs at column t1 include jmax when t' == t1.
        left_l1 = l1 - 1 if t_prime == t1 else l1
        if left_l1 < 0:
            return

        for left_boundary in range(0, p):  # own jobs of the left child at t'
            left_key: StateKey = (i1, col_idx, k_left, 1, left_l1, left_boundary)
            left = self._solve(left_key)
            if not left:
                continue
            occ_before = left_boundary + 1 if adjacent else 0
            for right_boundary in range(0, p + 1):  # own jobs of the right child at t_next
                extra = q if right_touches_t2 else 0
                if right_boundary + extra > p:
                    continue
                right_key: StateKey = (idx_next, i2, k_right, q, right_boundary, l2)
                right = self._solve(right_key)
                if not right:
                    continue
                boundary_charge = max(0, (right_boundary + extra) - occ_before)
                for max_left, (cost_left, _cl) in left.items():
                    for max_right, (cost_right, _cr) in right.items():
                        max_occ = max(max_left, max_right)
                        cost = cost_left + boundary_charge + cost_right
                        entry = best.get(max_occ)
                        if entry is None or cost < entry[0]:
                            best[max_occ] = (
                                cost,
                                (
                                    "split",
                                    jmax,
                                    t_prime,
                                    left_key,
                                    max_left,
                                    right_key,
                                    max_right,
                                ),
                            )

    # -- reconstruction -----------------------------------------------------------
    def _reconstruct(self, key: StateKey, max_occ: int) -> Dict[int, int]:
        """Recover a job -> time assignment achieving the memoised optimum."""
        assignment: Dict[int, int] = {}
        self._reconstruct_into(key, max_occ, assignment)
        return assignment

    def _reconstruct_into(
        self, key: StateKey, max_occ: int, assignment: Dict[int, int]
    ) -> None:
        table = self._memo[key]
        _cost, choice = table[max_occ]
        kind = choice[0]
        if kind == "empty":
            return
        if kind == "column":
            _tag, job_indices, t = choice
            for job_idx in job_indices:
                assignment[job_idx] = t
            return
        if kind == "right_end":
            _tag, child_key, child_max, jmax, t2 = choice
            assignment[jmax] = t2
            self._reconstruct_into(child_key, child_max, assignment)
            return
        if kind == "split":
            _tag, jmax, t_prime, left_key, max_left, right_key, max_right = choice
            assignment[jmax] = t_prime
            self._reconstruct_into(left_key, max_left, assignment)
            self._reconstruct_into(right_key, max_right, assignment)
            return
        raise AssertionError(f"unknown reconstruction tag {kind!r}")

    def _stack(self, times: Dict[int, int]) -> MultiprocessorSchedule:
        """Stack a job -> time assignment onto processors in staircase order."""
        by_time: Dict[int, List[int]] = {}
        for job_idx, t in times.items():
            by_time.setdefault(t, []).append(job_idx)
        assignment: Dict[int, Tuple[int, int]] = {}
        for t, job_indices in by_time.items():
            for level, job_idx in enumerate(sorted(job_indices), start=1):
                assignment[job_idx] = (level, t)
        schedule = MultiprocessorSchedule(instance=self.instance, assignment=assignment)
        schedule.validate()
        return schedule


def solve_multiprocessor_gap(
    instance: Union[MultiprocessorInstance, OneIntervalInstance],
    use_full_horizon: bool = False,
) -> GapSolution:
    """Solve multiprocessor gap scheduling exactly (Theorem 1 convenience wrapper)."""
    return MultiprocessorGapSolver(instance, use_full_horizon=use_full_horizon).solve()
