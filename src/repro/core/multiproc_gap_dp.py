"""Exact multiprocessor gap scheduling (Theorem 1 of the paper).

Problem
-------
``n`` unit jobs with integer release times and deadlines must each be
assigned a distinct (processor, time) slot on ``p`` identical processors,
with the time inside the job's window.  A *gap* on a processor is a finite
maximal interval of idle time on that processor.  The objective is the total
number of gaps summed over processors.

Algorithm
---------
The solver is a thin binding of :class:`~repro.core.interval_dp.GapObjective`
onto the shared :class:`~repro.core.interval_dp.IntervalDPEngine`: the
occupancy-profile interval DP of Section 2, in the staircase form licensed
by Lemma 1, with the subproblem value kept as a vector indexed by the exact
maximum occupancy so the final ``- (used processors)`` correction can be
applied at the root.  See :mod:`repro.core.interval_dp` for the state space,
the branch-on-``t'`` recursion, and the pruning machinery; this module only
interprets the engine's outcome as a gap count plus a staircase schedule.

The solver returns both the optimal value and an explicit optimal schedule.
Correctness is validated against a brute-force oracle in the test-suite and
continuously by :mod:`repro.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from .dp_profile import IntervalDecomposition
from .exceptions import InfeasibleInstanceError
from .interval_dp import GapObjective, build_engine, staircase_schedule
from .jobs import MultiprocessorInstance, OneIntervalInstance
from .schedule import MultiprocessorSchedule

__all__ = ["MultiprocessorGapSolver", "GapSolution", "solve_multiprocessor_gap"]


@dataclass
class GapSolution:
    """Result of the exact gap solver."""

    feasible: bool
    num_gaps: Optional[int]
    schedule: Optional[MultiprocessorSchedule]

    def require_schedule(self) -> MultiprocessorSchedule:
        """Return the schedule, raising :class:`InfeasibleInstanceError` if absent."""
        if not self.feasible or self.schedule is None:
            raise InfeasibleInstanceError("instance admits no feasible schedule")
        return self.schedule


class MultiprocessorGapSolver:
    """Exact solver for multiprocessor gap scheduling (Theorem 1).

    Parameters
    ----------
    instance:
        The multiprocessor instance to solve.  A plain
        :class:`~repro.core.jobs.OneIntervalInstance` is accepted and treated
        as a single-processor instance.
    use_full_horizon:
        Use every integer time in the horizon as a candidate column instead
        of the Baptiste candidate set; only sensible for small horizons
        (used by the tests to match the brute-force search space exactly).
    engine:
        Evaluator selector: ``"v3"`` (vectorized, requires numpy), ``"v2"``
        (bottom-up array-packed scalar), ``"v1"`` (legacy generator
        trampoline, kept for benchmarks), or ``"auto"``.  ``None`` (the
        default) resolves through the process-wide default — ``"auto"``
        unless overridden with
        :func:`~repro.core.interval_dp.set_default_engine`.
    """

    def __init__(
        self,
        instance: Union[MultiprocessorInstance, OneIntervalInstance],
        use_full_horizon: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        if isinstance(instance, OneIntervalInstance):
            instance = instance.to_multiprocessor(1)
        self.instance = instance
        self.p = instance.num_processors
        self.decomp = IntervalDecomposition(instance, use_full_horizon=use_full_horizon)
        self.engine = build_engine(self.decomp, GapObjective(self.p), engine=engine)

    def solve(self) -> GapSolution:
        """Solve the instance, returning the optimal gap count and a schedule."""
        outcome = self.engine.solve()
        if not outcome.feasible:
            return GapSolution(feasible=False, num_gaps=None, schedule=None)
        schedule = staircase_schedule(self.instance, outcome.assignment)
        return GapSolution(
            feasible=True, num_gaps=int(outcome.value), schedule=schedule
        )

    def optimal_gaps(self) -> Optional[int]:
        """Convenience wrapper returning only the optimal gap count (None if infeasible)."""
        solution = self.solve()
        return solution.num_gaps if solution.feasible else None

    def engine_metadata(self) -> Dict:
        """Engine identification plus pruning/memo statistics (JSON-native)."""
        return self.engine.metadata()


def solve_multiprocessor_gap(
    instance: Union[MultiprocessorInstance, OneIntervalInstance],
    use_full_horizon: bool = False,
    engine: Optional[str] = None,
) -> GapSolution:
    """Solve multiprocessor gap scheduling exactly (Theorem 1 convenience wrapper)."""
    return MultiprocessorGapSolver(
        instance, use_full_horizon=use_full_horizon, engine=engine
    ).solve()
