"""Online gap scheduling: baselines and the paper's lower-bound constructions.

The introduction of the paper explains why it focuses on offline problems:

* Any online algorithm for one-interval gap scheduling that is guaranteed to
  find a feasible schedule must be work-conserving (earliest deadline
  first), and there is an instance family on which this forces ``n`` gaps
  while the offline optimum uses ``O(1)`` gaps — so no online algorithm has
  competitive ratio better than ``n``.
* For multi-interval scheduling, no online algorithm can even guarantee
  feasibility: two jobs with allowed intervals ``{[0,1],[1,2]}`` and
  ``{[0,1],[2,3]}`` cannot be told apart at time 0, and an adversarial third
  job arriving later makes either choice wrong.

This module provides the work-conserving online scheduler, the lower-bound
instance family, and the multi-interval adversarial pair, all of which are
exercised by experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .exceptions import InvalidInstanceError
from .feasibility import edf_schedule
from .jobs import Job, MultiIntervalInstance, MultiIntervalJob, OneIntervalInstance
from .schedule import Schedule

__all__ = [
    "online_gap_schedule",
    "online_lower_bound_instance",
    "online_lower_bound_alternative",
    "multi_interval_online_dilemma",
    "OnlineComparison",
]


@dataclass
class OnlineComparison:
    """Gap counts of the online policy versus the offline optimum."""

    online_gaps: int
    offline_gaps: int

    @property
    def ratio(self) -> float:
        """Competitive ratio on this instance (online / offline, with 0/0 = 1)."""
        if self.offline_gaps == 0:
            return float(self.online_gaps) if self.online_gaps else 1.0
        return self.online_gaps / self.offline_gaps


def online_gap_schedule(instance: OneIntervalInstance) -> Schedule:
    """The only safe online policy: work-conserving earliest deadline first.

    An online algorithm that must never sacrifice feasibility cannot idle
    while jobs are pending (a burst of tight-deadline jobs could arrive next
    time step), so its schedule is exactly the work-conserving EDF schedule.
    """
    return edf_schedule(instance, work_conserving=True)


def online_lower_bound_instance(n: int) -> OneIntervalInstance:
    """The paper's Omega(n) competitive-ratio family.

    ``n`` *flexible* jobs arrive at time 0 with deadline ``3n``; ``n``
    *urgent* jobs arrive at times ``n, n+2, n+4, ...`` each with a deadline
    one unit after its arrival.  The offline optimum delays the flexible
    jobs and slots them into the holes between urgent jobs (O(1) gaps); any
    feasibility-preserving online algorithm runs the flexible jobs
    immediately and then suffers a gap before every urgent job.
    """
    if n < 1:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    jobs: List[Job] = []
    for i in range(n):
        jobs.append(Job(release=0, deadline=3 * n, name=f"flex{i}"))
    for i in range(n):
        arrival = n + 2 * i
        jobs.append(Job(release=arrival, deadline=arrival + 1, name=f"urgent{i}"))
    return OneIntervalInstance(jobs)


def online_lower_bound_alternative(n: int) -> OneIntervalInstance:
    """The adversary's alternative continuation: ``2n`` urgent back-to-back jobs.

    If the online algorithm *had* idled at the start, this variant (urgent
    jobs at times ``n, n+1, n+2, ...``) would be infeasible for it, which is
    why the online algorithm is forced to execute the flexible jobs
    immediately in :func:`online_lower_bound_instance`.
    """
    if n < 1:
        raise InvalidInstanceError(f"n must be positive, got {n}")
    jobs: List[Job] = []
    for i in range(n):
        jobs.append(Job(release=0, deadline=3 * n, name=f"flex{i}"))
    for i in range(2 * n):
        arrival = n + i
        jobs.append(Job(release=arrival, deadline=arrival, name=f"urgent{i}"))
    return OneIntervalInstance(jobs)


def multi_interval_online_dilemma() -> Tuple[MultiIntervalInstance, MultiIntervalInstance]:
    """The two-job multi-interval dilemma showing online infeasibility.

    Both returned instances share the same two jobs visible at time 0: job A
    with allowed times ``{0, 1, 2}`` (intervals [0,1] and [1,2] merged) and
    job B with allowed times ``{0, 1, 2, 3}`` shaped as [0,1] and [2,3].  In
    the first instance a third job arrives that must run at time 1; in the
    second, a third job must run at time 2.  Whatever the online algorithm
    runs at time 0, one of the two continuations defeats it, while each
    instance is feasible offline.
    """
    job_a = MultiIntervalJob.from_intervals([(0, 1), (1, 2)], name="A")
    job_b = MultiIntervalJob.from_intervals([(0, 1), (2, 3)], name="B")
    third_at_1 = MultiIntervalJob(times=[1], name="C1")
    third_at_2 = MultiIntervalJob(times=[2], name="C2")
    first = MultiIntervalInstance(jobs=[job_a, job_b, third_at_1])
    second = MultiIntervalInstance(jobs=[job_a, job_b, third_at_2])
    return first, second


def compare_online_offline(
    instance: OneIntervalInstance, offline_gaps: int
) -> OnlineComparison:
    """Package the online EDF gap count against a known offline optimum."""
    online = online_gap_schedule(instance)
    return OnlineComparison(online_gaps=online.num_gaps(), offline_gaps=offline_gaps)
