"""Feasibility checks and baseline schedulers built on bipartite matching.

The paper repeatedly uses the observation that deciding whether all unit jobs
can be scheduled is a bipartite matching problem between jobs and time slots
(or (processor, time) slots).  This module provides:

* :func:`build_job_slot_graph` / :func:`build_multiproc_graph` — construct the
  job/slot bipartite graphs.
* :func:`is_feasible` / :func:`is_feasible_multiproc` — matching-based
  feasibility tests.
* :func:`feasible_schedule` / :func:`feasible_schedule_multiproc` — arbitrary
  feasible schedules (no objective), used as starting points by the
  approximation algorithms.
* :func:`edf_schedule` — the earliest-deadline-first schedule for one-interval
  instances, the classical baseline mentioned in Section 1.
* :func:`complete_partial_schedule` — Lemma 3: extend a partial schedule one
  augmenting path at a time, adding at most one gap per added job.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..matching import BipartiteGraph, extend_matching, hall_violation, hopcroft_karp
from .exceptions import InfeasibleInstanceError
from .jobs import (
    Job,
    MultiIntervalInstance,
    MultiprocessorInstance,
    OneIntervalInstance,
)
from .schedule import MultiprocessorSchedule, Schedule
from .timeutils import candidate_times_for_jobs

__all__ = [
    "build_job_slot_graph",
    "build_multiproc_graph",
    "is_feasible",
    "is_feasible_multiproc",
    "feasible_schedule",
    "feasible_schedule_multiproc",
    "edf_schedule",
    "complete_partial_schedule",
]

SingleInstance = Union[OneIntervalInstance, MultiIntervalInstance]


def _allowed_times_of(instance: SingleInstance) -> List[List[int]]:
    """Allowed execution times per job for one-interval or multi-interval instances."""
    allowed: List[List[int]] = []
    for job in instance.jobs:
        if isinstance(job, Job):
            allowed.append(list(job.allowed_times()))
        else:
            allowed.append(list(job.times))
    return allowed


def build_job_slot_graph(instance: SingleInstance) -> BipartiteGraph:
    """Bipartite graph with jobs on the left and integer time slots on the right."""
    allowed = _allowed_times_of(instance)
    graph = BipartiteGraph(n_left=len(allowed))
    for job_idx, times in enumerate(allowed):
        graph.add_edges(job_idx, times)
    return graph


def build_multiproc_graph(instance: MultiprocessorInstance) -> BipartiteGraph:
    """Bipartite graph with jobs on the left and (processor, time) slots on the right.

    Only candidate times are materialised; by the structural lemma used by the
    exact DP this does not affect feasibility, because feasibility only
    depends on how many jobs fit per time column and candidate times include
    every column any optimal (or greedy) schedule would use.
    """
    graph = BipartiteGraph(n_left=instance.num_jobs)
    times = candidate_times_for_jobs(instance.jobs)
    time_set = set(times)
    for job_idx, job in enumerate(instance.jobs):
        for t in job.allowed_times():
            if t not in time_set:
                continue
            for proc in range(1, instance.num_processors + 1):
                graph.add_edge(job_idx, (proc, t))
    return graph


def is_feasible(instance: SingleInstance) -> bool:
    """True when every job of a single-processor instance can be scheduled."""
    if instance.num_jobs == 0:
        return True
    graph = build_job_slot_graph(instance)
    match_left, _ = hopcroft_karp(graph)
    return all(m != -1 for m in match_left)


def is_feasible_multiproc(instance: MultiprocessorInstance) -> bool:
    """True when every job of a multiprocessor instance can be scheduled."""
    if instance.num_jobs == 0:
        return True
    graph = build_multiproc_graph(instance)
    match_left, _ = hopcroft_karp(graph)
    return all(m != -1 for m in match_left)


def feasible_schedule(instance: SingleInstance) -> Schedule:
    """Return an arbitrary feasible schedule, or raise :class:`InfeasibleInstanceError`."""
    graph = build_job_slot_graph(instance)
    match_left, _ = hopcroft_karp(graph)
    if any(m == -1 for m in match_left):
        detail = ""
        if isinstance(instance, OneIntervalInstance):
            violation = hall_violation([job.window for job in instance.jobs])
            if violation is not None:
                x, y, demand, capacity = violation
                detail = (
                    f" (window [{x}, {y}] must hold {demand} jobs "
                    f"but has only {capacity} slots)"
                )
        raise InfeasibleInstanceError(f"no feasible schedule exists{detail}")
    assignment = {
        job_idx: graph.right_label(rid) for job_idx, rid in enumerate(match_left)
    }
    return Schedule(instance=instance, assignment=assignment)


def feasible_schedule_multiproc(
    instance: MultiprocessorInstance,
) -> MultiprocessorSchedule:
    """Return an arbitrary feasible multiprocessor schedule, or raise."""
    graph = build_multiproc_graph(instance)
    match_left, _ = hopcroft_karp(graph)
    if any(m == -1 for m in match_left):
        violation = hall_violation(
            [job.window for job in instance.jobs], instance.num_processors
        )
        detail = ""
        if violation is not None:
            x, y, demand, capacity = violation
            detail = (
                f" (window [{x}, {y}] must hold {demand} jobs "
                f"but has only {capacity} slots)"
            )
        raise InfeasibleInstanceError(f"no feasible schedule exists{detail}")
    assignment = {
        job_idx: graph.right_label(rid) for job_idx, rid in enumerate(match_left)
    }
    return MultiprocessorSchedule(instance=instance, assignment=assignment)


def edf_schedule(
    instance: OneIntervalInstance, work_conserving: bool = True
) -> Schedule:
    """Earliest-deadline-first schedule for a one-interval instance.

    At each time step, among released unscheduled jobs, run the one with the
    earliest deadline.  With ``work_conserving=True`` (the classical online
    policy) the machine never idles while a job is pending; this is the
    baseline whose gap count the paper's introduction contrasts with the
    offline optimum.  Raises :class:`InfeasibleInstanceError` when a deadline
    is missed, which for one-interval unit jobs happens exactly when the
    instance is infeasible.
    """
    n = instance.num_jobs
    if n == 0:
        return Schedule(instance=instance, assignment={})

    order = sorted(range(n), key=lambda i: (instance.jobs[i].release, i))
    released: List[Tuple[int, int]] = []  # heap of (deadline, job index)
    assignment: Dict[int, int] = {}
    pointer = 0
    t = min(job.release for job in instance.jobs)
    horizon_end = max(job.deadline for job in instance.jobs)

    while len(assignment) < n and t <= horizon_end:
        while pointer < n and instance.jobs[order[pointer]].release <= t:
            idx = order[pointer]
            heapq.heappush(released, (instance.jobs[idx].deadline, idx))
            pointer += 1
        if not released:
            if not work_conserving:
                t += 1
                continue
            # Jump to the next release to keep the loop linear in events.
            if pointer < n:
                t = instance.jobs[order[pointer]].release
                continue
            break
        deadline, idx = heapq.heappop(released)
        if deadline < t:
            raise InfeasibleInstanceError(
                f"EDF misses the deadline of job {idx} (deadline {deadline}, time {t})"
            )
        assignment[idx] = t
        t += 1

    if len(assignment) < n:
        missing = sorted(set(range(n)) - set(assignment))
        raise InfeasibleInstanceError(f"EDF could not schedule jobs {missing}")
    return Schedule(instance=instance, assignment=assignment)


def complete_partial_schedule(
    instance: SingleInstance, partial: Dict[int, int]
) -> Schedule:
    """Extend a partial schedule to all jobs via augmenting paths (Lemma 3).

    ``partial`` maps job indices to times.  If a feasible complete schedule
    exists, the returned schedule contains all jobs and uses at most
    ``len(partial gaps) + (n - len(partial))`` gaps, as guaranteed by Lemma 3
    of the paper.  Raises :class:`InfeasibleInstanceError` otherwise.
    """
    graph = build_job_slot_graph(instance)
    result = extend_matching(graph, dict(partial))
    if len(result) < instance.num_jobs:
        missing = sorted(set(range(instance.num_jobs)) - set(result))
        raise InfeasibleInstanceError(
            f"partial schedule cannot be extended to jobs {missing}"
        )
    return Schedule(instance=instance, assignment={k: int(v) for k, v in result.items()})
