"""Shared machinery for the exact interval dynamic programs (Theorems 1 and 2).

Both exact solvers follow the same decomposition, lifted from Baptiste's
single-processor algorithm [Bap06] exactly as the paper does in Section 2:

* By Lemmas 1 and 2 there is an optimal schedule in *staircase* form: at
  every time column the busy (resp. active) processors form a prefix
  ``P_1..P_l``.  A staircase schedule is fully described by its occupancy
  profile, i.e. the number of busy/active processors per time column.
* Subproblems are intervals ``[t1, t2]`` of candidate time columns together
  with the ``k`` earliest-deadline jobs released inside the interval, the
  number ``q`` of processors already taken at column ``t2`` by jobs of
  enclosing subproblems, and boundary occupancies at ``t1`` and ``t2``.
* The recursion branches on the column ``t'`` at which the latest-deadline
  job of the subproblem executes.  Jobs released after ``t'`` form the right
  subproblem, the remaining jobs the left subproblem (the exchange argument
  in the proof of Theorem 1 shows this split loses nothing).

This module centralises the parts that are identical for the gap and power
objectives: candidate columns, the deadline ordering, and the job-set
queries used to split subproblems.

Two invariants of the candidate set are load-bearing elsewhere: every
release and every deadline is itself a candidate column (the set contains
``[r, r + n]`` and ``[d - n, d]`` clipped to the horizon), which lets
:mod:`repro.core.canonical` express job windows in column coordinates, and
the v2 engine (:class:`repro.core.interval_dp.IntervalDPEngine`) groups
jobs by release column to build released-job lists incrementally instead
of re-scanning via :meth:`IntervalDecomposition.jobs_released_in` (which
remains the per-interval query used by the v1 trampoline evaluator).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from .exceptions import InvalidInstanceError
from .jobs import Job, MultiprocessorInstance
from .timeutils import candidate_times_for_jobs

__all__ = ["IntervalDecomposition"]


class IntervalDecomposition:
    """Candidate columns and job-set queries shared by the exact DPs.

    Parameters
    ----------
    instance:
        The multiprocessor instance being solved.
    use_full_horizon:
        Force the candidate column set to be every integer time in the
        horizon (used by tests so that the DP and the brute-force oracle
        search exactly the same space).
    """

    def __init__(
        self,
        instance: MultiprocessorInstance,
        use_full_horizon: bool = False,
    ) -> None:
        if instance.num_processors < 1:
            raise InvalidInstanceError("need at least one processor")
        self.instance = instance
        self.num_processors = instance.num_processors
        self.jobs: Tuple[Job, ...] = instance.jobs
        self.columns: List[int] = candidate_times_for_jobs(
            self.jobs, use_full_horizon=use_full_horizon
        )
        self.column_index: Dict[int, int] = {t: i for i, t in enumerate(self.columns)}
        # Global deadline order; ties broken by release then index so the
        # order (and hence the DP decomposition) is deterministic.
        self.deadline_order: List[int] = sorted(
            range(len(self.jobs)),
            key=lambda i: (self.jobs[i].deadline, self.jobs[i].release, i),
        )
        self._range_cache: Dict[Tuple[int, int], List[int]] = {}

    # -- column helpers -------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Number of candidate columns."""
        return len(self.columns)

    def column(self, index: int) -> int:
        """The time value of candidate column ``index``."""
        return self.columns[index]

    def index_of(self, time: int) -> int:
        """The index of an existing candidate column ``time``."""
        return self.column_index[time]

    def first_column_after(self, time: int) -> Optional[int]:
        """Index of the first candidate column strictly greater than ``time``."""
        idx = bisect.bisect_right(self.columns, time)
        if idx >= len(self.columns):
            return None
        return idx

    def columns_between(self, lo: int, hi: int) -> List[int]:
        """Indices of candidate columns with time in the inclusive range [lo, hi]."""
        start = bisect.bisect_left(self.columns, lo)
        end = bisect.bisect_right(self.columns, hi)
        return list(range(start, end))

    # -- job-set helpers ------------------------------------------------------
    def jobs_released_in(self, t1: int, t2: int) -> List[int]:
        """Job indices with release in ``[t1, t2]``, in global deadline order."""
        key = (t1, t2)
        cached = self._range_cache.get(key)
        if cached is None:
            cached = [
                j for j in self.deadline_order if t1 <= self.jobs[j].release <= t2
            ]
            self._range_cache[key] = cached
        return cached

    def node_jobs(self, t1: int, t2: int, k: int) -> Optional[List[int]]:
        """The ``k`` earliest-deadline jobs released in ``[t1, t2]``.

        Returns ``None`` when fewer than ``k`` jobs are released in the
        interval, in which case the DP state is unreachable/infeasible.
        """
        released = self.jobs_released_in(t1, t2)
        if k > len(released):
            return None
        return released[:k]

    def count_released_after(self, job_indices: Sequence[int], t: int) -> int:
        """Number of jobs among ``job_indices`` with release strictly after ``t``."""
        return sum(1 for j in job_indices if self.jobs[j].release > t)

    def candidate_columns_for_job(
        self, job_index: int, t1: int, t2: int
    ) -> List[int]:
        """Column indices where ``job_index`` may run inside ``[t1, t2]``."""
        job = self.jobs[job_index]
        lo = max(t1, job.release)
        hi = min(t2, job.deadline)
        if hi < lo:
            return []
        return self.columns_between(lo, hi)
