"""Optional numpy min-plus kernels behind the vectorized v3 DP evaluator.

Every numpy touchpoint of :class:`repro.core.interval_dp.VectorizedDPEngine`
lives in this module so the rest of the engine stays importable on
installations without the ``repro-sched[speed]`` extra.  The import is
guarded: :func:`numpy_available` reports whether the kernels can run, and
``_DISABLED`` is a test hook — monkeypatch it to ``True`` to simulate a
numpy-less environment without uninstalling anything.

The kernels replace the split-combine part of the scalar v2 evaluator
(``IntervalDPEngine._branch_tables``) under a strict **byte-identity
contract**: they must produce the same sealed tables — same costs
(including float bit patterns for the power objective), same choice tuples
(same tie-breaking), and the same stats counters — as the scalar loop they
replace.  The contract is what lets v3 results replay through the
canonicalization/disk caches interchangeably with v2 and is enforced by
the differential suite in ``tests/test_engine_v3.py``.

Batching strategy: whole layers, slab outputs, lazy decode
----------------------------------------------------------
The scalar combine is a six-deep loop per node: ``split × (q, b2) group ×
b1 × lb2 × rb1 × (ll, lr)``.  Per-node tensors are only a few thousand
elements, so per-node kernel dispatch loses to the scalar loop outright;
the kernels therefore batch an entire **interval-length layer** of the
node DAG per invocation: split children live on strictly shorter
intervals (``_expand`` never creates a same-length split child), so once
layer ``< len`` is sealed, the split-combine of *every* node at length
``len`` is data-ready at once.  Only the ``t' == t2`` right-end merge
reads a same-length child (same interval, ``k - 1`` jobs); it stays
scalar, applied per node in the v2 ``(length, k)`` evaluation order by
:meth:`MinPlusKernel.finish_node`.

The dispatch- and Python-side constants are kept flat by a few rules:

* **Slot-pool mirrors.**  Dense child tables live in one preallocated
  pool array indexed by slot, so a whole layer's left-child and
  right-child planes are fetched with *one* fancy-index gather each —
  never one copy per child.  Kernel-sealed nodes register their own cost
  slab into the pool; leaf, scalar-fallback, and FIFO-evicted nodes are
  rebuilt from their sealed sparse entries on demand.
* **Bulk assembly.**  Charge matrices are deduped by identity into one
  small stack per layer; all derived arrays (packed left planes, bridge
  minima per ``(right child, q, charge)`` key) are built by a constant
  number of stacked ufunc calls per layer.
* **Trimmed axes.**  The mid-boundary axis runs over
  ``objective.left_b2_values()`` only.  No masking of the boundary-range
  restrictions (``left_b2_values`` / ``right_b1_values``) is needed: for
  both shipped objectives the excluded variants are exactly the child
  states that are invalid or unreachable, i.e. already ``+inf`` in the
  dense mirrors — trimming the axis merely skips all-inf planes.
* **Slab outputs, lazy decode.**  Each staged node's result is a float64
  cost slab plus an int32 winner slab over ``(q, b1, b2, label)``,
  scattered straight out of the layer reduction; the cost slab doubles
  as the node's dense mirror for parent layers.  Invalid boundary
  variants are blanked with one cached boolean mask per ``(variant
  grid, q)``.  Sealed tables expose choice tuples through lazy
  :class:`_GapChoices` / :class:`_PowerChoices` views that decode the
  winner slab on access — reconstruction touches one label per node on
  the optimal path, so eager choice materialization would dominate.

A *lane* is one ``(node, q, active split)`` triple; lanes of one layer
are concatenated with the lanes of each ``(node, q)`` pair contiguous —
one ``np.minimum.reduceat`` over those segments reduces the whole layer.
Layers larger than the chunk budget are processed in node-aligned chunks.

Exact tie-breaks without argmin
-------------------------------
The scalar loop's winner per output state is the *first* strict minimum in
visit order ``(s, lb2, rb1, ll, lr)``.  The two value algebras recover it
differently:

* **Gap (labelled, integer costs)**: every candidate is packed as
  ``cost * B + rank`` where ``rank`` is the candidate's visit-order index
  and the radix ``B`` is a per-layer power of two just above the largest
  rank in the layer.  Costs are small non-negative ints, so the packed
  value is an exact binary integer and ``min`` over *any* grouping
  returns the minimum cost with exactly the scalar tie-break; one
  ``floor``/subtract pass per chunk splits the reduction back into cost
  and winner rank.  When a certified bound keeps every finite packed
  value below ``2**24`` the layer runs in float32 (exact in that range,
  half the memory traffic); otherwise it falls back to float64 with
  radix ``2**27``.  The combined output label ``max(ll, lr)`` is handled
  with two disjoint prefix-min branches (``ll == lab, lr <= lab`` and
  ``ll < lab, lr == lab``) concatenated along the reduced mid-boundary
  axis, so one fused add + one reduction covers both and the ``(ll,
  lr)`` product axis disappears.
* **Power (scalar, float costs)**: no packing — float values must keep
  their exact bit patterns.  The scalar loop hoists the best right
  boundary per mid-boundary ``lb2`` out of the ``b1`` loop; the kernel
  builds that hoisted ``bridge = charge + right`` minimum (and its
  first-occurrence argmin) for every key of the layer in one stacked
  pass, preserving the scalar association order so sums are
  bit-identical.  Winning ``(s, lb2)`` rows are recovered with one
  vectorized ``where(value == min) -> first row index`` pass per chunk.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised by the without-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the without-numpy CI leg
    _np = None

__all__ = [
    "numpy_available",
    "numpy_version",
    "MinPlusKernel",
]

#: Test hook: monkeypatch to ``True`` to make the kernels report numpy as
#: unavailable (forcing the scalar fallback) without touching the install.
_DISABLED = False

_INF = float("inf")

#: Float64 packing radix for gap layers that fail the float32 certificate:
#: candidate values are ``cost * _BIG + rank`` with ``rank < _BIG``.  Gap
#: costs are bounded by the job count, so packed values stay far below
#: 2**53 and all float64 arithmetic on them is exact.
_BIG = 1 << 27

#: Finite packed values below this bound are exact in float32.
_F32_LIMIT = 1 << 24

#: Element budget for the mirror slot pool (slot count adapts to P^3 * L).
_POOL_ELEMENTS = 4_194_304

#: Upper bound on broadcast-tensor elements per layer chunk; layers with
#: more lanes than fit are processed in node-aligned chunks.
_CHUNK_ELEMENTS = 2_000_000


def numpy_available() -> bool:
    """True when numpy imported and the kernels are not test-disabled."""
    return _np is not None and not _DISABLED


def numpy_version() -> Optional[str]:
    """The numpy version string, or ``None`` when kernels are unavailable."""
    if _np is None or _DISABLED:
        return None
    return str(_np.__version__)


class _Staged:
    """One staged branch node: slab outputs plus the lazy-decode context.

    ``slab`` is the float64 cost slab over ``(q, b1, b2, label)`` (also
    what gets registered as the node's dense mirror); ``rank`` the parallel
    int32 winner slab (gap: packed visit rank, power: node-local
    ``s * len(left range) + offset`` row; right-end winners are
    ``-(child variant index + 1)`` in both).  ``finite`` lists the flat
    ``vi * L + label`` coordinates with finite split-phase cost,
    ascending.  The remaining fields are the decode context shared by the
    node's :class:`_GapChoices` / :class:`_PowerChoices` views.
    """

    __slots__ = (
        "kernel", "slab", "rank", "flat", "rankflat", "finite", "lookups",
        "q_list", "groups", "jmax", "active", "idx_maps", "right_end_id",
        "t2", "rm_idx", "brarg",
    )

    def __init__(
        self, kernel, lookups, q_list, groups, jmax, active, idx_maps,
        slab=None, rank=None, flat=None, rankflat=None,
    ):
        self.kernel = kernel
        self.lookups = lookups
        self.q_list = q_list
        self.groups = groups
        self.jmax = jmax
        self.active = active
        self.idx_maps = idx_maps
        self.right_end_id = None
        self.t2 = 0
        self.rm_idx: Dict[int, List[int]] = {}
        self.brarg = None
        if slab is None:
            # Standalone staging; layers hand in views of one batch block.
            P, L = kernel.P, kernel.L
            slab = _np.full((P, P, P, L), _INF)
            rank = _np.zeros((P, P, P, L), dtype=_np.int32)
        self.slab = slab
        self.rank = rank
        self.flat = slab.reshape(-1, kernel.L) if flat is None else flat
        self.rankflat = (
            rank.reshape(-1, kernel.L) if rankflat is None else rankflat
        )
        self.finite: List[int] = []


def decode_choice(st: "_Staged", vi: int, lab: int):
    """Decode the winning choice of one sealed kernel variant on demand.

    Kernel-sealed table entries carry ``(st, vi, entries)`` instead of a
    materialized label-indexed choice list — reconstruction touches one
    entry per path node, so choices decode lazily from the staged winner
    slabs here rather than allocating a view object per sealed variant.
    """
    cls = _PowerChoices if st.kernel.scalar else _GapChoices
    return cls(st, vi)[lab]


class _GapChoices:
    """Lazy label-indexed choice view of one staged gap variant."""

    __slots__ = ("st", "vi")

    def __init__(self, st: _Staged, vi: int) -> None:
        self.st = st
        self.vi = vi

    def __getitem__(self, lab: int):
        st = self.st
        vi = self.vi
        if st.flat[vi, lab] == _INF:
            return None
        k = st.kernel
        rank = int(st.rankflat[vi, lab])
        if rank < 0:
            return (
                "right_end", st.right_end_id, -rank - 1, lab, st.jmax, st.t2,
            )
        P = k.P
        s, rem = divmod(rank, k._sh_s)
        lb2, rem = divmod(rem, k._sh_lb2)
        rb1, rem = divmod(rem, k._sh_rb1)
        ll, lr = divmod(rem, k.L)
        lb2 += k._mid_lo
        split = st.active[s]
        q, b1 = divmod(vi // P, P)
        b2 = vi - (q * P + b1) * P
        return (
            "split", st.jmax, split[0],
            split[1], (P + st.idx_maps[s][b1]) * P + lb2, ll,
            split[2], (q * P + rb1) * P + b2, lr,
        )


class _PowerChoices:
    """Lazy label-indexed choice view of one staged power variant."""

    __slots__ = ("st", "vi")

    def __init__(self, st: _Staged, vi: int) -> None:
        self.st = st
        self.vi = vi

    def __getitem__(self, lab: int):
        st = self.st
        vi = self.vi
        if st.flat[vi, 0] == _INF:
            return None
        w = int(st.rankflat[vi, 0])
        if w < 0:
            return ("right_end", st.right_end_id, -w - 1, 0, st.jmax, st.t2)
        k = st.kernel
        P = k.P
        s, off = divmod(w, k._mid_len)
        lb2 = k._mid_lo + off
        q, b1 = divmod(vi // P, P)
        b2 = vi - (q * P + b1) * P
        rb1 = int(st.brarg[st.rm_idx[q][s], b2, off])
        split = st.active[s]
        return (
            "split", st.jmax, split[0],
            split[1], (P + st.idx_maps[s][b1]) * P + lb2, 0,
            split[2], (q * P + rb1) * P + b2, 0,
        )


class _Layer:
    """Mutable assembly state for one interval-length layer of lanes."""

    __slots__ = (
        "lid_pos", "lid_list", "rm_pos", "rm_list", "cm_pos", "cm_list",
        "split_lid", "split_edge", "lane_split", "lane_rm", "lane_s",
        "seg_lane", "seg_qbase", "seg_mask", "nodes", "max_active",
    )

    def __init__(self) -> None:
        self.lid_pos: Dict[int, int] = {}     # left child id -> stack position
        self.lid_list: List[int] = []
        self.rm_pos: Dict[Tuple, int] = {}    # bridge key -> stack position
        self.rm_list: List[Tuple] = []        # (right_id, q, charge stack pos)
        self.cm_pos: Dict[int, int] = {}      # id(charge matrix) -> stack pos
        self.cm_list: List[Any] = []          # charge matrices (refs pin ids)
        self.split_lid: List[int] = []        # per layer-split: left stack pos
        self.split_edge: List[int] = []       # per layer-split: 1 iff t' == t1
        self.lane_split: List[int] = []       # lane -> layer-split index
        self.lane_rm: List[int] = []          # lane -> bridge stack position
        self.lane_s: List[int] = []           # lane -> node-local active index
        self.seg_lane: List[int] = []         # segment -> first lane
        self.seg_qbase: List[int] = []        # segment -> q * P * P * L
        self.seg_mask: List[int] = []         # segment -> blank-template index
        #: (staged, seg_lo, seg_hi, lane_lo, lane_hi)
        self.nodes: List[Tuple] = []
        self.max_active = 0


class MinPlusKernel:
    """Vectorized split-combine for one engine run (one objective, one ``p``).

    Exposes two entry points: :meth:`layer_split_tables` stages the split
    part of every qualifying branch node in one interval-length layer, and
    :meth:`finish_node` then finishes each staged node (right-end merge,
    memo accounting, dominance pruning, sealing) in the scalar evaluation
    order, returning tables byte-identical to the scalar loop's.
    """

    def __init__(self, objective, num_processors: int) -> None:
        if not numpy_available():  # pragma: no cover - guarded by callers
            raise RuntimeError("MinPlusKernel requires numpy")
        self.objective = objective
        self.p = num_processors
        P = self.P = num_processors + 1
        L = self.L = objective.num_labels
        self.scalar = L == 1
        self.integral = bool(getattr(objective, "integral_costs", False))
        # The trimmed mid-boundary axis: contiguous left_b2_values range.
        mids = list(objective.left_b2_values())
        self._mid_lo = mids[0]
        self._mid_len = len(mids)
        if mids != list(range(mids[0], mids[0] + len(mids))):
            raise RuntimeError(
                "vector kernels require a contiguous left_b2_values range"
            )
        # Visit-order rank radices over the trimmed mid axis:
        # rank = ((s*n_mid + (lb2-lo))*P + rb1)*L*L + ll*L + lr.
        self._sh_s = self._mid_len * P * L * L
        self._sh_lb2 = P * L * L
        self._sh_rb1 = L * L
        if not self.scalar:
            mid = _np.arange(self._mid_len, dtype=float).reshape(-1, 1) * float(
                self._sh_lb2
            )
            ll = _np.arange(L, dtype=float).reshape(1, L) * float(L)
            #: Rank part carried by the left planes: (n_mid, L).
            self._lrank = mid + ll
            rb1 = _np.arange(P, dtype=float).reshape(P, 1, 1) * float(
                self._sh_rb1
            )
            lr = _np.arange(L, dtype=float).reshape(1, 1, L)
            #: Rank part carried by the right planes: (P, 1, L) over
            #: (rb1, b2, lr).
            self._rrank = rb1 + lr
        # Boundary maps are node-independent: one per edge flag.
        lb = objective.left_boundary
        self._bmap_inner = tuple(lb(b1, False) for b1 in range(P))
        self._bmap_edge = tuple(lb(b1, True) for b1 in range(P))
        self._rows_by_edge = _np.asarray(
            [
                [P if v is None else v for v in self._bmap_inner],
                [P if v is None else v for v in self._bmap_edge],
            ],
            dtype=_np.intp,
        )
        # Mirror slot pool: dense (q, b1, b2, label) tables of sealed nodes,
        # gathered stack-at-a-time by slot index.  Slots recycle FIFO; the
        # pool starts small and grows with the largest layer seen.
        self._pool_slots = 256
        self._pool = _np.full((self._pool_slots, P, P, P, L), _INF)
        self._slot_of: Dict[int, int] = {}
        self._slot_owner: List[Optional[int]] = [None] * self._pool_slots
        self._slot_gen: List[int] = [-1] * self._pool_slots
        self._slot_next = 0
        self._gen = 0
        self._masks: Dict[Tuple, Tuple] = {}
        self._mask_templates: List[Any] = []
        self._grid_info: Dict[int, Tuple] = {}
        self._re_pairs: Dict[Tuple, List[Tuple[int, int]]] = {}
        #: Lane budget per chunk, sized against the fused candidate tensor.
        per_lane = P * P * max(1, 2 * self._mid_len) * L
        self._lane_chunk = max(1, _CHUNK_ELEMENTS // per_lane)

    # -- mirror pool ---------------------------------------------------------------
    def release_dense(self) -> None:
        """Drop every pooled mirror (reconstruction reads only sealed tables)."""
        self._pool = None
        self._slot_of.clear()
        self._slot_owner = []
        self._slot_gen = []

    def _ensure_slots(self, needed: int) -> None:
        """Grow the pool so one gather can pin ``needed`` slots at once.

        A layer gather records slot indices first and fancy-gathers last,
        so every mirror it touches must survive until the gather — the pool
        must hold them all simultaneously (generation pinning below keeps
        the FIFO from recycling them mid-gather).
        """
        if needed < self._pool_slots:
            return
        # Double past the requirement so cross-layer mirror reuse has
        # headroom and growth amortises.
        new_slots = 1 << (2 * needed).bit_length()
        new_pool = _np.full((new_slots,) + self._pool.shape[1:], _INF)
        new_pool[: self._pool_slots] = self._pool
        self._pool = new_pool
        grow = new_slots - self._pool_slots
        self._slot_owner.extend([None] * grow)
        self._slot_gen.extend([-1] * grow)
        self._pool_slots = new_slots

    def _alloc_slot(self, nid: int) -> int:
        """Claim the next FIFO slot for ``nid``, evicting its previous owner.

        Slots pinned by the in-flight gather (generation match) are skipped;
        :meth:`_ensure_slots` guarantees an unpinned slot exists.
        """
        while True:
            slot = self._slot_next
            self._slot_next = (slot + 1) % self._pool_slots
            if self._slot_gen[slot] != self._gen:
                break
        owner = self._slot_owner[slot]
        if owner is not None:
            self._slot_of.pop(owner, None)
        self._slot_owner[slot] = nid
        self._slot_of[nid] = slot
        return slot

    def _mirror_slot(self, nid: int, table: Optional[List]) -> int:
        """Pool slot holding the dense cost mirror of one sealed node.

        Kernel-sealed nodes were registered by :meth:`finish_node`; leaf,
        scalar-fallback, and FIFO-evicted nodes are rebuilt here from their
        sealed sparse entries (``+inf`` at empty/invalid/pruned variants —
        exactly the sealed view either evaluator produces).
        """
        slot = self._slot_of.get(nid)
        if slot is not None:
            self._slot_gen[slot] = self._gen
            return slot
        slot = self._alloc_slot(nid)
        self._slot_gen[slot] = self._gen
        flat = self._pool[slot].reshape(-1, self.L)
        flat[:] = _INF
        if table is not None:
            for vi, entry in enumerate(table):
                if entry is None:
                    continue
                row = flat[vi]
                for label, cost in entry[2]:
                    row[label] = cost
        return slot

    def _blank_template(self, groups, q: int) -> int:
        """Index of the boolean blank row for invalid ``(b1, b2)`` at one ``q``.

        The row is ``True`` at every ``(b1, b2, label)`` slot whose variant
        is *not* in the node's variant grid — the lane reduction computes
        dense ``b1`` axes, so structurally invalid variants must be blanked
        to ``+inf`` before sealing and mirroring.  Variant grids are cached
        per ``(grid key, qmask)`` by the engine, so keying on ``id(groups)``
        (ref pinned via the cached value) dedupes templates across the run.
        """
        key = (id(groups), q)
        got = self._masks.get(key)
        if got is None:
            P, L = self.P, self.L
            mask = _np.ones((P, P, L), dtype=bool)
            for gq, b2, b1_list in groups:
                if gq != q:
                    continue
                for b1, _vi in b1_list:
                    mask[b1, b2, :] = False
            pos = len(self._mask_templates)
            self._mask_templates.append(mask.reshape(-1))
            got = self._masks[key] = (groups, pos)
        return got[1]

    def _grid_accounting(self, groups) -> Tuple[Tuple[int, int], Tuple[int, ...]]:
        """Cached per-grid ``((inc_inner, inc_rt2), distinct_qs)``.

        The increments are the scalar loop's child-lookup count for one
        active split: one left prefetch (``P * len(left range)``) plus one
        right-range scan per ``(q, b2)`` group.  ``distinct_qs`` lists the
        grid's populated ``q`` values in group order.  Keyed on the cached
        groups object's identity (the value holds the ref, pinning the id).
        """
        got = self._grid_info.get(id(groups))
        if got is None:
            obj = self.objective
            count_q: Dict[int, int] = {}
            for q, _b2, _b1_list in groups:
                count_q[q] = count_q.get(q, 0) + 1
            prefetch = self.P * self._mid_len
            inc = []
            for rt2 in (False, True):
                total = prefetch
                for q, cnt in count_q.items():
                    total += cnt * len(obj.right_b1_values(q, rt2))
                inc.append(total)
            got = self._grid_info[id(groups)] = (
                groups, tuple(inc), tuple(count_q),
            )
        return got[1], got[2]

    # -- the layer entry point -----------------------------------------------------
    def layer_split_tables(self, engine, nids: List[int], tables: List) -> Dict:
        """Stage the split-combine of every given node of one length layer.

        Returns ``{nid: _Staged}`` with the split part already reduced into
        each node's cost/winner slabs (same costs and tie-breaks as the
        scalar split loop) and ``lookups`` carrying the scalar loop's
        child-read count for that part.  The right-end merge, ``memo_hits``
        accounting, and sealing happen in :meth:`finish_node`.  Nodes whose
        rank field would overflow even the float64 packing are omitted
        (the engine falls back to the scalar loop).
        """
        columns = engine.decomp.columns
        i1s = engine._node_i1
        i2s = engine._node_i2
        plans = engine._node_plan
        scalar = self.scalar
        charge_matrix = self.objective.charge_matrix
        sh_s = self._sh_s
        P, L = self.P, self.L
        staged: Dict[int, _Staged] = {}
        lay = _Layer()
        cm_memo: Dict[Tuple, int] = {}  # (q, adjacent, stretch, rt2) -> cm pos
        cm_pos_map = lay.cm_pos
        cm_list = lay.cm_list
        rm_pos = lay.rm_pos
        rm_list = lay.rm_list
        lane_split, lane_rm, lane_s = lay.lane_split, lay.lane_rm, lay.lane_s
        # One slab/rank block per layer; each node's _Staged gets views.
        nb = len(nids)
        big_slab = _np.full((nb, P, P, P, L), _INF)
        big_rank = _np.zeros((nb, P, P, P, L), dtype=_np.int32)
        big_flat = big_slab.reshape(nb, P * P * P, L)
        big_rankflat = big_rank.reshape(nb, P * P * P, L)
        for ni, nid in enumerate(nids):
            q_list, groups = engine._variant_grid(nid)
            if not groups:
                staged[nid] = _Staged(
                    self, 0, q_list, groups, 0, (), (),
                    big_slab[ni], big_rank[ni],
                    big_flat[ni], big_rankflat[ni],
                )
                continue
            t1 = columns[i1s[nid]]
            jmax, splits, right_end_id = plans[nid]
            inc_by_rt2, grid_qs = self._grid_accounting(groups)
            # Active splits (both children materialised), in plan order.
            active: List[Tuple] = []
            idx_maps: List[Tuple] = []
            edges: List[int] = []
            lookups = 0
            for split in splits:
                if tables[split[1]] is None or tables[split[2]] is None:
                    continue
                lookups += inc_by_rt2[1 if split[5] else 0]
                active.append(split)
                at_edge = split[0] == t1
                idx_maps.append(self._bmap_edge if at_edge else self._bmap_inner)
                edges.append(1 if at_edge else 0)
            na = len(active)
            if not scalar and na * sh_s >= _BIG:
                continue  # rank overflow: leave to the scalar fallback
            st = _Staged(
                self, lookups, q_list, groups, jmax, active, idx_maps,
                big_slab[ni], big_rank[ni],
                big_flat[ni], big_rankflat[ni],
            )
            st.right_end_id = right_end_id
            st.t2 = columns[i2s[nid]]
            staged[nid] = st
            if not active:
                continue
            if na > lay.max_active:
                lay.max_active = na
            seg_lo = len(lay.seg_lane)
            lane_lo = len(lane_split)
            lid_pos = lay.lid_pos
            split_base = len(lay.split_lid)
            for split in active:
                lid = split[1]
                pos = lid_pos.get(lid)
                if pos is None:
                    pos = len(lay.lid_list)
                    lid_pos[lid] = pos
                    lay.lid_list.append(lid)
                lay.split_lid.append(pos)
            lay.split_edge.extend(edges)
            srange = range(split_base, split_base + na)
            sloc = range(na)
            # Bridge keys per (q, s): dedupe the charge matrix by identity
            # first (objectives cache and reuse them), then the bridge row
            # by (right child, q, charge).
            for q in grid_qs:
                lay.seg_lane.append(len(lane_split))
                lay.seg_qbase.append(q * P * P * L)
                lay.seg_mask.append(self._blank_template(groups, q))
                key_row: List[int] = []
                for split in active:
                    ck = (q, split[3], split[4], split[5])
                    cpos = cm_memo.get(ck)
                    if cpos is None:
                        cm = charge_matrix(q, split[3], split[4], split[5])
                        cpos = cm_pos_map.get(id(cm))
                        if cpos is None:
                            cpos = len(cm_list)
                            cm_pos_map[id(cm)] = cpos
                            cm_list.append(cm)
                        cm_memo[ck] = cpos
                    key = (split[2], q, cpos)
                    pos = rm_pos.get(key)
                    if pos is None:
                        pos = len(rm_list)
                        rm_pos[key] = pos
                        rm_list.append(key)
                    key_row.append(pos)
                lane_rm.extend(key_row)
                lane_split.extend(srange)
                lane_s.extend(sloc)
                st.rm_idx[q] = key_row
            lay.nodes.append(
                (st, seg_lo, len(lay.seg_lane), lane_lo, len(lane_split))
            )
        if lay.nodes:
            self._run_layer(lay, tables)
        return staged

    # -- layer reduction -----------------------------------------------------------
    def _gather_stacks(self, lay: _Layer, tables: List):
        """Pool-gather the layer's left planes, right planes, and charges."""
        np = _np
        self._gen += 1
        self._ensure_slots(len(lay.lid_list) + len(lay.rm_list) + 1)
        lslots = np.fromiter(
            (self._mirror_slot(lid, tables[lid]) for lid in lay.lid_list),
            dtype=np.intp,
            count=len(lay.lid_list),
        )
        nk = len(lay.rm_list)
        rslots = np.empty(nk, dtype=np.intp)
        rqs = np.empty(nk, dtype=np.intp)
        cms = np.empty(nk, dtype=np.intp)
        for pos, (rid, q, cpos) in enumerate(lay.rm_list):
            rslots[pos] = self._mirror_slot(rid, tables[rid])
            rqs[pos] = q
            cms[pos] = cpos
        # Left children always run with q = 1; trim lb2 to the mid range.
        lo, n_mid = self._mid_lo, self._mid_len
        pool = self._pool
        LQ = pool[lslots, 1][:, :, lo: lo + n_mid]
        RQ = pool[rslots, rqs]
        # Charge stack, transposed to [rb1][lb2] then trimmed, so the
        # bridge reduction over rb1 lands contiguous (key, b2, mid, ...)
        # outputs.
        CMT = np.asarray(lay.cm_list, dtype=float).transpose(0, 2, 1)[
            :, :, lo: lo + n_mid
        ]
        return LQ, RQ, CMT[cms]

    def _run_layer(self, lay: _Layer, tables: List) -> None:
        """Bulk-build the layer's derived stacks, then reduce node-aligned chunks."""
        np = _np
        P, L = self.P, self.L
        n_mid = self._mid_len
        LQ, RQ, CHT = self._gather_stacks(lay, tables)
        nl, nk = len(lay.lid_list), len(lay.rm_list)
        brarg = None
        if self.scalar:
            # Power: float64 throughout, no packing.  Bridge per key:
            # B[rb1, b2, mid] = charge[lb2][rb1] + right[rb1, b2]; reduce
            # over rb1 (first-occurrence argmin matches the scalar loop).
            B = CHT[:, :, None, :] + RQ[:, :, :, 0][:, :, :, None]
            R12 = B.min(axis=1)
            brarg = B.argmin(axis=1).astype(np.int32)
            # Row P is the all-inf "no left boundary" pad row gathered for
            # b1 values outside the left boundary map.
            LA = np.full((nl, P + 1, n_mid), _INF)
            LA[:, :P] = LQ[:, :, :, 0]
            dt = np.float64
            bigv = 0.0
        else:
            # Gap: pick the packing radix and dtype for this layer.  The
            # certificate bounds every finite packed candidate: costs add
            # (left + charge + right), ranks stay below the radix, and a
            # +2 pad absorbs the cost sum's rank carry.
            rank_cap = lay.max_active * self._sh_s
            bigv = float(1 << max(1, int(max(1, rank_cap - 1)).bit_length()))
            max_l = float(np.max(LQ, initial=0.0, where=np.isfinite(LQ)))
            max_r = float(np.max(RQ, initial=0.0, where=np.isfinite(RQ)))
            max_c = float(CHT.max()) if nk else 0.0
            if (max_l + max_r + max_c + 2.0) * bigv < float(_F32_LIMIT):
                dt = np.float32
            else:
                dt = np.float64
                bigv = float(_BIG)
            LPK = (LQ * bigv + self._lrank).astype(dt, copy=False)
            # Fused left stack over the doubled mid axis: [exact-ll | the
            # strict ll-prefix minima, shifted one label up].  Row P is the
            # all-inf "no left boundary" row fancy-gathered for b1 values
            # outside the left map.
            LA = np.full((nl, P + 1, 2 * n_mid, L), _INF, dtype=dt)
            LA[:, :P, :n_mid] = LPK
            LACC = np.minimum.accumulate(LPK, axis=3)
            LA[:, :P, n_mid:, 1:] = LACC[..., :-1]
            # Bridge stack over the same doubled axis: Z[key, rb1, b2, mid,
            # lr] packs charge + right; reduce rb1, then pair the exact-ll
            # branch with the lr-prefix minima (RACC) and the prefix-ll
            # branch with exact lr (RM) — concat order must match LA's.
            RPK = (RQ * bigv + self._rrank).astype(dt, copy=False)
            Z = (CHT * bigv).astype(dt, copy=False)[:, :, None, :, None] + RPK[
                :, :, :, None, :
            ]
            RM = Z.min(axis=1)
            RACC = np.minimum.accumulate(RM, axis=3)
            R12 = np.concatenate((RACC, RM), axis=2)
        lane_split = np.asarray(lay.lane_split, dtype=np.intp)
        lane_rm = np.asarray(lay.lane_rm, dtype=np.intp)
        lane_s = np.asarray(lay.lane_s)
        split_lid = np.asarray(lay.split_lid, dtype=np.intp)
        split_rows = self._rows_by_edge[np.asarray(lay.split_edge, dtype=np.intp)]
        mask_stack = self._mask_templates
        nodes = lay.nodes
        num_nodes = len(nodes)
        seg_lane = lay.seg_lane
        seg_qbase = lay.seg_qbase
        seg_mask = lay.seg_mask
        at = 0
        while at < num_nodes:
            chunk_lane_lo = nodes[at][3]
            end = at + 1
            while (
                end < num_nodes
                and nodes[end][4] - chunk_lane_lo <= self._lane_chunk
            ):
                end += 1
            chunk = nodes[at:end]
            lane_hi = chunk[-1][4]
            seg_lo, seg_hi = chunk[0][1], chunk[-1][2]
            li = lane_split[chunk_lane_lo:lane_hi]
            ri = lane_rm[chunk_lane_lo:lane_hi]
            si = split_lid[li]
            rw = split_rows[li]
            starts = np.asarray(
                [lane - chunk_lane_lo for lane in seg_lane[seg_lo:seg_hi]],
                dtype=np.intp,
            )
            if self.scalar:
                cost, rank = self._power_chunk(
                    LA, R12, si, rw, ri, starts, lane_hi - chunk_lane_lo
                )
            else:
                sh = (lane_s[chunk_lane_lo:lane_hi] * float(self._sh_s)).astype(
                    dt
                )[:, None, None, None]
                cost, rank = self._gap_chunk(LA, R12, si, rw, ri, sh, starts, bigv)
            # Blank structurally invalid variants, then extract the finite
            # coordinates and scatter each node's rows into its slabs.
            nsegs = seg_hi - seg_lo
            cost2 = cost.reshape(nsegs, -1)
            maskg = np.stack([mask_stack[m] for m in seg_mask[seg_lo:seg_hi]])
            cost2[maskg] = _INF
            qbase = np.asarray(seg_qbase[seg_lo:seg_hi], dtype=np.intp)
            rows, cols = np.nonzero(np.isfinite(cost2))
            coords = cols + qbase[rows]
            for st, node_seg_lo, node_seg_hi, _llo, _lhi in chunk:
                a, b = node_seg_lo - seg_lo, node_seg_hi - seg_lo
                ca = np.searchsorted(rows, a)
                cb = np.searchsorted(rows, b)
                st.finite = coords[ca:cb].tolist()
                q_arr = np.asarray(
                    [
                        qb // (P * P * L)
                        for qb in seg_qbase[node_seg_lo:node_seg_hi]
                    ],
                    dtype=np.intp,
                )
                st.slab[q_arr] = cost[a:b].reshape(-1, P, P, L)
                st.rank[q_arr] = rank[a:b].reshape(-1, P, P, L)
                st.brarg = brarg
            at = end

    def _gap_chunk(self, LA, R12, si, rw, ri, sh, starts, bigv):
        """Packed gap reduction over one node-aligned chunk of lanes.

        Output label ``lab = max(ll, lr)`` is covered by two disjoint
        branches — exact left label paired with the right prefix minimum,
        and the shifted strict left prefix paired with the exact right
        label — already concatenated along the doubled mid axis of ``LA``
        and ``R12``, so one fused add and one axis reduction handle both
        while every candidate's full visit-order rank survives.  Returns
        per-segment ``(cost, rank)`` arrays shaped ``(nsegs, P, P, L)``.
        """
        np = _np
        A12 = LA[si[:, None], rw]
        A12 += sh
        # cand[lane, b1, b2, 2*mid, lab]
        cand = A12[:, :, None, :, :] + R12[ri][:, None]
        reduced = np.minimum.reduceat(cand.min(axis=3), starts, axis=0).astype(
            np.float64, copy=False
        )
        cost = np.floor(reduced * (1.0 / bigv))
        with np.errstate(invalid="ignore"):
            rank = (reduced - cost * bigv).astype(np.int32)
        return cost, rank

    def _power_chunk(self, LA, BR, si, rw, ri, starts, nlanes):
        """Float power reduction over one node-aligned chunk of lanes.

        Association order matches the scalar loop exactly (``bridge =
        charge + right`` inside the stacked ``BR`` minima, then ``left +
        bridge`` here), so sums are bit-identical.  The reduction runs in
        two stages matching the scalar visit order's lexicographic
        tie-break: first-occurrence ``argmin`` over the mid-boundary axis
        within each lane, then the first lane achieving each segment
        minimum (one equality pass over the lane minima — ``n_mid`` times
        smaller than the candidate tensor).  Both ``min`` stages select
        (never combine) values, so costs keep their exact bit patterns.
        Returns per-segment ``(cost, win)`` arrays shaped ``(nsegs, P, P,
        1)`` with node-local ``s * n_mid + offset`` winner codes.
        """
        np = _np
        P = self.P
        n_mid = self._mid_len
        A = LA[si[:, None], rw]
        # cand[lane, mid, b1, b2]: mid first so the per-lane argmin below
        # picks the first (visit-order) minimal mid boundary.
        cand = A.transpose(0, 2, 1)[:, :, :, None] + BR[ri].transpose(0, 2, 1)[
            :, :, None, :
        ]
        mid_arg = cand.argmin(axis=1)
        lane_min = np.take_along_axis(cand, mid_arg[:, None], axis=1)[:, 0]
        mins = np.minimum.reduceat(lane_min, starts, axis=0)
        counts = np.diff(np.append(starts, nlanes))
        laneidx = np.arange(nlanes, dtype=np.float32).reshape(-1, 1, 1)
        win_lane = np.minimum.reduceat(
            np.where(
                lane_min == np.repeat(mins, counts, axis=0),
                laneidx,
                np.float32(_INF),
            ),
            starts,
            axis=0,
        )
        with np.errstate(invalid="ignore"):
            lane_abs = win_lane.astype(np.intp)
        np.clip(lane_abs, 0, nlanes - 1, out=lane_abs)
        grid = np.indices((P, P))
        off = mid_arg[lane_abs, grid[0], grid[1]]
        s_local = lane_abs - starts[:, None, None]
        win = (s_local * n_mid + off).astype(np.int32)
        return mins[..., None], win[..., None]

    # -- per-node finish: merge, prune, seal ----------------------------------------
    def finish_node(self, engine, nid: int, tables: List, st: _Staged):
        """Right-end merge, memo accounting, and sealing of one staged node.

        Applied per node in the v2 ``(length, k)`` order — the ``t' == t2``
        child lives in the same layer with ``k - 1`` jobs, so it is sealed
        (merged and pruned) before any node that reads it.  The merge is
        the scalar loop's block applied over a plain-list mirror of the
        cost slab; dominance pruning runs inline in the entry scan with
        exactly the scalar rule and counters.
        """
        obj = engine.objective
        P, L = self.P, self.L
        stats = engine.stats
        lookups = st.lookups
        flat = st.flat
        scalar = self.scalar
        rows = flat.ravel().tolist() if scalar else flat.tolist()
        integral = self.integral
        updates: List[Tuple[int, float, int]] = []  # (coord, cost, rank code)
        extra: List[int] = []
        right_end_id = st.right_end_id
        if right_end_id is not None:
            child_tables = tables[right_end_id]
            if child_tables is not None:
                k = engine._node_k[nid]
                # The (vi -> child vi) index map is a pure function of the
                # variant grid and k, shared by every node on that grid.
                pkey = (id(st.groups), k)
                pairs = self._re_pairs.get(pkey)
                if pairs is None:
                    pairs = []
                    for q, b2, b1_list in st.groups:
                        for b1, vi in b1_list:
                            child = obj.right_end_child(k, q, b1, b2)
                            if child is None:
                                continue
                            cq, cb1, cb2 = child
                            pairs.append((vi, (cq * P + cb1) * P + cb2))
                    self._re_pairs[pkey] = pairs
                lookups += len(pairs)
                if scalar:
                    ravel = rravel = None
                    for vi, cvi in pairs:
                        e = child_tables[cvi]
                        if e is None:
                            continue
                        cost = e[2][0][1]
                        if cost < rows[vi]:
                            if rows[vi] == _INF:
                                extra.append(vi)
                            rows[vi] = cost
                            if ravel is None:
                                ravel = flat.reshape(-1)
                                rravel = st.rankflat.reshape(-1)
                            ravel[vi] = cost
                            rravel[vi] = -cvi - 1
                else:
                    for vi, cvi in pairs:
                        e = child_tables[cvi]
                        if e is None:
                            continue
                        row = rows[vi]
                        for lab, cost in e[2]:
                            cur = row[lab]
                            if cost < cur:
                                if cur == _INF:
                                    extra.append(vi * L + lab)
                                row[lab] = cost
                                updates.append((vi * L + lab, cost, -cvi - 1))
        stats.memo_hits += lookups
        stats.states_computed += len(st.q_list) * P * P
        coords = st.finite
        if scalar:
            # L == 1 fast path: one label, no dominance rule — seal each
            # finite variant directly (order is irrelevant here: parents
            # address the list by variant index).
            if extra:
                coords = coords + extra
            out = [None] * (P * P * P)
            for vi in coords:
                out[vi] = (st, vi, ((0, rows[vi]),))
            self._pool[self._alloc_slot(nid)] = st.slab
            return out if coords else None
        if updates:
            ravel = flat.reshape(-1)
            rravel = st.rankflat.reshape(-1)
            for coord, cost, code in updates:
                ravel[coord] = cost
                rravel[coord] = code
        if extra:
            coords = sorted(coords + extra)
        out: List[Optional[Tuple]] = [None] * (P * P * P)
        any_entry = False
        drops = 0
        blank: List[int] = []
        cur_vi = -1
        entries: List[Tuple] = []
        best_corrected = None
        for coord in coords:
            vi, lab = divmod(coord, L)
            if vi != cur_vi:
                if entries:
                    out[cur_vi] = (st, cur_vi, tuple(entries))
                    any_entry = True
                cur_vi = vi
                entries = []
                best_corrected = None
            v = rows[vi][lab]
            if v == _INF:
                continue
            cost = int(v) if integral else v
            if lab >= 1:
                corrected = cost - lab
                if best_corrected is not None and corrected >= best_corrected:
                    drops += 1
                    blank.append(coord)
                    continue
                best_corrected = corrected
            entries.append((lab, cost))
        if entries:
            out[cur_vi] = (st, cur_vi, tuple(entries))
            any_entry = True
        if drops:
            stats.dominance_dropped += drops
            flat.reshape(-1)[blank] = _INF
        # The cost slab *is* the node's dense mirror for parent layers
        # (post-merge, post-prune, invalid variants blanked).
        self._pool[self._alloc_slot(nid)] = st.slab
        return out if any_entry else None
