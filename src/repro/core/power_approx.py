"""Multi-interval power minimization: the Theorem 3 approximation algorithm.

Theorem 3 of the paper gives, for every constant ``eps > 0``, a polynomial
time ``(1 + (2/3 + eps) * alpha)``-approximation for multi-interval power
minimization.  The algorithm (Lemmas 3-5 and Corollary 1, instantiated with
``k = 2``) is:

1. For each residue ``i`` modulo ``k``, build a ``(k+1)``-set-packing
   instance whose base set is the jobs plus the times congruent to ``i``:
   a set ``{j_{a_0}, ..., j_{a_{k-1}}, t}`` is included whenever job
   ``j_{a_l}`` may run at time ``t + l`` for every offset ``l``.  A packed
   set schedules ``k`` jobs back-to-back starting at ``t``.
2. Solve the packing problem with the Hurkens-Schrijver bounded local
   search, which packs at least a ``2/(k+1) - eps`` fraction of the optimum
   (Lemma 5); keep the residue with the larger packing (Lemma 4 guarantees a
   good residue exists).
3. Extend the resulting partial schedule to *all* jobs one augmenting path
   at a time (Lemma 3); each added job increases the number of spans by at
   most one.
4. Keep the processor active through a gap exactly when the gap is shorter
   than ``alpha`` (the optimal active-state policy for fixed execution
   times).

The returned report carries the schedule, its power cost, and the
certified upper bound ``(1 + (2/3 + eps) * alpha) * OPT >= cost`` in the
form of the trivial lower bounds ``OPT >= n`` and ``OPT >= n + alpha``
that the experiments use to measure empirical ratios without an exact
solver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..setpacking import SetPackingInstance, local_search_set_packing
from .exceptions import InfeasibleInstanceError, InvalidInstanceError
from .feasibility import complete_partial_schedule, is_feasible
from .jobs import MultiIntervalInstance
from .schedule import Schedule

__all__ = ["PowerApproxResult", "approximate_power_schedule", "build_packing_instance"]


@dataclass
class PowerApproxResult:
    """Result of the Theorem 3 approximation algorithm."""

    schedule: Schedule
    power: float
    alpha: float
    k: int
    residue: int
    packed_jobs: int
    guarantee_factor: float

    @property
    def num_spans(self) -> int:
        """Number of busy spans of the returned schedule."""
        return self.schedule.num_spans()

    @property
    def num_gaps(self) -> int:
        """Number of gaps of the returned schedule."""
        return self.schedule.num_gaps()

    def lower_bound(self) -> float:
        """A trivial lower bound on the optimal power (n executions + one wake-up)."""
        n = self.schedule.instance.num_jobs
        if n == 0:
            return 0.0
        return float(n) + min(self.alpha, 1.0) * 0.0 + self.alpha * (1.0 if n else 0.0)

    def empirical_ratio(self) -> float:
        """Power divided by the trivial lower bound (an upper bound on the true ratio)."""
        lb = self.lower_bound()
        if lb == 0:
            return 1.0
        return self.power / lb


def build_packing_instance(
    instance: MultiIntervalInstance, k: int, residue: int
) -> Tuple[SetPackingInstance, List[Tuple[Tuple[int, ...], int]]]:
    """Construct the (k+1)-set-packing instance of Lemma 5 for one residue class.

    Returns the packing instance together with, for each packing set, the
    job tuple and anchor time it encodes, so that packed sets can be turned
    back into schedule fragments.
    """
    if k < 2:
        raise InvalidInstanceError(f"k must be at least 2, got {k}")

    jobs_at_time: Dict[int, List[int]] = instance.allowed_map()
    anchor_times = sorted(
        {t for t in jobs_at_time if t % k == residue % k}
    )

    descriptors: List[Tuple[Tuple[int, ...], int]] = []
    sets: List[Set] = []
    for t in anchor_times:
        # Candidate jobs per offset 0..k-1.
        per_offset: List[List[int]] = []
        ok = True
        for offset in range(k):
            candidates = jobs_at_time.get(t + offset, [])
            if not candidates:
                ok = False
                break
            per_offset.append(candidates)
        if not ok:
            continue
        for combo in itertools.product(*per_offset):
            if len(set(combo)) != k:
                continue
            descriptors.append((tuple(combo), t))
            elements: Set = {("job", j) for j in combo}
            elements.add(("time", t))
            sets.append(elements)
    return SetPackingInstance(sets=sets), descriptors


def approximate_power_schedule(
    instance: MultiIntervalInstance,
    alpha: float,
    k: int = 2,
    swap_size: int = 2,
) -> PowerApproxResult:
    """Run the Theorem 3 approximation algorithm.

    Parameters
    ----------
    instance:
        The multi-interval instance; must be feasible.
    alpha:
        Wake-up (transition) cost.
    k:
        Block length of the packing construction (the paper's analysis uses
        ``k = 2``, giving the ``1 + (2/3 + eps) * alpha`` factor; larger
        ``k`` trades the packing fraction against the span bound of
        Corollary 1 and is exposed for the ablation experiment).
    swap_size:
        Swap size of the Hurkens-Schrijver local search.

    Returns
    -------
    :class:`PowerApproxResult` with the complete schedule and its power.
    """
    if alpha < 0:
        raise InvalidInstanceError(f"alpha must be non-negative, got {alpha}")
    n = instance.num_jobs
    if n == 0:
        empty = Schedule(instance=instance, assignment={})
        return PowerApproxResult(
            schedule=empty,
            power=0.0,
            alpha=float(alpha),
            k=k,
            residue=0,
            packed_jobs=0,
            guarantee_factor=1.0,
        )
    if not is_feasible(instance):
        raise InfeasibleInstanceError("multi-interval instance admits no feasible schedule")

    best_partial: Dict[int, int] = {}
    best_residue = 0
    for residue in range(k):
        packing, descriptors = build_packing_instance(instance, k=k, residue=residue)
        if not descriptors:
            continue
        chosen = local_search_set_packing(packing, swap_size=swap_size)
        partial: Dict[int, int] = {}
        used_times: Set[int] = set()
        for idx in chosen:
            if idx >= len(descriptors):
                continue
            job_tuple, anchor = descriptors[idx]
            # Packed sets are pairwise disjoint, so no job repeats; times are
            # disjoint because anchors are distinct and blocks have length k
            # within one residue class.
            conflict = False
            for offset, job_idx in enumerate(job_tuple):
                t = anchor + offset
                if job_idx in partial or t in used_times:
                    conflict = True
                    break
            if conflict:
                continue
            for offset, job_idx in enumerate(job_tuple):
                partial[job_idx] = anchor + offset
                used_times.add(anchor + offset)
        if len(partial) > len(best_partial):
            best_partial = partial
            best_residue = residue

    schedule = complete_partial_schedule(instance, best_partial)
    schedule.validate()
    power = schedule.power_cost(alpha)
    guarantee = 1.0 + (2.0 / 3.0) * float(alpha)
    return PowerApproxResult(
        schedule=schedule,
        power=power,
        alpha=float(alpha),
        k=k,
        residue=best_residue,
        packed_jobs=len(best_partial),
        guarantee_factor=guarantee,
    )
