"""Instance canonicalization for the exact interval DPs.

The interval dynamic programs behind Theorems 1 and 2 never read absolute
time: the engine consumes the candidate-column list only through column
*adjacency* and idle-*stretch* lengths (the gap objective's run-start
charges and the power objective's ``min(stretch, alpha)`` bridges), and job
windows only through their column indices.  Two instances that agree on

* the number of processors,
* the idle-stretch vector between consecutive candidate columns, and
* the multiset of job windows in dense column coordinates

are therefore *isomorphic*: they have the same feasibility, the same
optimal gap count, the same optimal power cost for every ``alpha``, and
their optimal schedules map onto each other by translating column indices
back to times and canonical job slots back to job indices.  This covers
every instance reachable from another by a time shift, a job permutation,
or renaming among jobs with identical windows.

:func:`canonical_form` computes that structure:

* **Job sorting and dedup with multiplicities** — jobs are sorted by their
  column-coordinate window; identical windows collapse into
  ``(window, count)`` runs in the key, and the permutation from canonical
  slots back to original job indices is retained for schedule remapping.
* **Time-coordinate compression** — candidate columns are remapped to
  dense indices ``0..C-1`` while the stretch vector records exactly how
  many forbidden integer times separate consecutive columns.  Stretch
  lengths are preserved verbatim (never clamped), because the power
  objective's bridge charges depend on them for every possible ``alpha``.
* **A stable canonical hash** — :attr:`CanonicalForm.digest` is the
  SHA-256 of the key's deterministic serialization, usable as a
  cross-process cache key or a corpus fingerprint.

:class:`CanonicalSolveCache` is the bounded LRU the solver adapters in
:mod:`repro.api.solvers` key by ``(objective, parameters, canonical key)``
so that ``solve_batch`` workloads with repeated or isomorphic instances
skip the DP entirely; :func:`canonical_assignment` and
:func:`restore_assignment` translate witnessing schedules into and out of
canonical coordinates.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple, Union

from .exceptions import InvalidInstanceError
from .jobs import Job, MultiprocessorInstance, OneIntervalInstance
from .timeutils import candidate_times_for_jobs, stretch_lengths

__all__ = [
    "CanonicalForm",
    "CanonicalSolveCache",
    "canonical_form",
    "canonical_instance",
    "canonical_assignment",
    "restore_assignment",
]

CanonicalizableInstance = Union[OneIntervalInstance, MultiprocessorInstance]

#: Canonical assignment: sorted ``(canonical job slot, column index)`` pairs.
CanonicalAssignment = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical structure of one instance plus the maps back to it.

    ``key`` is shared by every isomorphic instance; ``column_times`` and
    ``perm`` are instance-specific and translate canonical-coordinate
    schedules back into this instance's times and job indices.
    """

    key: Tuple
    num_processors: int
    column_times: Tuple[int, ...]
    stretches: Tuple[int, ...]
    job_windows: Tuple[Tuple[int, int], ...]  # per canonical slot, sorted
    perm: Tuple[int, ...]  # canonical slot -> original job index

    @property
    def digest(self) -> str:
        """Stable SHA-256 hex digest of the canonical key."""
        return hashlib.sha256(repr(self.key).encode("utf-8")).hexdigest()


def canonical_form(instance: CanonicalizableInstance) -> CanonicalForm:
    """Compute the canonical form of a one-interval or multiprocessor instance."""
    if isinstance(instance, MultiprocessorInstance):
        num_processors = instance.num_processors
    elif isinstance(instance, OneIntervalInstance):
        num_processors = 1
    else:
        raise InvalidInstanceError(
            f"cannot canonicalize {type(instance).__name__}; expected a "
            "one-interval or multiprocessor instance"
        )
    jobs = instance.jobs
    columns = tuple(candidate_times_for_jobs(jobs))
    column_index = {t: i for i, t in enumerate(columns)}
    # Releases and deadlines are always candidate columns (the candidate set
    # contains [r, r + n] and [d - n, d] clipped to the horizon).
    decorated = sorted(
        (column_index[job.release], column_index[job.deadline], idx)
        for idx, job in enumerate(jobs)
    )
    job_windows = tuple((lo, hi) for lo, hi, _idx in decorated)
    perm = tuple(idx for _lo, _hi, idx in decorated)
    stretches = stretch_lengths(columns)
    # Dedup with multiplicities: identical windows collapse to (window, count).
    compressed = []
    for window in job_windows:
        if compressed and compressed[-1][0] == window:
            compressed[-1][1] += 1
        else:
            compressed.append([window, 1])
    key = (
        num_processors,
        stretches,
        tuple((window, count) for window, count in compressed),
    )
    return CanonicalForm(
        key=key,
        num_processors=num_processors,
        column_times=columns,
        stretches=stretches,
        job_windows=job_windows,
        perm=perm,
    )


def canonical_instance(form: CanonicalForm) -> MultiprocessorInstance:
    """Materialise the canonical representative instance of ``form``.

    Columns are laid out densely from time 0 with the original stretch
    lengths between them, and jobs appear in canonical slot order.  Solving
    the representative yields the same objective values as solving any
    instance with the same canonical key (the metamorphic test-suite pins
    this for both objectives, including stretch-sensitive power cases).
    """
    times = [0]
    for stretch in form.stretches:
        times.append(times[-1] + 1 + stretch)
    jobs = [
        Job(release=times[lo], deadline=times[hi], name=f"c{slot}")
        for slot, (lo, hi) in enumerate(form.job_windows)
    ]
    return MultiprocessorInstance(jobs=jobs, num_processors=form.num_processors)


def canonical_assignment(
    form: CanonicalForm, times: Mapping[int, int]
) -> CanonicalAssignment:
    """Translate a ``job -> execution time`` map into canonical coordinates.

    The exact engines only ever place jobs at candidate columns, so every
    execution time has a column index; a time off the candidate grid is a
    caller error and raises ``KeyError``.
    """
    slot_of = {orig: slot for slot, orig in enumerate(form.perm)}
    column_index = {t: i for i, t in enumerate(form.column_times)}
    return tuple(
        sorted((slot_of[job_idx], column_index[t]) for job_idx, t in times.items())
    )


def restore_assignment(
    form: CanonicalForm, assignment: CanonicalAssignment
) -> Dict[int, int]:
    """Translate a canonical assignment into this instance's jobs and times.

    Jobs with identical windows are interchangeable, so any form with the
    same canonical key restores a valid, value-preserving schedule.
    """
    perm = form.perm
    column_times = form.column_times
    return {perm[slot]: column_times[col] for slot, col in assignment}


class CanonicalSolveCache:
    """A bounded LRU cache keyed by canonical solve keys.

    Values are opaque to the cache (the solver adapters store
    ``(feasible, value, canonical assignment)`` triples).  ``maxsize <= 0``
    disables the cache entirely — gets always miss and puts are dropped —
    so callers can turn caching off without branching.

    Every operation (including the hit/miss accounting) holds one lock, so
    the thread execution backend of :mod:`repro.runtime` can share a single
    cache across workers with exact counters; uncontended acquisition is
    cheap enough not to matter on the serial path.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disabled_gets = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """Return the cached value for ``key``, or ``None`` on a miss.

        Lookups while the cache is disabled count as ``disabled_gets``,
        not misses — a disabled cache has no hit rate, and folding these
        into ``misses`` would report a fake 0% to every stats surface.
        """
        with self._lock:
            if self.maxsize <= 0:
                self.disabled_gets += 1
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def peek(self, key):
        """Like :meth:`get` but counter- and LRU-neutral (cache introspection)."""
        with self._lock:
            if self.maxsize <= 0:
                return None
            return self._entries.get(key)

    def put(self, key, value) -> None:
        """Insert ``key -> value``, evicting least-recently-used overflow."""
        with self._lock:
            if self.maxsize <= 0:
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def configure(self, maxsize: int) -> None:
        """Resize (and, when shrinking, trim) the cache; ``<= 0`` disables it."""
        with self._lock:
            self.maxsize = int(maxsize)
            if self.maxsize <= 0:
                self._entries.clear()
                return
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/disabled counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disabled_gets = 0

    def stats(self) -> Dict[str, int]:
        """JSON-native snapshot: size, capacity, hits, misses, disabled gets."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "disabled_gets": self.disabled_gets,
            }
