"""The unified interval dynamic-programming engine behind Theorems 1 and 2.

Both exact results of the paper — multiprocessor gap minimization
(Theorem 1) and multiprocessor power minimization (Theorem 2) — are the same
Baptiste-style interval dynamic program over the state space
``(t1, t2, k, q, b1, b2)``: schedule the ``k`` earliest-deadline jobs
released in the candidate-column interval ``[t1, t2]``, with ``q``
processors at column ``t2`` already taken by enclosing subproblems and
boundary parameters ``b1`` / ``b2`` at the two end columns.  The recursion
branches on the execution column ``t'`` of the latest-deadline job; jobs
released after ``t'`` form the right subproblem and the rest the left one.

What differs between the two theorems is only the *value algebra*:

* :class:`GapObjective` — the subproblem value is a vector indexed by the
  exact maximum column occupancy of the subinterval (so the root can apply
  the ``- used processors`` correction of Lemma 1 without losing
  optimality); boundary parameters count the subproblem's *own* jobs at the
  end columns and splits pay a run-start charge.
* :class:`PowerObjective` — the subproblem value is a scalar power cost;
  boundary parameters count *active* processors and splits pay the
  closed-form bridging charge ``min(stretch, alpha)`` per processor active
  on both sides of an idle stretch (Lemma 2).

Two evaluators share the objectives:

* :class:`IntervalDPEngine` (**v2**, the default) evaluates **bottom-up**:
  a discovery pass walks the ``(t1, t2, k)`` node graph from the root,
  propagating the set of reachable ``q`` values per node, and the
  evaluation pass then processes nodes in increasing interval-length /
  job-count order.  Every node's ``(q, b1, b2)`` boundary variants live in
  one flat list indexed by the packed variant offset, so the hot combine
  loop reads child tables by direct list indexing — no generators, no
  suspension objects, and no dict hashing.  Node job sets are built
  incrementally (released-job lists extend their length-minus-one
  predecessor; split counts come from a two-pointer merge instead of
  per-column bisects).
* :class:`TrampolineDPEngine` (**v1**, kept for differential benchmarks)
  evaluates lazily top-down through an explicit stack of suspended
  generators with a dict memo over packed integer state keys.

Both engines share Hall-condition pre-pruning (a violated prefix/suffix
count proves every boundary variant of a node empty), dominance pruning of
the gap objective's occupancy vectors, and iterative schedule
reconstruction; both run in O(1) native stack depth.

The solvers in :mod:`repro.core.multiproc_gap_dp` and
:mod:`repro.core.multiproc_power_dp` are thin bindings of these objectives
onto an engine; :mod:`repro.verify` certifies engine results against brute
force and :mod:`repro.perf` measures both engines against each other and
against the frozen pre-engine solvers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from . import vector_kernels
from .dp_profile import IntervalDecomposition
from .exceptions import EngineConfigurationError, InvalidInstanceError
from .jobs import MultiprocessorInstance
from .schedule import MultiprocessorSchedule

__all__ = [
    "ENGINE_NAME",
    "ENGINE_VERSION",
    "VECTOR_ENGINE_VERSION",
    "BOTTOM_UP_ENGINE_VERSION",
    "TRAMPOLINE_ENGINE_VERSION",
    "ENGINE_CHOICES",
    "DEFAULT_ENGINE",
    "DEFAULT_VECTOR_MIN_WORK",
    "EngineStats",
    "VectorEngineStats",
    "EngineOutcome",
    "GapObjective",
    "PowerObjective",
    "IntervalDPEngine",
    "VectorizedDPEngine",
    "TrampolineDPEngine",
    "build_engine",
    "resolve_engine",
    "set_default_engine",
    "get_default_engine",
    "staircase_schedule",
]

ENGINE_NAME = "interval-dp"
#: Version of the current engine generation.  This is what namespaces the
#: canonicalization and disk caches — bumping it silently invalidates every
#: previously cached entry (the v3 kernels are byte-identical to v2, but a
#: fresh namespace keeps upgrade semantics unambiguous and lets replayed
#: engine metadata always match the code that would recompute it).
ENGINE_VERSION = "3.0"
#: Version of the vectorized (numpy min-plus kernel) evaluator.
VECTOR_ENGINE_VERSION = "3.0"
#: Version of the bottom-up, array-packed scalar evaluator.
BOTTOM_UP_ENGINE_VERSION = "2.0"
#: Version of the legacy generator-trampoline evaluator.
TRAMPOLINE_ENGINE_VERSION = "1.0"
#: Engine selectors accepted by :func:`build_engine` and the solvers.
#: ``"auto"`` resolves to ``"v3"`` when numpy is importable, else ``"v2"``.
ENGINE_CHOICES = ("auto", "v3", "v2", "v1")
#: The process-wide default selector (see :func:`set_default_engine`).
DEFAULT_ENGINE = "auto"

_MISSING = object()
_INF = float("inf")

#: Node job-count below which the Hall pre-check is skipped (see _node_jobs).
_HALL_CHECK_MIN_JOBS = 4

# Choice records stored in the value tables; reconstruction replays them.
_EMPTY_CHOICE = ("empty",)


@dataclass
class EngineStats:
    """Counters describing one engine run (exposed as JSON-native ints).

    The two evaluators fill the same counters with engine-appropriate
    meanings: ``states_computed`` counts DP states whose value table was
    materialised, ``memo_hits`` counts child-table reads served from
    already-computed storage (dict memo for v1, flat tables for v2), and
    ``peak_stack_depth`` is the deepest dependency chain the evaluation
    followed (suspension-stack depth for v1, longest node-DAG chain for
    v2); it is at least 1 whenever any state was computed.
    """

    states_computed: int = 0
    memo_hits: int = 0
    hall_pruned: int = 0
    dominance_dropped: int = 0
    plans_built: int = 0
    peak_stack_depth: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "states_computed": self.states_computed,
            "memo_hits": self.memo_hits,
            "hall_pruned": self.hall_pruned,
            "dominance_dropped": self.dominance_dropped,
            "plans_built": self.plans_built,
            "peak_stack_depth": self.peak_stack_depth,
        }


@dataclass
class VectorEngineStats(EngineStats):
    """v2 counters plus the v3 kernel-dispatch decisions.

    The base counters are *identical* to what the scalar evaluator would
    report on the same instance (the kernels account lookups analytically);
    the extra ones record how the per-node size heuristic resolved:
    ``vector_nodes`` branch nodes combined by the numpy kernels (covering
    ``vector_splits`` splits), ``vector_fallback_nodes`` branch nodes that
    stayed on the scalar loop (too little work, or numpy unavailable).
    """

    vector_nodes: int = 0
    vector_fallback_nodes: int = 0
    vector_splits: int = 0

    def as_dict(self) -> Dict[str, int]:
        data = super().as_dict()
        data["vector_nodes"] = self.vector_nodes
        data["vector_fallback_nodes"] = self.vector_fallback_nodes
        data["vector_splits"] = self.vector_splits
        return data


@dataclass
class EngineOutcome:
    """Raw outcome of one engine run: optimal value and a witnessing assignment."""

    feasible: bool
    value: Optional[float]
    assignment: Optional[Dict[int, int]]  # job index -> execution time
    stats: EngineStats


@dataclass(frozen=True)
class _SplitPlan:
    """Branch bookkeeping for one ``(i1, i2, k)`` node, shared by its boundary variants.

    ``splits`` holds one tuple per candidate column ``t' < t2`` of the
    latest-deadline job: ``(col_idx, t_prime, k_left, k_right, idx_next,
    adjacent, stretch, right_touches_t2)``.
    """

    jmax: int
    right_end: bool
    splits: Tuple[Tuple[int, int, int, int, int, bool, int, bool], ...]


def _hall_feasible(
    jobs, columns: List[int], p: int, node_jobs: Tuple[int, ...],
    releases: List[int], t1: int, t2: int,
) -> bool:
    """Necessary Hall-style feasibility of the node jobs on candidate columns.

    Checks prefix intervals ``[t1, d]`` over clipped deadlines and suffix
    intervals ``[r, t2]`` over releases (already inside the interval by
    construction) against capacity ``p`` per candidate column.  A violation
    proves the state (under *any* boundary parameters) admits no
    assignment, so the whole ``(q, b1, b2)`` family is pruned; passing
    proves nothing and the state is evaluated normally.
    """
    lo = bisect_left(columns, t1)
    hi = bisect_right(columns, t2)
    # Prefix: node jobs arrive in deadline order, so clipped deadlines are
    # non-decreasing and prefix counts are positional.
    for count, j in enumerate(node_jobs, start=1):
        d = jobs[j].deadline
        if d > t2:
            d = t2
        if count > p * (bisect_right(columns, d, lo, hi) - lo):
            return False
    # Suffix: same argument over releases, scanned from the right.
    for count, r in enumerate(reversed(releases), start=1):
        if count > p * (hi - bisect_left(columns, r, lo, hi)):
            return False
    return True


class GapObjective:
    """Value algebra of Theorem 1: gap count via occupancy-indexed vectors.

    Boundary parameters count the subproblem's own jobs at the end columns;
    the table maps each achievable exact maximum occupancy ``M`` to the
    cheapest run-start count, and the root applies ``+ b1 - M`` (first
    column's run-starts minus used processors).
    """

    name = "gaps"
    #: Costs are small non-negative ints: the v3 kernels may round-trip them
    #: through float64 exactly and cast winners back with ``int()``.
    integral_costs = True
    #: v3 policy: dominance pruning keeps gap tables label-sparse, and the
    #: dense kernels carry the full ``(b1, b2, label)`` product the scalar
    #: loop skips — measured 0.67-0.74x on the n>=60 bench cases — so the
    #: profit heuristic keeps gap nodes on the scalar combine unless an
    #: explicit ``vector_min_work`` forces the kernels (tests do).
    vector_min_work_default: Optional[int] = None

    def __init__(self, num_processors: int) -> None:
        self.p = num_processors
        #: Size of the value-table label space (occupancies 0..p).
        self.num_labels = num_processors + 1
        self._charges: Dict = {}

    def invalid_state(self, k: int, q: int, b1: int, b2: int) -> bool:
        return b1 > k or b2 > k or q + b2 > self.p

    def pre_branch_invalid(self, k: int, b1: int, b2: int) -> bool:
        return b1 + b2 > k

    def single_column(self, k, q, b1, b2, node_jobs, t):
        # All k jobs execute at the single column; boundary counts must agree.
        if b1 != b2 or b1 != k:
            return ()
        if k == 0:
            return ((q, (0, _EMPTY_CHOICE)),)
        if k + q > self.p:
            return ()
        return ((k + q, (0, ("column", node_jobs, t))),)

    def empty_interval(self, q, b1, b2, t1, t2):
        if b1 != 0 or b2 != 0:
            return ()
        return ((q, (q, _EMPTY_CHOICE)),)

    def right_end_child(self, k, q, b1, b2):
        if b2 < 1 or q + 1 > self.p:
            return None
        return (q + 1, b1, b2 - 1)

    def left_boundary(self, b1: int, at_left_edge: bool) -> Optional[int]:
        # The latest-deadline job running at t1 counts toward the boundary.
        if at_left_edge:
            return b1 - 1 if b1 >= 1 else None
        return b1

    def left_b2_values(self) -> Iterable[int]:
        # Own jobs of the left child at t'; jmax occupies one more slot (q=1).
        return range(self.p)

    def right_b1_values(self, q: int, right_touches_t2: bool) -> Iterable[int]:
        extra = q if right_touches_t2 else 0
        return range(self.p - extra + 1)

    def charge_matrix(self, q, adjacent, stretch, right_touches_t2):
        # Run-starts at the first column of the right subproblem: busy slots
        # there not already busy at the previous column (jmax's column when
        # the columns are adjacent, an idle column otherwise).  The matrix is
        # indexed ``[left_b2][right_b1]`` and cached — it only depends on the
        # external occupancy carried over and the column adjacency.
        extra = q if right_touches_t2 else 0
        key = (extra, adjacent)
        matrix = self._charges.get(key)
        if matrix is None:
            matrix = [
                [
                    max(0, rb + extra - (lb + 1 if adjacent else 0))
                    for rb in range(self.p + 1)
                ]
                for lb in range(self.p + 1)
            ]
            self._charges[key] = matrix
        return matrix

    def grid_key(self, k: int) -> int:
        # Variant validity depends on k only through ``b1 > k``, ``b2 > k``
        # and ``b1 + b2 > k`` with ``b1, b2 <= p``, so every ``k >= 2p``
        # yields the same variant grid and can share one cache entry.
        return k if k < 2 * self.p else 2 * self.p

    def root_total(self, b1: int, label: int, cost: int) -> Optional[int]:
        if label <= 0:
            return None
        return b1 + cost - label

    def prune_table(self, table: Dict, stats: EngineStats) -> None:
        # Occupancy labels combine by max up the split tree and the final
        # max is subtracted exactly once at the root, so an entry's value in
        # any enclosing context is (its cost + context costs) - max(M, X)
        # for some context label X.  An entry (M2, c2) with 1 <= M2 < M1
        # therefore dominates (M1, c1) whenever c2 - M2 <= c1 - M1: for
        # X <= M2 the root-corrected values tie at worst, and for X > M2 the
        # lower-occupancy entry is strictly better (it never raises the
        # combined max).  M = 0 entries are exempt on both sides — they can
        # be unusable at the root (the max must be positive), so they
        # neither dominate nor get dominated safely.
        if len(table) < 2:
            return
        best_corrected = None
        for label in sorted(table):
            if label < 1:
                continue
            corrected = table[label][0] - label
            if best_corrected is not None and corrected >= best_corrected:
                del table[label]
                stats.dominance_dropped += 1
            else:
                best_corrected = corrected

    def prune_arrays(self, costs: List, choices: List, stats: EngineStats) -> None:
        # Dense-array form of prune_table: dominated labels are blanked to
        # +inf instead of deleted (same rule, same counters).
        best_corrected = None
        for label in range(1, len(costs)):
            cost = costs[label]
            if cost == _INF:
                continue
            corrected = cost - label
            if best_corrected is not None and corrected >= best_corrected:
                costs[label] = _INF
                choices[label] = None
                stats.dominance_dropped += 1
            else:
                best_corrected = corrected

    def zero_value(self):
        return 0


class PowerObjective:
    """Value algebra of Theorem 2: scalar power with the min(stretch, alpha) bridge.

    Boundary parameters count *active* processors at the end columns; idle
    stretches between consecutive candidate columns are folded into the
    closed-form bridging charge, which keeps the DP on the polynomial
    candidate-column set.
    """

    name = "power"
    #: Scalar value algebra: a single table label (0).
    num_labels = 1
    #: Float costs: the v3 kernels must (and do) preserve summation order.
    integral_costs = False
    #: v3 policy: power tables are dense single-label float planes — the
    #: regime the kernels are built for — so every branch node with at
    #: least a couple of active splits goes through them (measured optimum
    #: across the n>=60 bench cases; single-split nodes stay scalar).
    vector_min_work_default: Optional[int] = 16

    def __init__(self, num_processors: int, alpha: float) -> None:
        if alpha < 0:
            raise InvalidInstanceError(f"alpha must be non-negative, got {alpha}")
        self.p = num_processors
        self.alpha = float(alpha)
        self._charges: Dict = {}

    def bridge_charge(self, stretch: int, active_before: int, active_after: int) -> float:
        """Cost of the columns strictly between two boundary columns plus the right column.

        Each processor active on both sides either stays active through the
        stretch (cost ``stretch``) or sleeps and wakes (cost ``alpha``);
        processors newly active on the right pay a wake-up.  The active time
        of the right boundary column itself is included.
        """
        shared = active_before if active_before < active_after else active_after
        newly_active = active_after - active_before
        if newly_active < 0:
            newly_active = 0
        return (
            float(active_after)
            + shared * min(float(stretch), self.alpha)
            + newly_active * self.alpha
        )

    def invalid_state(self, k: int, q: int, b1: int, b2: int) -> bool:
        return q > b2

    def pre_branch_invalid(self, k: int, b1: int, b2: int) -> bool:
        return False

    def single_column(self, k, q, b1, b2, node_jobs, t):
        if b1 != b2 or k + q > b1:
            return ()
        if k == 0:
            return ((0, (0.0, _EMPTY_CHOICE)),)
        return ((0, (0.0, ("column", node_jobs, t))),)

    def empty_interval(self, q, b1, b2, t1, t2):
        return ((0, (self.bridge_charge(t2 - t1 - 1, b1, b2), _EMPTY_CHOICE)),)

    def right_end_child(self, k, q, b1, b2):
        if q + 1 > b2:
            return None
        return (q + 1, b1, b2)

    def left_boundary(self, b1: int, at_left_edge: bool) -> Optional[int]:
        return b1

    def left_b2_values(self) -> Iterable[int]:
        # Total active processors at jmax's column; at least jmax's own.
        return range(1, self.p + 1)

    def right_b1_values(self, q: int, right_touches_t2: bool) -> Iterable[int]:
        return range(self.p + 1)

    def charge_matrix(self, q, adjacent, stretch, right_touches_t2):
        # Bridging cost indexed ``[active_mid][active_next]``; it depends
        # only on the idle stretch length, so the matrix is cached per stretch.
        matrix = self._charges.get(stretch)
        if matrix is None:
            matrix = [
                [self.bridge_charge(stretch, lb, rb) for rb in range(self.p + 1)]
                for lb in range(self.p + 1)
            ]
            self._charges[stretch] = matrix
        return matrix

    def grid_key(self, k: int) -> int:
        # Power variant validity (``q > b2``) never reads k: one grid per qmask.
        return 0

    def root_total(self, b1: int, label: int, cost: float) -> float:
        # First-column active processors pay their active time plus a wake-up.
        return b1 * (1.0 + self.alpha) + cost

    def prune_table(self, table: Dict, stats: EngineStats) -> None:
        # Scalar tables hold a single label; nothing to prune.
        return None

    def prune_arrays(self, costs: List, choices: List, stats: EngineStats) -> None:
        return None

    def zero_value(self):
        return 0.0


# ---------------------------------------------------------------------------
# v2: bottom-up, array-packed evaluation
# ---------------------------------------------------------------------------

# Node kinds of the v2 node graph.
_PRUNED, _SINGLE, _EMPTY, _BRANCH = 0, 1, 2, 3


class IntervalDPEngine:
    """Bottom-up evaluator of the ``(t1, t2, k, q, b1, b2)`` interval DP (v2).

    Evaluation runs in two passes:

    1. **Discovery** walks the ``(i1, i2, k)`` *node* graph from the root,
       classifying each node (single-column, empty-interval, branch, or
       pruned), building split plans, and propagating the set of reachable
       ``q`` values per node as a bitmask (left children always see
       ``q = 1``, right children inherit the parent's ``q``, right-end
       children see ``q + 1``).  Expansion is demand-driven — a node is
       walked only when the first bit reaches it — so subtrees no
       enclosing subproblem can ask for are never built, and the table
       pass never materialises a boundary family nobody queries.
       Capacity-dead splits (left child exceeding ``p`` slots per column
       minus jmax's, right child exceeding raw column capacity) are
       dropped at plan time.
    2. **Evaluation** processes nodes in increasing ``(interval length,
       job count)`` order — every dependency of a node strictly precedes it
       — writing each node's ``(q, b1, b2)`` variants into one flat list
       indexed by the packed variant offset ``(q*P + b1)*P + b2``.  The
       combine loop reads child tables by direct list indexing and keeps
       per-variant values in dense label-indexed cost arrays, so the hot
       path contains no generators, no dict hashing, and no per-state
       suspension objects.

    Node job sets are built incrementally: the released-job list of
    ``[t1, t2]`` extends the list of ``[t1, t2 - 1]`` by a rank-order merge
    with the jobs released exactly at ``t2``, sorted node releases extend
    their ``k - 1`` predecessor by one insertion, and split counts come
    from a two-pointer sweep instead of a bisect per candidate column.

    Parameters
    ----------
    decomp:
        The shared :class:`~repro.core.dp_profile.IntervalDecomposition`
        (candidate columns and job-set queries).
    objective:
        A :class:`GapObjective` or :class:`PowerObjective` (or any object
        implementing the same value-algebra interface).
    """

    version = BOTTOM_UP_ENGINE_VERSION

    def __init__(self, decomp: IntervalDecomposition, objective) -> None:
        self.decomp = decomp
        self.objective = objective
        self.p = decomp.num_processors
        self.stats = EngineStats()
        self._C = len(decomp.columns)
        self._P = self.p + 1
        self._labels = objective.num_labels
        # Per-column job lists (deadline-rank order) and rank lookup, the
        # substrate of the incremental released-list construction.
        self._rank = {j: r for r, j in enumerate(decomp.deadline_order)}
        self._col_jobs: List[Tuple[int, ...]] = [() for _ in range(self._C)]
        by_col: Dict[int, List[int]] = {}
        for j in decomp.deadline_order:
            by_col.setdefault(decomp.jobs[j].release, []).append(j)
        for release, ids in by_col.items():
            idx = decomp.column_index.get(release)
            if idx is not None:
                self._col_jobs[idx] = tuple(ids)
        self._released_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._releases_cache: Dict[Tuple[int, int, int], List[int]] = {}
        self._grid_cache: Dict[Tuple[int, int], Tuple[List, List]] = {}
        # Node graph (filled by _ensure_tables).
        self._key_to_id: Dict[int, int] = {}
        self._node_i1: List[int] = []
        self._node_i2: List[int] = []
        self._node_k: List[int] = []
        self._node_kind: List[int] = []
        self._node_jobs_list: List[Optional[Tuple[int, ...]]] = []
        self._node_plan: List[Optional[Tuple]] = []
        self._node_qmask: List[int] = []
        self._node_expanded: List[bool] = []
        self._tables: Optional[List[Optional[List]]] = None
        self._root_id: Optional[int] = None

    # -- public API -------------------------------------------------------------
    def solve(self) -> EngineOutcome:
        """Evaluate the DP bottom-up and reconstruct an optimal assignment."""
        obj = self.objective
        if len(self.decomp.jobs) == 0:
            return EngineOutcome(
                feasible=True, value=obj.zero_value(), assignment={}, stats=self.stats
            )
        self._ensure_tables()
        best: Optional[Tuple[float, int, int]] = None  # (total, variant, label)
        table = self._tables[self._root_id]
        if table is not None:
            P = self._P
            for b1 in range(P):
                base = b1 * P  # root variants have q = 0
                for b2 in range(P):
                    entry = table[base + b2]
                    if entry is None:
                        continue
                    for label, cost in entry[2]:
                        total = obj.root_total(b1, label, cost)
                        if total is None:
                            continue
                        if best is None or total < best[0]:
                            best = (total, base + b2, label)
        if best is None:
            return EngineOutcome(
                feasible=False, value=None, assignment=None, stats=self.stats
            )
        assignment = self._reconstruct(self._root_id, best[1], best[2])
        return EngineOutcome(
            feasible=True, value=best[0], assignment=assignment, stats=self.stats
        )

    def metadata(self) -> Dict:
        """JSON-native engine identification and pruning/memo statistics."""
        return {
            "name": ENGINE_NAME,
            "version": self.version,
            "objective": self.objective.name,
            "stats": self.stats.as_dict(),
        }

    # -- incremental node-job machinery ------------------------------------------
    def _released(self, i1: int, i2: int) -> Tuple[int, ...]:
        """Jobs released in columns ``[i1, i2]`` in deadline order.

        Built incrementally: the list for ``[i1, i2]`` extends the cached
        list for ``[i1, i2 - 1]`` by a rank-order merge with the jobs
        released exactly at column ``i2``, so no interval is ever rescanned
        from scratch.
        """
        cache = self._released_cache
        got = cache.get((i1, i2))
        if got is not None:
            return got
        j = i2
        while j > i1 and (i1, j - 1) not in cache:
            j -= 1
        if j == i1:
            current = self._col_jobs[i1]
            cache[(i1, i1)] = current
            j = i1 + 1
        else:
            current = cache[(i1, j - 1)]
        rank = self._rank
        col_jobs = self._col_jobs
        for idx in range(j, i2 + 1):
            newcomers = col_jobs[idx]
            if newcomers:
                merged: List[int] = []
                a, b = 0, 0
                la, lb = len(current), len(newcomers)
                while a < la and b < lb:
                    if rank[current[a]] <= rank[newcomers[b]]:
                        merged.append(current[a])
                        a += 1
                    else:
                        merged.append(newcomers[b])
                        b += 1
                merged.extend(current[a:])
                merged.extend(newcomers[b:])
                current = tuple(merged)
            cache[(i1, idx)] = current
        return current

    def _sorted_releases(self, i1: int, i2: int, k: int, node: Tuple[int, ...]) -> List[int]:
        """Ascending releases of the node jobs, extended from the ``k - 1`` node."""
        cache = self._releases_cache
        got = cache.get((i1, i2, k))
        if got is not None:
            return got
        prev = cache.get((i1, i2, k - 1)) if k > 1 else []
        jobs = self.decomp.jobs
        if prev is not None and len(prev) == k - 1:
            releases = list(prev)
            insort(releases, jobs[node[-1]].release)
        else:
            releases = sorted(jobs[j].release for j in node)
        cache[(i1, i2, k)] = releases
        return releases

    # -- discovery ---------------------------------------------------------------
    def _node_id(self, i1: int, i2: int, k: int) -> int:
        """Allocate (or look up) a node entry without expanding it.

        Expansion is demand-driven: a node is classified and its plan built
        only when the q-mask propagation first reaches it with a non-empty
        bitmask, so subtrees no enclosing subproblem can ask for (e.g.
        right-end chains whose shifted mask overflows past ``p``) are never
        walked at all.
        """
        key = (i1 * self._C + i2) * (len(self.decomp.jobs) + 1) + k
        nid = self._key_to_id.get(key)
        if nid is None:
            nid = len(self._node_i1)
            self._key_to_id[key] = nid
            self._node_i1.append(i1)
            self._node_i2.append(i2)
            self._node_k.append(k)
            self._node_kind.append(_PRUNED)
            self._node_jobs_list.append(None)
            self._node_plan.append(None)
            self._node_qmask.append(0)
            self._node_expanded.append(False)
        return nid

    def _expand(self, nid: int) -> None:
        """Classify one node and, for branch nodes, build its split plan."""
        decomp = self.decomp
        columns = decomp.columns
        i1, i2, k = self._node_i1[nid], self._node_i2[nid], self._node_k[nid]
        if k == 0:
            self._node_kind[nid] = _SINGLE if i1 == i2 else _EMPTY
            self._node_jobs_list[nid] = ()
            return
        released = self._released(i1, i2)
        if k > len(released) or k > self.p * (i2 - i1 + 1):
            return  # unreachable / over capacity: stays _PRUNED with no children
        node = released[:k]
        t1, t2 = columns[i1], columns[i2]
        releases = self._sorted_releases(i1, i2, k, node)
        if k >= _HALL_CHECK_MIN_JOBS and not _hall_feasible(
            decomp.jobs, columns, self.p, node, releases, t1, t2
        ):
            self.stats.hall_pruned += 1
            return
        self._node_jobs_list[nid] = node
        if i1 == i2:
            self._node_kind[nid] = _SINGLE
            return
        self._node_kind[nid] = _BRANCH
        jmax = node[-1]
        candidate_cols = decomp.candidate_columns_for_job(jmax, t1, t2)
        right_end = bool(candidate_cols) and candidate_cols[-1] == i2
        splits = []
        p = self.p
        ptr = 0  # two-pointer sweep: releases and candidate columns both ascend
        for ci in candidate_cols:
            t_prime = columns[ci]
            if t_prime == t2:
                continue
            while ptr < k and releases[ptr] <= t_prime:
                ptr += 1
            k_right = k - ptr
            k_left = k - 1 - k_right
            if k_left < 0:
                continue
            # Capacity gate: the left child always runs with q = 1 (jmax
            # occupies one slot at t'), so it is empty under every boundary
            # when its jobs exceed p per column minus that slot; likewise
            # the right child when its jobs exceed raw column capacity.
            # Dead splits never materialise their subtrees — the cheap
            # structural analogue of the lazy engine's left-gating.
            if k_left > p * (ci - i1 + 1) - 1:
                continue
            idx_next = ci + 1
            if k_right > p * (i2 - idx_next + 1):
                continue
            t_next = columns[idx_next]
            left_id = self._node_id(i1, ci, k_left)
            right_id = self._node_id(idx_next, i2, k_right)
            splits.append(
                (
                    t_prime,
                    left_id,
                    right_id,
                    t_next == t_prime + 1,
                    t_next - t_prime - 1,
                    idx_next == i2,
                )
            )
        right_end_id = self._node_id(i1, i2, k - 1) if right_end else None
        self._node_plan[nid] = (jmax, tuple(splits), right_end_id)
        self.stats.plans_built += 1

    def _ensure_tables(self) -> None:
        """Run demand-driven discovery and the dependency-ordered table pass once.

        Discovery and q-mask propagation are one interleaved worklist: a
        node is expanded (classified, plan built, children allocated) the
        first time a non-empty bitmask of reachable ``q`` values arrives,
        and each new bit flows onward through the already-built plan.
        Nodes that never receive a bit are never expanded — their subtrees
        do not exist as far as the table pass is concerned.
        """
        if self._tables is not None:
            return
        n = len(self.decomp.jobs)
        self._root_id = self._node_id(0, self._C - 1, n)
        masks = self._node_qmask
        kinds = self._node_kind
        plans = self._node_plan
        expanded = self._node_expanded
        full = (1 << self._P) - 1
        left_bit = 1 << 1  # left children are always evaluated with q = 1
        masks[self._root_id] = 1  # the root is queried with q = 0
        worklist: List[Tuple[int, int]] = [(self._root_id, 1)]
        while worklist:
            nid, bits = worklist.pop()
            if not expanded[nid]:
                expanded[nid] = True
                self._expand(nid)
            if kinds[nid] != _BRANCH:
                continue
            _jmax, splits, right_end_id = plans[nid]
            for _t_prime, left_id, right_id, _adj, _stretch, _rt2 in splits:
                add = left_bit & ~masks[left_id]
                if add:
                    masks[left_id] |= add
                    worklist.append((left_id, add))
                add = bits & ~masks[right_id]
                if add:
                    masks[right_id] |= add
                    worklist.append((right_id, add))
            if right_end_id is not None:
                shifted = (bits << 1) & full
                add = shifted & ~masks[right_end_id]
                if add:
                    masks[right_end_id] |= add
                    worklist.append((right_end_id, add))
        self._evaluate_all()

    # -- bottom-up evaluation -----------------------------------------------------
    def _evaluate_all(self) -> None:
        """Process every node in increasing (interval length, job count) order."""
        num = len(self._node_i1)
        i1s, i2s, ks = self._node_i1, self._node_i2, self._node_k
        order = sorted(range(num), key=lambda nid: (i2s[nid] - i1s[nid], ks[nid]))
        tables: List[Optional[List]] = [None] * num
        depths = [0] * num
        kinds = self._node_kind
        stats = self.stats
        peak = stats.peak_stack_depth
        for nid in order:
            if self._node_qmask[nid] == 0:
                continue
            kind = kinds[nid]
            if kind == _PRUNED:
                # A pruned node's boundary variants are all computed to be
                # empty; count them exactly as the lazy engine counted the
                # empty leaf tables it materialised for pruned states.
                q_count = bin(self._node_qmask[nid]).count("1")
                stats.states_computed += q_count * self._P * self._P
                depth = 1
            elif kind == _BRANCH:
                tables[nid] = self._branch_tables(nid, tables)
                _jmax, splits, right_end_id = self._node_plan[nid]
                depth = 0
                for _t, left_id, right_id, _adj, _stretch, _rt2 in splits:
                    if depths[left_id] > depth:
                        depth = depths[left_id]
                    if depths[right_id] > depth:
                        depth = depths[right_id]
                if right_end_id is not None and depths[right_end_id] > depth:
                    depth = depths[right_end_id]
                depth += 1
            else:
                tables[nid] = self._leaf_tables(nid, kind)
                depth = 1
            depths[nid] = depth
            if depth > peak:
                peak = depth
        stats.peak_stack_depth = peak
        self._tables = tables

    def _variant_grid(self, nid: int) -> Tuple[List[int], List[Tuple[int, int, List]]]:
        """Reachable ``q`` values and the valid variants grouped by ``(q, b2)``.

        Grids only depend on the node through ``(objective.grid_key(k),
        qmask)``, so they are cached per run and shared across nodes — the
        v3 kernels additionally key derived blanking masks on the cached
        groups object's identity.
        """
        obj = self.objective
        k = self._node_k[nid]
        mask = self._node_qmask[nid]
        gk = getattr(obj, "grid_key", None)
        key = (gk(k) if gk is not None else k, mask)
        got = self._grid_cache.get(key)
        if got is not None:
            return got
        P = self._P
        q_list = [q for q in range(P) if mask >> q & 1]
        invalid = obj.invalid_state
        pre_invalid = obj.pre_branch_invalid
        groups: List[Tuple[int, int, List]] = []
        for q in q_list:
            for b2 in range(P):
                b1_list = []
                for b1 in range(P):
                    if invalid(k, q, b1, b2) or pre_invalid(k, b1, b2):
                        continue
                    b1_list.append((b1, (q * P + b1) * P + b2))
                if b1_list:
                    groups.append((q, b2, b1_list))
        got = (q_list, groups)
        self._grid_cache[key] = got
        return got

    def _seal(self, out: List, q_count: int) -> Optional[List]:
        """Prune, freeze sparse entry views, and count one node's tables."""
        obj = self.objective
        stats = self.stats
        L = self._labels
        any_entry = False
        if L == 1:
            # Scalar value algebra: nothing to prune, one possible entry.
            for vi, tbl in enumerate(out):
                if tbl is None:
                    continue
                c0 = tbl[0][0]
                if c0 != _INF:
                    out[vi] = (tbl[0], tbl[1], ((0, c0),))
                    any_entry = True
                else:
                    out[vi] = None
            stats.states_computed += q_count * self._P * self._P
            return out if any_entry else None
        for vi, tbl in enumerate(out):
            if tbl is None:
                continue
            costs, choices = tbl
            obj.prune_arrays(costs, choices, stats)
            entries = tuple(
                (label, costs[label]) for label in range(L) if costs[label] != _INF
            )
            if entries:
                out[vi] = (costs, choices, entries)
                any_entry = True
            else:
                out[vi] = None
        stats.states_computed += q_count * self._P * self._P
        return out if any_entry else None

    def _leaf_tables(self, nid: int, kind: int) -> Optional[List]:
        """Tables of a single-column or empty-interval node, all variants at once."""
        obj = self.objective
        P = self._P
        L = self._labels
        columns = self.decomp.columns
        i1, i2, k = self._node_i1[nid], self._node_i2[nid], self._node_k[nid]
        node = self._node_jobs_list[nid]
        t1, t2 = columns[i1], columns[i2]
        mask = self._node_qmask[nid]
        q_list = [q for q in range(P) if mask >> q & 1]
        invalid = obj.invalid_state
        out: List[Optional[Tuple]] = [None] * (P * P * P)
        for q in q_list:
            base_q = q * P
            for b1 in range(P):
                base = (base_q + b1) * P
                for b2 in range(P):
                    if invalid(k, q, b1, b2):
                        continue
                    if kind == _SINGLE:
                        table = obj.single_column(k, q, b1, b2, node, t1)
                    else:
                        table = obj.empty_interval(q, b1, b2, t1, t2)
                    if not table:
                        continue
                    costs = [_INF] * L
                    choices: List = [None] * L
                    for label, (cost, choice) in table:
                        costs[label] = cost
                        choices[label] = choice
                    out[base + b2] = [costs, choices]
        return self._seal(out, len(q_list))

    def _branch_tables(self, nid: int, tables: List) -> Optional[List]:
        """Tables of one branch node: combine child tables over every split."""
        obj = self.objective
        P = self._P
        columns = self.decomp.columns
        i1, i2, k = self._node_i1[nid], self._node_i2[nid], self._node_k[nid]
        t1, t2 = columns[i1], columns[i2]
        jmax, splits, right_end_id = self._node_plan[nid]
        q_list, groups = self._variant_grid(nid)
        out: List[Optional[List]] = [None] * (P * P * P)
        if not groups:
            return self._seal(out, len(q_list))
        L = self._labels
        scalar = L == 1
        left_range = list(obj.left_b2_values())
        left_boundary = obj.left_boundary
        lookups = 0
        for t_prime, left_id, right_id, adjacent, stretch, rt2 in splits:
            left_tables = tables[left_id]
            right_tables = tables[right_id]
            if left_tables is None or right_tables is None:
                continue
            at_edge = t_prime == t1
            # Left children always run with q = 1; prefetch their sparse
            # entry views once per split, shared by every parent variant.
            left_by_b1: List[List] = []
            for lb1 in range(P):
                base = (P + lb1) * P
                entries = []
                for lb2 in left_range:
                    e = left_tables[base + lb2]
                    if e is not None:
                        entries.append((lb2, e[2], base + lb2))
                left_by_b1.append(entries)
            lookups += P * len(left_range)
            for q, b2, b1_list in groups:
                right_range = obj.right_b1_values(q, rt2)
                rbase = q * P * P + b2
                right_entries = []
                for rb1 in right_range:
                    rvi = rbase + rb1 * P
                    e = right_tables[rvi]
                    if e is not None:
                        right_entries.append((rb1, e[2], rvi))
                lookups += len(right_range)
                if not right_entries:
                    continue
                charges = obj.charge_matrix(q, adjacent, stretch, rt2)
                if scalar:
                    # Scalar value algebra (power): the best right boundary
                    # for a given mid-boundary lb2 is independent of b1, so
                    # hoist the min over rb1 out of the b1 loop.
                    best_right = []
                    for lb2 in range(P):
                        charge_row = charges[lb2]
                        bv = _INF
                        brvi = -1
                        for rb1, r_entries, rvi in right_entries:
                            cost = charge_row[rb1] + r_entries[0][1]
                            if cost < bv:
                                bv = cost
                                brvi = rvi
                        best_right.append((bv, brvi))
                    for b1, vi in b1_list:
                        lb1 = left_boundary(b1, at_edge)
                        if lb1 is None:
                            continue
                        left_entries = left_by_b1[lb1]
                        if not left_entries:
                            continue
                        tbl = out[vi]
                        if tbl is None:
                            costs = [_INF]
                            choices: List = [None]
                            tbl = out[vi] = [costs, choices]
                        else:
                            costs, choices = tbl
                        for lb2, l_entries, lvi in left_entries:
                            bv, brvi = best_right[lb2]
                            cost = l_entries[0][1] + bv
                            if cost < costs[0]:
                                costs[0] = cost
                                choices[0] = (
                                    "split", jmax, t_prime,
                                    left_id, lvi, 0, right_id, brvi, 0,
                                )
                    continue
                for b1, vi in b1_list:
                    lb1 = left_boundary(b1, at_edge)
                    if lb1 is None:
                        continue
                    left_entries = left_by_b1[lb1]
                    if not left_entries:
                        continue
                    tbl = out[vi]
                    if tbl is None:
                        costs = [_INF] * L
                        choices = [None] * L
                        tbl = out[vi] = [costs, choices]
                    else:
                        costs, choices = tbl
                    for lb2, l_entries, lvi in left_entries:
                        charge_row = charges[lb2]
                        for rb1, r_entries, rvi in right_entries:
                            charge = charge_row[rb1]
                            for ll, cl in l_entries:
                                base_cost = cl + charge
                                for lr, cr in r_entries:
                                    lab = ll if ll >= lr else lr
                                    cost = base_cost + cr
                                    if cost < costs[lab]:
                                        costs[lab] = cost
                                        choices[lab] = (
                                            "split", jmax, t_prime,
                                            left_id, lvi, ll, right_id, rvi, lr,
                                        )
        # Case t' == t2: the latest-deadline job runs at the right boundary.
        if right_end_id is not None:
            child_tables = tables[right_end_id]
            if child_tables is not None:
                for q, b2, b1_list in groups:
                    for b1, vi in b1_list:
                        child = obj.right_end_child(k, q, b1, b2)
                        if child is None:
                            continue
                        cq, cb1, cb2 = child
                        cvi = (cq * P + cb1) * P + cb2
                        lookups += 1
                        e = child_tables[cvi]
                        if e is None:
                            continue
                        tbl = out[vi]
                        if tbl is None:
                            costs = [_INF] * L
                            choices = [None] * L
                            tbl = out[vi] = [costs, choices]
                        else:
                            costs, choices = tbl
                        for lab, cost in e[2]:
                            if cost < costs[lab]:
                                costs[lab] = cost
                                choices[lab] = (
                                    "right_end", right_end_id, cvi, lab, jmax, t2,
                                )
        self.stats.memo_hits += lookups
        return self._seal(out, len(q_list))

    # -- reconstruction ----------------------------------------------------------
    def _reconstruct(self, node_id: int, variant: int, label: int) -> Dict[int, int]:
        """Replay table choices into a ``job -> time`` assignment, iteratively."""
        assignment: Dict[int, int] = {}
        tables = self._tables
        stack: List[Tuple[int, int, int]] = [(node_id, variant, label)]
        while stack:
            nid, vi, lab = stack.pop()
            entry = tables[nid][vi]
            if entry is None:
                raise AssertionError("reconstruction reached a pruned table entry")
            ch = entry[1]
            if type(ch) is int:
                # Kernel-sealed entry: (staged node, variant index, entries) —
                # the choice decodes lazily from the staged winner slabs.
                choice = vector_kernels.decode_choice(entry[0], ch, lab)
            else:
                choice = ch[lab]
            if choice is None:
                raise AssertionError("reconstruction reached a pruned table entry")
            tag = choice[0]
            if tag == "empty":
                continue
            if tag == "column":
                for job_idx in choice[1]:
                    assignment[job_idx] = choice[2]
                continue
            if tag == "right_end":
                _tag, child_id, child_vi, child_label, jmax, t2 = choice
                assignment[jmax] = t2
                stack.append((child_id, child_vi, child_label))
                continue
            if tag == "split":
                (_tag, jmax, t_prime, left_id, lvi, ll, right_id, rvi, lr) = choice
                assignment[jmax] = t_prime
                stack.append((left_id, lvi, ll))
                stack.append((right_id, rvi, lr))
                continue
            raise AssertionError(f"unknown reconstruction tag {tag!r}")
        return assignment


# ---------------------------------------------------------------------------
# v1: lazy top-down evaluation through a generator trampoline
# ---------------------------------------------------------------------------
#: Default work floor (``len(splits) * P^2 * L^2``) below which a branch
#: node stays on the scalar combine, used for objectives that don't
#: declare their own ``vector_min_work_default``.  Tiny nodes lose more to
#: ndarray dispatch overhead than the kernels save; the shipped objectives
#: carry tuned per-objective defaults (see docs/performance.md).
DEFAULT_VECTOR_MIN_WORK = 192


class VectorizedDPEngine(IntervalDPEngine):
    """v3: the bottom-up evaluator with numpy min-plus combine kernels.

    Discovery, split planning, sealing, pruning, and reconstruction are all
    inherited unchanged from :class:`IntervalDPEngine`; what changes is the
    evaluation pass: nodes are processed in the same ``(interval length,
    job count)`` order, but grouped into *length layers*.  Split children
    always live on strictly shorter intervals, so the variant-combination
    step of every qualifying branch node in a layer is data-ready at once
    and is staged by one batched numpy kernel invocation
    (:meth:`repro.core.vector_kernels.MinPlusKernel.layer_split_tables`);
    the remaining per-node work — the ``t' == t2`` right-end merge (whose
    child shares the layer), memo accounting, and sealing — then runs
    scalar in the v2 order.  Nodes below a per-node work heuristic fall
    back to the scalar combine loop entirely.  The kernels carry a
    byte-identity contract (same costs, bit-for-bit; same choice tuples;
    same stats counters), so v3 results — including float power values —
    are interchangeable with v2's everywhere: solve caches, differential
    suites, and the service layer observe no difference beyond speed and
    the extra :class:`VectorEngineStats` counters.

    Parameters
    ----------
    decomp, objective:
        As for :class:`IntervalDPEngine`.
    vector_min_work:
        Work floor for the per-node heuristic (``len(splits) * P^2 * L^2``
        must reach it for the kernels to run).  ``None`` picks the
        objective's tuned default for ``p >= 2`` — power vectorizes nearly
        every branch node, gap stays on the scalar combine because its
        dominance-pruned tables are label-sparse (dense kernels measured
        slower) — and disables the kernels entirely at ``p <= 1``, where
        tables are so small the scalar loop always wins; pass ``0`` to
        force vectorization everywhere (used by tests and the bench's
        forced-kernel column).
    """

    version = VECTOR_ENGINE_VERSION

    def __init__(
        self,
        decomp: IntervalDecomposition,
        objective,
        vector_min_work: Optional[int] = None,
    ) -> None:
        super().__init__(decomp, objective)
        self.stats = VectorEngineStats()
        if vector_min_work is None and self.p >= 2:
            # Objective-tuned default; at p <= 1 tables are so small the
            # scalar loop always wins and the kernels stay off entirely
            # (an explicit vector_min_work — tests — still forces them).
            vector_min_work = getattr(
                objective, "vector_min_work_default", DEFAULT_VECTOR_MIN_WORK
            )
        self.vector_min_work = vector_min_work
        self._kernel = (
            vector_kernels.MinPlusKernel(objective, self.p)
            if vector_min_work is not None and vector_kernels.numpy_available()
            else None
        )
        self._combo_size = self._P * self._P * self._labels * self._labels

    def solve(self) -> EngineOutcome:
        outcome = super().solve()
        if self._kernel is not None:
            # Reconstruction reads only the sealed sparse tables; the dense
            # float mirrors are dead weight once the answer is out.
            self._kernel.release_dense()
        return outcome

    def metadata(self) -> Dict:
        meta = super().metadata()
        meta["numpy"] = vector_kernels.numpy_version()
        return meta

    def _evaluate_all(self) -> None:
        """Layer-batched evaluation: kernel pass per length, scalar finish."""
        kernel = self._kernel
        if kernel is None:
            return super()._evaluate_all()
        num = len(self._node_i1)
        i1s, i2s, ks = self._node_i1, self._node_i2, self._node_k
        order = sorted(range(num), key=lambda nid: (i2s[nid] - i1s[nid], ks[nid]))
        tables: List[Optional[List]] = [None] * num
        depths = [0] * num
        kinds = self._node_kind
        plans = self._node_plan
        qmasks = self._node_qmask
        stats = self.stats
        peak = stats.peak_stack_depth
        min_work = self.vector_min_work
        combo = self._combo_size
        total = len(order)
        lo = 0
        while lo < total:
            length = i2s[order[lo]] - i1s[order[lo]]
            hi = lo
            while hi < total and i2s[order[hi]] - i1s[order[hi]] == length:
                hi += 1
            batch = [
                nid
                for nid in order[lo:hi]
                if qmasks[nid] != 0
                and kinds[nid] == _BRANCH
                and len(plans[nid][1]) * combo >= min_work
            ]
            staged = kernel.layer_split_tables(self, batch, tables) if batch else {}
            for idx in range(lo, hi):
                nid = order[idx]
                if qmasks[nid] == 0:
                    continue
                kind = kinds[nid]
                if kind == _PRUNED:
                    q_count = bin(qmasks[nid]).count("1")
                    stats.states_computed += q_count * self._P * self._P
                    depth = 1
                elif kind == _BRANCH:
                    pre = staged.get(nid)
                    if pre is not None:
                        stats.vector_nodes += 1
                        stats.vector_splits += len(plans[nid][1])
                        tables[nid] = self._finish_branch(nid, tables, pre)
                    else:
                        tables[nid] = self._branch_tables(nid, tables)
                    _jmax, splits, right_end_id = plans[nid]
                    depth = 0
                    for _t, left_id, right_id, _adj, _stretch, _rt2 in splits:
                        if depths[left_id] > depth:
                            depth = depths[left_id]
                        if depths[right_id] > depth:
                            depth = depths[right_id]
                    if right_end_id is not None and depths[right_end_id] > depth:
                        depth = depths[right_end_id]
                    depth += 1
                else:
                    tables[nid] = self._leaf_tables(nid, kind)
                    depth = 1
                depths[nid] = depth
                if depth > peak:
                    peak = depth
            lo = hi
        stats.peak_stack_depth = peak
        self._tables = tables

    def _branch_tables(self, nid: int, tables: List) -> Optional[List]:
        self.stats.vector_fallback_nodes += 1
        return super()._branch_tables(nid, tables)

    def _finish_branch(self, nid: int, tables: List, pre) -> Optional[List]:
        """Finish one kernel-staged node: right-end merge, accounting, sealing.

        ``pre`` is the kernel's :class:`~repro.core.vector_kernels._Staged`
        record; :meth:`~repro.core.vector_kernels.MinPlusKernel.finish_node`
        applies the scalar loop's ``t' == t2`` merge (same strict ``<`` tie
        breaks), folds dominance pruning into sealing with the scalar rule
        and counters, and registers the node's cost slab as its dense
        mirror for the next layer's kernels.
        """
        return self._kernel.finish_node(self, nid, tables, pre)


class TrampolineDPEngine:
    """Lazy top-down evaluator of the interval DP (v1, generator trampoline).

    Kept as the differential reference for :class:`IntervalDPEngine` and as
    the measured "engine v1" column of ``repro-sched bench``.  States are
    evaluated by an explicit stack of suspended generators over a dict memo
    keyed by packed mixed-radix integers; see the module docstring for the
    shared state space and pruning machinery.
    """

    version = TRAMPOLINE_ENGINE_VERSION

    def __init__(self, decomp: IntervalDecomposition, objective) -> None:
        self.decomp = decomp
        self.objective = objective
        self.p = decomp.num_processors
        self.stats = EngineStats()
        self.memo: Dict[int, Dict] = {}
        self._node_cache: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._plan_cache: Dict[int, _SplitPlan] = {}
        # Mixed-radix bases of the flat integer state keys.
        self._C = len(decomp.columns)
        self._n1 = len(decomp.jobs) + 1
        self._P = self.p + 1

    # -- public API -------------------------------------------------------------
    def solve(self) -> EngineOutcome:
        """Evaluate the DP at the root and reconstruct an optimal assignment."""
        obj = self.objective
        n = self._n1 - 1
        if n == 0:
            return EngineOutcome(
                feasible=True, value=obj.zero_value(), assignment={}, stats=self.stats
            )
        i2 = self._C - 1
        best: Optional[Tuple[float, int, int]] = None  # (total, root key, label)
        for b1 in range(self.p + 1):
            for b2 in range(self.p + 1):
                fields = (0, i2, n, 0, b1, b2)
                table = self.evaluate(fields)
                for label, entry in table:
                    total = obj.root_total(b1, label, entry[0])
                    if total is None:
                        continue
                    if best is None or total < best[0]:
                        best = (total, self._encode(*fields), label)
        if best is None:
            return EngineOutcome(
                feasible=False, value=None, assignment=None, stats=self.stats
            )
        assignment = self._reconstruct(best[1], best[2])
        return EngineOutcome(
            feasible=True, value=best[0], assignment=assignment, stats=self.stats
        )

    def metadata(self) -> Dict:
        """JSON-native engine identification and pruning/memo statistics."""
        return {
            "name": ENGINE_NAME,
            "version": self.version,
            "objective": self.objective.name,
            "stats": self.stats.as_dict(),
        }

    # -- state-key packing ------------------------------------------------------
    def _encode(self, i1: int, i2: int, k: int, q: int, b1: int, b2: int) -> int:
        P = self._P
        return ((((i1 * self._C + i2) * self._n1 + k) * P + q) * P + b1) * P + b2

    # -- iterative evaluation ---------------------------------------------------
    def evaluate(self, fields: Tuple[int, int, int, int, int, int]) -> Dict:
        """Evaluate one state (and, transitively, everything it depends on).

        The recursion is simulated by an explicit stack of suspended
        generators: each generator yields the child states it needs, the
        driver answers from the memo or pushes the child, and a finished
        generator's return value is memoised and sent to its parent.  Native
        stack depth stays O(1) no matter how deep the DP nests.
        """
        key = self._encode(*fields)
        memo = self.memo
        found = memo.get(key, _MISSING)
        if found is not _MISSING:
            self.stats.memo_hits += 1
            return found
        stats = self.stats
        # Any evaluation — even one answered inline by a leaf table —
        # examined at least one logical stack level; leaf- or Hall-pruned-
        # only runs previously reported a depth of 0.
        if stats.peak_stack_depth < 1:
            stats.peak_stack_depth = 1
        leaf = self._leaf_table(*fields)
        if leaf is not _MISSING:
            memo[key] = leaf
            stats.states_computed += 1
            return leaf
        stack: List[Tuple[int, object]] = [(key, self._state_gen(*fields))]
        send_value = None
        while stack:
            top_key, gen = stack[-1]
            try:
                child_key, child_fields = gen.send(send_value)
            except StopIteration as done:
                table = done.value if done.value is not None else ()
                memo[top_key] = table
                stats.states_computed += 1
                stack.pop()
                send_value = table
                continue
            # Terminal and structurally-invalid children are computed inline;
            # only genuine branch states pay for a suspended generator.
            table = self._leaf_table(*child_fields)
            if table is not _MISSING:
                memo[child_key] = table
                stats.states_computed += 1
                send_value = table
            else:
                stack.append((child_key, self._state_gen(*child_fields)))
                if len(stack) > stats.peak_stack_depth:
                    stats.peak_stack_depth = len(stack)
                send_value = None
        return memo[key]

    def _leaf_table(self, i1, i2, k, q, b1, b2):
        """Direct table for terminal/invalid states, or ``_MISSING`` for branch states."""
        obj = self.objective
        p = self.p
        if k < 0 or q < 0 or b1 < 0 or b2 < 0 or q > p or b1 > p or b2 > p:
            return ()
        if obj.invalid_state(k, q, b1, b2):
            return ()
        if i1 == i2:
            node = self._node_jobs(i1, i2, k)
            if node is None:
                return ()
            return obj.single_column(k, q, b1, b2, node[0], self.decomp.columns[i1])
        if k == 0:
            return obj.empty_interval(
                q, b1, b2, self.decomp.columns[i1], self.decomp.columns[i2]
            )
        if obj.pre_branch_invalid(k, b1, b2):
            return ()
        if self._node_jobs(i1, i2, k) is None:
            return ()
        return _MISSING

    def _state_gen(self, i1, i2, k, q, b1, b2):
        """Generator computing one *branch* state's table, yielding needed children.

        Only created for states :meth:`_leaf_table` classified as branch
        states, so structural guards have already passed and the node's job
        set is cached and non-``None``.  Tables are returned as immutable
        tuples of ``(label, (cost, choice))`` pairs: parents only ever
        iterate them, and freezing them avoids re-materialising dict views
        in the combination hot loop.
        """
        obj = self.objective
        columns = self.decomp.columns
        t1 = columns[i1]
        t2 = columns[i2]
        node_jobs, releases = self._node_jobs(i1, i2, k)
        plan = self._split_plan(i1, i2, k, node_jobs, releases, t1, t2)
        jmax = plan.jmax
        best: Dict = {}

        # The generator consults the memo directly and only yields states the
        # driver actually has to compute; right-child tables are prefetched
        # once per split instead of once per (left, right) boundary pair.
        # Memo hits are derived arithmetically (lookups minus misses) so the
        # hot loop carries no per-lookup counter updates.
        memo = self.memo
        lookups = 0
        misses = 0
        C, n1, P = self._C, self._n1, self._P
        base_i1 = i1 * C
        left_range = obj.left_b2_values()
        left_len = len(left_range)
        right_range_inner = obj.right_b1_values(q, False)
        right_range_touch = obj.right_b1_values(q, True)
        left_b1_edge = obj.left_boundary(b1, True)
        left_b1_inner = obj.left_boundary(b1, False)

        # Case t' < t2: split into left [t1, t'] and right [t_next, t2].
        for (ci, t_prime, k_left, k_right, idx_next, adjacent, stretch, rt2) in plan.splits:
            left_b1 = left_b1_edge if t_prime == t1 else left_b1_inner
            if left_b1 is None:
                continue
            left_base = ((((base_i1 + ci) * n1 + k_left) * P + 1) * P + left_b1) * P
            right_base = (((idx_next * C + i2) * n1 + k_right) * P + q) * P
            # Left subproblems gate the split: when every left boundary is
            # empty the right subtree is never materialised (matching the
            # laziness of a plain recursion), and when any is non-empty the
            # right children are fetched once and shared by all of them.
            lookups += left_len
            left_entries = []
            for left_b2 in left_range:
                left_key = left_base + left_b2
                left_table = memo.get(left_key, _MISSING)
                if left_table is _MISSING:
                    misses += 1
                    left_table = yield (
                        left_key,
                        (i1, ci, k_left, 1, left_b1, left_b2),
                    )
                if left_table:
                    left_entries.append((left_b2, left_key, left_table))
            if not left_entries:
                continue
            right_range = right_range_touch if rt2 else right_range_inner
            lookups += len(right_range)
            right_entries = []
            for right_b1 in right_range:
                right_key = (right_base + right_b1) * P + b2
                right_table = memo.get(right_key, _MISSING)
                if right_table is _MISSING:
                    misses += 1
                    right_table = yield (
                        right_key,
                        (idx_next, i2, k_right, q, right_b1, b2),
                    )
                if right_table:
                    right_entries.append((right_b1, right_key, right_table))
            if not right_entries:
                continue
            charges = obj.charge_matrix(q, adjacent, stretch, rt2)
            for left_b2, left_key, left_table in left_entries:
                charge_row = charges[left_b2]
                for right_b1, right_key, right_table in right_entries:
                    charge = charge_row[right_b1]
                    for label_l, entry_l in left_table:
                        cost_l = entry_l[0] + charge
                        for label_r, entry_r in right_table:
                            label = label_l if label_l >= label_r else label_r
                            cost = cost_l + entry_r[0]
                            cur = best.get(label)
                            if cur is None or cost < cur[0]:
                                best[label] = (
                                    cost,
                                    (
                                        "split",
                                        jmax,
                                        t_prime,
                                        left_key,
                                        label_l,
                                        right_key,
                                        label_r,
                                    ),
                                )

        # Case t' == t2: the latest-deadline job runs at the right boundary.
        if plan.right_end:
            child = obj.right_end_child(k, q, b1, b2)
            if child is not None:
                cq, cb1, cb2 = child
                child_key = (
                    (((base_i1 + i2) * n1 + (k - 1)) * P + cq) * P + cb1
                ) * P + cb2
                lookups += 1
                child_table = memo.get(child_key, _MISSING)
                if child_table is _MISSING:
                    misses += 1
                    child_table = yield (child_key, (i1, i2, k - 1, cq, cb1, cb2))
                for label, entry in child_table:
                    cur = best.get(label)
                    if cur is None or entry[0] < cur[0]:
                        best[label] = (
                            entry[0],
                            ("right_end", child_key, label, jmax, t2),
                        )

        self.stats.memo_hits += lookups - misses
        obj.prune_table(best, self.stats)
        return tuple(best.items())

    # -- per-(i1, i2, k) caches -------------------------------------------------
    def _node_jobs(self, i1: int, i2: int, k: int):
        """The node's ``(job set, sorted releases)``, or ``None`` when pruned.

        ``None`` covers both unreachable states (fewer than ``k`` jobs
        released in the interval) and Hall-pruned ones.  The sorted release
        list is shared between the Hall check and the split plan.
        """
        cache_key = (i1 * self._C + i2) * self._n1 + k
        cached = self._node_cache.get(cache_key, _MISSING)
        if cached is not _MISSING:
            return cached
        columns = self.decomp.columns
        t1, t2 = columns[i1], columns[i2]
        released = self.decomp.jobs_released_in(t1, t2)
        if k > len(released):
            result = None
        else:
            node = tuple(released[:k])
            jobs = self.decomp.jobs
            releases = sorted(jobs[j].release for j in node)
            result = (node, releases)
            # The Hall check costs O(k log C) per (i1, i2, k); below a few
            # jobs the states it could prune are cheaper than the check.
            if k >= _HALL_CHECK_MIN_JOBS and not _hall_feasible(
                jobs, columns, self.p, node, releases, t1, t2
            ):
                self.stats.hall_pruned += 1
                result = None
        self._node_cache[cache_key] = result
        return result

    def _split_plan(
        self,
        i1: int,
        i2: int,
        k: int,
        node_jobs: Tuple[int, ...],
        releases: List[int],
        t1: int,
        t2: int,
    ) -> _SplitPlan:
        """Branch bookkeeping for the node, computed once and shared."""
        cache_key = (i1 * self._C + i2) * self._n1 + k
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            return cached
        decomp = self.decomp
        columns = decomp.columns
        jmax = node_jobs[-1]
        candidate_cols = decomp.candidate_columns_for_job(jmax, t1, t2)
        right_end = bool(candidate_cols) and candidate_cols[-1] == i2
        splits = []
        for ci in candidate_cols:
            t_prime = columns[ci]
            if t_prime == t2:
                continue
            num_right = k - bisect_right(releases, t_prime)
            k_left = k - 1 - num_right
            if k_left < 0:
                continue
            idx_next = ci + 1
            t_next = columns[idx_next]
            splits.append(
                (
                    ci,
                    t_prime,
                    k_left,
                    num_right,
                    idx_next,
                    t_next == t_prime + 1,
                    t_next - t_prime - 1,
                    idx_next == i2,
                )
            )
        plan = _SplitPlan(jmax=jmax, right_end=right_end, splits=tuple(splits))
        self._plan_cache[cache_key] = plan
        self.stats.plans_built += 1
        return plan

    # -- reconstruction ----------------------------------------------------------
    def _reconstruct(self, key: int, label) -> Dict[int, int]:
        """Replay memoised decisions into a ``job -> time`` assignment, iteratively."""
        assignment: Dict[int, int] = {}
        stack: List[Tuple[int, object]] = [(key, label)]
        memo = self.memo
        while stack:
            state_key, state_label = stack.pop()
            choice = None
            for label, entry in memo[state_key]:
                if label == state_label:
                    choice = entry[1]
                    break
            if choice is None:
                raise AssertionError("reconstruction reached a pruned table entry")
            tag = choice[0]
            if tag == "empty":
                continue
            if tag == "column":
                for job_idx in choice[1]:
                    assignment[job_idx] = choice[2]
                continue
            if tag == "right_end":
                _tag, child_key, child_label, jmax, t2 = choice
                assignment[jmax] = t2
                stack.append((child_key, child_label))
                continue
            if tag == "split":
                _tag, jmax, t_prime, left_key, left_label, right_key, right_label = choice
                assignment[jmax] = t_prime
                stack.append((left_key, left_label))
                stack.append((right_key, right_label))
                continue
            raise AssertionError(f"unknown reconstruction tag {tag!r}")
        return assignment


#: Process-wide default selector consumed by the solvers (and hence the
#: façade, runtime, and service layers) when no explicit engine is passed.
_default_engine = DEFAULT_ENGINE


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine selector; returns the new value.

    Raises :class:`ValueError` for unknown selectors and
    :class:`~repro.core.exceptions.EngineConfigurationError` when ``"v3"``
    is forced without numpy importable.  This is what the CLI's top-level
    ``--engine`` flag calls.
    """
    global _default_engine
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
        )
    _require_v3_support(engine)
    _default_engine = engine
    return engine


def get_default_engine() -> str:
    """The process-wide default engine selector (``"auto"`` unless set)."""
    return _default_engine


def resolve_engine(engine: Optional[str] = None) -> str:
    """Concrete evaluator name for a selector.

    ``None`` reads the process-wide default; ``"auto"`` resolves to
    ``"v3"`` when numpy is importable and ``"v2"`` otherwise — the
    graceful-degradation path for installs without the ``[speed]`` extra.
    """
    if engine is None:
        engine = _default_engine
    if engine == "auto":
        return "v3" if vector_kernels.numpy_available() else "v2"
    if engine not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}"
        )
    return engine


def _require_v3_support(engine: Optional[str]) -> None:
    if engine == "v3" and not vector_kernels.numpy_available():
        raise EngineConfigurationError(
            "engine 'v3' requires numpy, which is not installed; "
            "install the extra (pip install 'repro-sched[speed]') or use "
            "engine 'auto' to fall back to the scalar v2 evaluator"
        )


def build_engine(
    decomp: IntervalDecomposition,
    objective,
    engine: Optional[str] = None,
    *,
    vector_min_work: Optional[int] = None,
):
    """Construct an evaluator by selector.

    ``"v3"`` is the vectorized evaluator (requires numpy — raises
    :class:`~repro.core.exceptions.EngineConfigurationError` otherwise),
    ``"v2"`` the bottom-up scalar evaluator, ``"v1"`` the legacy
    trampoline, and ``"auto"``/``None`` resolve via :func:`resolve_engine`.
    ``vector_min_work`` tunes the v3 per-node size heuristic and is ignored
    by the scalar evaluators.
    """
    _require_v3_support(engine)
    resolved = resolve_engine(engine)
    if resolved == "v3":
        return VectorizedDPEngine(decomp, objective, vector_min_work=vector_min_work)
    if resolved == "v2":
        return IntervalDPEngine(decomp, objective)
    return TrampolineDPEngine(decomp, objective)


def staircase_schedule(
    instance: MultiprocessorInstance, times: Dict[int, int]
) -> MultiprocessorSchedule:
    """Stack a ``job -> time`` assignment onto processors in staircase order."""
    by_time: Dict[int, List[int]] = {}
    for job_idx, t in times.items():
        by_time.setdefault(t, []).append(job_idx)
    assignment: Dict[int, Tuple[int, int]] = {}
    for t, job_indices in by_time.items():
        for level, job_idx in enumerate(sorted(job_indices), start=1):
            assignment[job_idx] = (level, t)
    schedule = MultiprocessorSchedule(instance=instance, assignment=assignment)
    schedule.validate()
    return schedule
