"""The unified interval dynamic-programming engine behind Theorems 1 and 2.

Both exact results of the paper — multiprocessor gap minimization
(Theorem 1) and multiprocessor power minimization (Theorem 2) — are the same
Baptiste-style interval dynamic program over the state space
``(t1, t2, k, q, b1, b2)``: schedule the ``k`` earliest-deadline jobs
released in the candidate-column interval ``[t1, t2]``, with ``q``
processors at column ``t2`` already taken by enclosing subproblems and
boundary parameters ``b1`` / ``b2`` at the two end columns.  The recursion
branches on the execution column ``t'`` of the latest-deadline job; jobs
released after ``t'`` form the right subproblem and the rest the left one.

What differs between the two theorems is only the *value algebra*:

* :class:`GapObjective` — the subproblem value is a vector indexed by the
  exact maximum column occupancy of the subinterval (so the root can apply
  the ``- used processors`` correction of Lemma 1 without losing
  optimality); boundary parameters count the subproblem's *own* jobs at the
  end columns and splits pay a run-start charge.
* :class:`PowerObjective` — the subproblem value is a scalar power cost;
  boundary parameters count *active* processors and splits pay the
  closed-form bridging charge ``min(stretch, alpha)`` per processor active
  on both sides of an idle stretch (Lemma 2).

This module owns everything the objectives share:

* **Iterative evaluation.**  States are evaluated by an explicit stack of
  suspended generators (a trampoline), so deep instances never trip
  Python's recursion limit — the engine runs in O(1) native stack depth
  regardless of instance size.
* **Flat interned state keys.**  States are packed into a single integer
  (mixed-radix over column indices, job count, and boundary digits), which
  is markedly cheaper to hash than 6-tuples in the memoization hot path.
* **Hall-condition pre-pruning.**  Before a subproblem's boundary variants
  are expanded, a necessary feasibility condition (prefix/suffix Hall
  counts of the node jobs against candidate-column capacity) is checked
  once per ``(t1, t2, k)`` triple; a violation proves every boundary
  variant of the state is empty and prunes the whole family.
* **Split plans.**  The branch-on-``t'`` bookkeeping (candidate columns of
  the latest-deadline job, left/right job counts, adjacency and stretch of
  consecutive columns) is computed once per ``(t1, t2, k)`` and shared by
  all ``(q, b1, b2)`` boundary variants, instead of being re-derived per
  state as the pre-engine solvers did.
* **Dominance pruning.**  For vector-valued objectives, table entries that
  are dominated (higher cost at lower-or-equal maximum occupancy) can never
  win at the root and are dropped, shrinking the cross-product loops of
  every enclosing split.
* **Schedule reconstruction.**  Memoised decisions are replayed
  iteratively into a ``job -> time`` assignment and stacked onto
  processors in staircase order.

The solvers in :mod:`repro.core.multiproc_gap_dp` and
:mod:`repro.core.multiproc_power_dp` are thin bindings of these objectives
onto the engine; :mod:`repro.verify` certifies engine results against brute
force and :mod:`repro.perf` measures the engine against the frozen
pre-engine solvers.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .dp_profile import IntervalDecomposition
from .exceptions import InvalidInstanceError
from .jobs import MultiprocessorInstance
from .schedule import MultiprocessorSchedule

__all__ = [
    "ENGINE_NAME",
    "ENGINE_VERSION",
    "EngineStats",
    "EngineOutcome",
    "GapObjective",
    "PowerObjective",
    "IntervalDPEngine",
    "staircase_schedule",
]

ENGINE_NAME = "interval-dp"
ENGINE_VERSION = "1.0"

_MISSING = object()

#: Node job-count below which the Hall pre-check is skipped (see _node_jobs).
_HALL_CHECK_MIN_JOBS = 4

# Choice records stored in the memo tables; reconstruction replays them.
_EMPTY_CHOICE = ("empty",)


@dataclass
class EngineStats:
    """Counters describing one engine run (exposed as JSON-native ints)."""

    states_computed: int = 0
    memo_hits: int = 0
    hall_pruned: int = 0
    dominance_dropped: int = 0
    plans_built: int = 0
    peak_stack_depth: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "states_computed": self.states_computed,
            "memo_hits": self.memo_hits,
            "hall_pruned": self.hall_pruned,
            "dominance_dropped": self.dominance_dropped,
            "plans_built": self.plans_built,
            "peak_stack_depth": self.peak_stack_depth,
        }


@dataclass
class EngineOutcome:
    """Raw outcome of one engine run: optimal value and a witnessing assignment."""

    feasible: bool
    value: Optional[float]
    assignment: Optional[Dict[int, int]]  # job index -> execution time
    stats: EngineStats


@dataclass(frozen=True)
class _SplitPlan:
    """Branch bookkeeping for one ``(i1, i2, k)`` node, shared by its boundary variants.

    ``splits`` holds one tuple per candidate column ``t' < t2`` of the
    latest-deadline job: ``(col_idx, t_prime, k_left, k_right, idx_next,
    adjacent, stretch, right_touches_t2)``.
    """

    jmax: int
    right_end: bool
    splits: Tuple[Tuple[int, int, int, int, int, bool, int, bool], ...]


class GapObjective:
    """Value algebra of Theorem 1: gap count via occupancy-indexed vectors.

    Boundary parameters count the subproblem's own jobs at the end columns;
    the table maps each achievable exact maximum occupancy ``M`` to the
    cheapest run-start count, and the root applies ``+ b1 - M`` (first
    column's run-starts minus used processors).
    """

    name = "gaps"

    def __init__(self, num_processors: int) -> None:
        self.p = num_processors
        self._charges: Dict = {}

    def invalid_state(self, k: int, q: int, b1: int, b2: int) -> bool:
        return b1 > k or b2 > k or q + b2 > self.p

    def pre_branch_invalid(self, k: int, b1: int, b2: int) -> bool:
        return b1 + b2 > k

    def single_column(self, k, q, b1, b2, node_jobs, t):
        # All k jobs execute at the single column; boundary counts must agree.
        if b1 != b2 or b1 != k:
            return ()
        if k == 0:
            return ((q, (0, _EMPTY_CHOICE)),)
        if k + q > self.p:
            return ()
        return ((k + q, (0, ("column", node_jobs, t))),)

    def empty_interval(self, q, b1, b2, t1, t2):
        if b1 != 0 or b2 != 0:
            return ()
        return ((q, (q, _EMPTY_CHOICE)),)

    def right_end_child(self, k, q, b1, b2):
        if b2 < 1 or q + 1 > self.p:
            return None
        return (q + 1, b1, b2 - 1)

    def left_boundary(self, b1: int, at_left_edge: bool) -> Optional[int]:
        # The latest-deadline job running at t1 counts toward the boundary.
        if at_left_edge:
            return b1 - 1 if b1 >= 1 else None
        return b1

    def left_b2_values(self) -> Iterable[int]:
        # Own jobs of the left child at t'; jmax occupies one more slot (q=1).
        return range(self.p)

    def right_b1_values(self, q: int, right_touches_t2: bool) -> Iterable[int]:
        extra = q if right_touches_t2 else 0
        return range(self.p - extra + 1)

    def charge_matrix(self, q, adjacent, stretch, right_touches_t2):
        # Run-starts at the first column of the right subproblem: busy slots
        # there not already busy at the previous column (jmax's column when
        # the columns are adjacent, an idle column otherwise).  The matrix is
        # indexed ``[left_b2][right_b1]`` and cached — it only depends on the
        # external occupancy carried over and the column adjacency.
        extra = q if right_touches_t2 else 0
        key = (extra, adjacent)
        matrix = self._charges.get(key)
        if matrix is None:
            matrix = [
                [
                    max(0, rb + extra - (lb + 1 if adjacent else 0))
                    for rb in range(self.p + 1)
                ]
                for lb in range(self.p + 1)
            ]
            self._charges[key] = matrix
        return matrix

    def root_total(self, b1: int, label: int, cost: int) -> Optional[int]:
        if label <= 0:
            return None
        return b1 + cost - label

    def prune_table(self, table: Dict, stats: EngineStats) -> None:
        # Occupancy labels combine by max up the split tree and the final
        # max is subtracted exactly once at the root, so an entry's value in
        # any enclosing context is (its cost + context costs) - max(M, X)
        # for some context label X.  An entry (M2, c2) with 1 <= M2 < M1
        # therefore dominates (M1, c1) whenever c2 - M2 <= c1 - M1: for
        # X <= M2 the root-corrected values tie at worst, and for X > M2 the
        # lower-occupancy entry is strictly better (it never raises the
        # combined max).  M = 0 entries are exempt on both sides — they can
        # be unusable at the root (the max must be positive), so they
        # neither dominate nor get dominated safely.
        if len(table) < 2:
            return
        best_corrected = None
        for label in sorted(table):
            if label < 1:
                continue
            corrected = table[label][0] - label
            if best_corrected is not None and corrected >= best_corrected:
                del table[label]
                stats.dominance_dropped += 1
            else:
                best_corrected = corrected

    def zero_value(self):
        return 0


class PowerObjective:
    """Value algebra of Theorem 2: scalar power with the min(stretch, alpha) bridge.

    Boundary parameters count *active* processors at the end columns; idle
    stretches between consecutive candidate columns are folded into the
    closed-form bridging charge, which keeps the DP on the polynomial
    candidate-column set.
    """

    name = "power"

    def __init__(self, num_processors: int, alpha: float) -> None:
        if alpha < 0:
            raise InvalidInstanceError(f"alpha must be non-negative, got {alpha}")
        self.p = num_processors
        self.alpha = float(alpha)
        self._charges: Dict = {}

    def bridge_charge(self, stretch: int, active_before: int, active_after: int) -> float:
        """Cost of the columns strictly between two boundary columns plus the right column.

        Each processor active on both sides either stays active through the
        stretch (cost ``stretch``) or sleeps and wakes (cost ``alpha``);
        processors newly active on the right pay a wake-up.  The active time
        of the right boundary column itself is included.
        """
        shared = active_before if active_before < active_after else active_after
        newly_active = active_after - active_before
        if newly_active < 0:
            newly_active = 0
        return (
            float(active_after)
            + shared * min(float(stretch), self.alpha)
            + newly_active * self.alpha
        )

    def invalid_state(self, k: int, q: int, b1: int, b2: int) -> bool:
        return q > b2

    def pre_branch_invalid(self, k: int, b1: int, b2: int) -> bool:
        return False

    def single_column(self, k, q, b1, b2, node_jobs, t):
        if b1 != b2 or k + q > b1:
            return ()
        if k == 0:
            return ((0, (0.0, _EMPTY_CHOICE)),)
        return ((0, (0.0, ("column", node_jobs, t))),)

    def empty_interval(self, q, b1, b2, t1, t2):
        return ((0, (self.bridge_charge(t2 - t1 - 1, b1, b2), _EMPTY_CHOICE)),)

    def right_end_child(self, k, q, b1, b2):
        if q + 1 > b2:
            return None
        return (q + 1, b1, b2)

    def left_boundary(self, b1: int, at_left_edge: bool) -> Optional[int]:
        return b1

    def left_b2_values(self) -> Iterable[int]:
        # Total active processors at jmax's column; at least jmax's own.
        return range(1, self.p + 1)

    def right_b1_values(self, q: int, right_touches_t2: bool) -> Iterable[int]:
        return range(self.p + 1)

    def charge_matrix(self, q, adjacent, stretch, right_touches_t2):
        # Bridging cost indexed ``[active_mid][active_next]``; it depends
        # only on the idle stretch length, so the matrix is cached per stretch.
        matrix = self._charges.get(stretch)
        if matrix is None:
            matrix = [
                [self.bridge_charge(stretch, lb, rb) for rb in range(self.p + 1)]
                for lb in range(self.p + 1)
            ]
            self._charges[stretch] = matrix
        return matrix

    def root_total(self, b1: int, label: int, cost: float) -> float:
        # First-column active processors pay their active time plus a wake-up.
        return b1 * (1.0 + self.alpha) + cost

    def prune_table(self, table: Dict, stats: EngineStats) -> None:
        # Scalar tables hold a single label; nothing to prune.
        return None

    def zero_value(self):
        return 0.0


class IntervalDPEngine:
    """Parameterized evaluator of the ``(t1, t2, k, q, b1, b2)`` interval DP.

    Parameters
    ----------
    decomp:
        The shared :class:`~repro.core.dp_profile.IntervalDecomposition`
        (candidate columns and job-set queries).
    objective:
        A :class:`GapObjective` or :class:`PowerObjective` (or any object
        implementing the same value-algebra interface).
    """

    def __init__(self, decomp: IntervalDecomposition, objective) -> None:
        self.decomp = decomp
        self.objective = objective
        self.p = decomp.num_processors
        self.stats = EngineStats()
        self.memo: Dict[int, Dict] = {}
        self._node_cache: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._plan_cache: Dict[int, _SplitPlan] = {}
        # Mixed-radix bases of the flat integer state keys.
        self._C = len(decomp.columns)
        self._n1 = len(decomp.jobs) + 1
        self._P = self.p + 1

    # -- public API -------------------------------------------------------------
    def solve(self) -> EngineOutcome:
        """Evaluate the DP at the root and reconstruct an optimal assignment."""
        obj = self.objective
        n = self._n1 - 1
        if n == 0:
            return EngineOutcome(
                feasible=True, value=obj.zero_value(), assignment={}, stats=self.stats
            )
        i2 = self._C - 1
        best: Optional[Tuple[float, int, int]] = None  # (total, root key, label)
        for b1 in range(self.p + 1):
            for b2 in range(self.p + 1):
                fields = (0, i2, n, 0, b1, b2)
                table = self.evaluate(fields)
                for label, entry in table:
                    total = obj.root_total(b1, label, entry[0])
                    if total is None:
                        continue
                    if best is None or total < best[0]:
                        best = (total, self._encode(*fields), label)
        if best is None:
            return EngineOutcome(
                feasible=False, value=None, assignment=None, stats=self.stats
            )
        assignment = self._reconstruct(best[1], best[2])
        return EngineOutcome(
            feasible=True, value=best[0], assignment=assignment, stats=self.stats
        )

    def metadata(self) -> Dict:
        """JSON-native engine identification and pruning/memo statistics."""
        return {
            "name": ENGINE_NAME,
            "version": ENGINE_VERSION,
            "objective": self.objective.name,
            "stats": self.stats.as_dict(),
        }

    # -- state-key packing ------------------------------------------------------
    def _encode(self, i1: int, i2: int, k: int, q: int, b1: int, b2: int) -> int:
        P = self._P
        return ((((i1 * self._C + i2) * self._n1 + k) * P + q) * P + b1) * P + b2

    # -- iterative evaluation ---------------------------------------------------
    def evaluate(self, fields: Tuple[int, int, int, int, int, int]) -> Dict:
        """Evaluate one state (and, transitively, everything it depends on).

        The recursion is simulated by an explicit stack of suspended
        generators: each generator yields the child states it needs, the
        driver answers from the memo or pushes the child, and a finished
        generator's return value is memoised and sent to its parent.  Native
        stack depth stays O(1) no matter how deep the DP nests.
        """
        key = self._encode(*fields)
        memo = self.memo
        found = memo.get(key, _MISSING)
        if found is not _MISSING:
            self.stats.memo_hits += 1
            return found
        stats = self.stats
        leaf = self._leaf_table(*fields)
        if leaf is not _MISSING:
            memo[key] = leaf
            stats.states_computed += 1
            return leaf
        stack: List[Tuple[int, object]] = [(key, self._state_gen(*fields))]
        send_value = None
        while stack:
            top_key, gen = stack[-1]
            try:
                child_key, child_fields = gen.send(send_value)
            except StopIteration as done:
                table = done.value if done.value is not None else ()
                memo[top_key] = table
                stats.states_computed += 1
                stack.pop()
                send_value = table
                continue
            # Terminal and structurally-invalid children are computed inline;
            # only genuine branch states pay for a suspended generator.
            table = self._leaf_table(*child_fields)
            if table is not _MISSING:
                memo[child_key] = table
                stats.states_computed += 1
                send_value = table
            else:
                stack.append((child_key, self._state_gen(*child_fields)))
                if len(stack) > stats.peak_stack_depth:
                    stats.peak_stack_depth = len(stack)
                send_value = None
        return memo[key]

    def _leaf_table(self, i1, i2, k, q, b1, b2):
        """Direct table for terminal/invalid states, or ``_MISSING`` for branch states."""
        obj = self.objective
        p = self.p
        if k < 0 or q < 0 or b1 < 0 or b2 < 0 or q > p or b1 > p or b2 > p:
            return ()
        if obj.invalid_state(k, q, b1, b2):
            return ()
        if i1 == i2:
            node = self._node_jobs(i1, i2, k)
            if node is None:
                return ()
            return obj.single_column(k, q, b1, b2, node[0], self.decomp.columns[i1])
        if k == 0:
            return obj.empty_interval(
                q, b1, b2, self.decomp.columns[i1], self.decomp.columns[i2]
            )
        if obj.pre_branch_invalid(k, b1, b2):
            return ()
        if self._node_jobs(i1, i2, k) is None:
            return ()
        return _MISSING

    def _state_gen(self, i1, i2, k, q, b1, b2):
        """Generator computing one *branch* state's table, yielding needed children.

        Only created for states :meth:`_leaf_table` classified as branch
        states, so structural guards have already passed and the node's job
        set is cached and non-``None``.  Tables are returned as immutable
        tuples of ``(label, (cost, choice))`` pairs: parents only ever
        iterate them, and freezing them avoids re-materialising dict views
        in the combination hot loop.
        """
        obj = self.objective
        columns = self.decomp.columns
        t1 = columns[i1]
        t2 = columns[i2]
        node_jobs, releases = self._node_jobs(i1, i2, k)
        plan = self._split_plan(i1, i2, k, node_jobs, releases, t1, t2)
        jmax = plan.jmax
        best: Dict = {}

        # The generator consults the memo directly and only yields states the
        # driver actually has to compute; right-child tables are prefetched
        # once per split instead of once per (left, right) boundary pair.
        # Memo hits are derived arithmetically (lookups minus misses) so the
        # hot loop carries no per-lookup counter updates.
        memo = self.memo
        lookups = 0
        misses = 0
        C, n1, P = self._C, self._n1, self._P
        base_i1 = i1 * C
        left_range = obj.left_b2_values()
        left_len = len(left_range)
        right_range_inner = obj.right_b1_values(q, False)
        right_range_touch = obj.right_b1_values(q, True)
        left_b1_edge = obj.left_boundary(b1, True)
        left_b1_inner = obj.left_boundary(b1, False)

        # Case t' < t2: split into left [t1, t'] and right [t_next, t2].
        for (ci, t_prime, k_left, k_right, idx_next, adjacent, stretch, rt2) in plan.splits:
            left_b1 = left_b1_edge if t_prime == t1 else left_b1_inner
            if left_b1 is None:
                continue
            left_base = ((((base_i1 + ci) * n1 + k_left) * P + 1) * P + left_b1) * P
            right_base = (((idx_next * C + i2) * n1 + k_right) * P + q) * P
            # Left subproblems gate the split: when every left boundary is
            # empty the right subtree is never materialised (matching the
            # laziness of a plain recursion), and when any is non-empty the
            # right children are fetched once and shared by all of them.
            lookups += left_len
            left_entries = []
            for left_b2 in left_range:
                left_key = left_base + left_b2
                left_table = memo.get(left_key, _MISSING)
                if left_table is _MISSING:
                    misses += 1
                    left_table = yield (
                        left_key,
                        (i1, ci, k_left, 1, left_b1, left_b2),
                    )
                if left_table:
                    left_entries.append((left_b2, left_key, left_table))
            if not left_entries:
                continue
            right_range = right_range_touch if rt2 else right_range_inner
            lookups += len(right_range)
            right_entries = []
            for right_b1 in right_range:
                right_key = (right_base + right_b1) * P + b2
                right_table = memo.get(right_key, _MISSING)
                if right_table is _MISSING:
                    misses += 1
                    right_table = yield (
                        right_key,
                        (idx_next, i2, k_right, q, right_b1, b2),
                    )
                if right_table:
                    right_entries.append((right_b1, right_key, right_table))
            if not right_entries:
                continue
            charges = obj.charge_matrix(q, adjacent, stretch, rt2)
            for left_b2, left_key, left_table in left_entries:
                charge_row = charges[left_b2]
                for right_b1, right_key, right_table in right_entries:
                    charge = charge_row[right_b1]
                    for label_l, entry_l in left_table:
                        cost_l = entry_l[0] + charge
                        for label_r, entry_r in right_table:
                            label = label_l if label_l >= label_r else label_r
                            cost = cost_l + entry_r[0]
                            cur = best.get(label)
                            if cur is None or cost < cur[0]:
                                best[label] = (
                                    cost,
                                    (
                                        "split",
                                        jmax,
                                        t_prime,
                                        left_key,
                                        label_l,
                                        right_key,
                                        label_r,
                                    ),
                                )

        # Case t' == t2: the latest-deadline job runs at the right boundary.
        if plan.right_end:
            child = obj.right_end_child(k, q, b1, b2)
            if child is not None:
                cq, cb1, cb2 = child
                child_key = (
                    (((base_i1 + i2) * n1 + (k - 1)) * P + cq) * P + cb1
                ) * P + cb2
                lookups += 1
                child_table = memo.get(child_key, _MISSING)
                if child_table is _MISSING:
                    misses += 1
                    child_table = yield (child_key, (i1, i2, k - 1, cq, cb1, cb2))
                for label, entry in child_table:
                    cur = best.get(label)
                    if cur is None or entry[0] < cur[0]:
                        best[label] = (
                            entry[0],
                            ("right_end", child_key, label, jmax, t2),
                        )

        self.stats.memo_hits += lookups - misses
        obj.prune_table(best, self.stats)
        return tuple(best.items())

    # -- per-(i1, i2, k) caches -------------------------------------------------
    def _node_jobs(self, i1: int, i2: int, k: int):
        """The node's ``(job set, sorted releases)``, or ``None`` when pruned.

        ``None`` covers both unreachable states (fewer than ``k`` jobs
        released in the interval) and Hall-pruned ones.  The sorted release
        list is shared between the Hall check and the split plan.
        """
        cache_key = (i1 * self._C + i2) * self._n1 + k
        cached = self._node_cache.get(cache_key, _MISSING)
        if cached is not _MISSING:
            return cached
        columns = self.decomp.columns
        t1, t2 = columns[i1], columns[i2]
        released = self.decomp.jobs_released_in(t1, t2)
        if k > len(released):
            result = None
        else:
            node = tuple(released[:k])
            jobs = self.decomp.jobs
            releases = sorted(jobs[j].release for j in node)
            result = (node, releases)
            # The Hall check costs O(k log C) per (i1, i2, k); below a few
            # jobs the states it could prune are cheaper than the check.
            if k >= _HALL_CHECK_MIN_JOBS and not self._hall_feasible(
                node, releases, t1, t2
            ):
                self.stats.hall_pruned += 1
                result = None
        self._node_cache[cache_key] = result
        return result

    def _hall_feasible(
        self, node_jobs: Tuple[int, ...], releases: List[int], t1: int, t2: int
    ) -> bool:
        """Necessary Hall-style feasibility of the node jobs on candidate columns.

        Checks prefix intervals ``[t1, d]`` over clipped deadlines and
        suffix intervals ``[r, t2]`` over releases (already inside the
        interval by construction) against capacity ``p`` per candidate
        column.  A violation proves the state (under *any* boundary
        parameters) admits no assignment, so the whole ``(q, b1, b2)``
        family is pruned; passing proves nothing and the state is evaluated
        normally.
        """
        jobs = self.decomp.jobs
        columns = self.decomp.columns
        p = self.p
        lo = bisect_left(columns, t1)
        hi = bisect_right(columns, t2)
        # Prefix: node jobs arrive in deadline order, so clipped deadlines
        # are non-decreasing and prefix counts are positional.
        for count, j in enumerate(node_jobs, start=1):
            d = jobs[j].deadline
            if d > t2:
                d = t2
            if count > p * (bisect_right(columns, d, lo, hi) - lo):
                return False
        # Suffix: same argument over releases, scanned from the right.
        for count, r in enumerate(reversed(releases), start=1):
            if count > p * (hi - bisect_left(columns, r, lo, hi)):
                return False
        return True

    def _split_plan(
        self,
        i1: int,
        i2: int,
        k: int,
        node_jobs: Tuple[int, ...],
        releases: List[int],
        t1: int,
        t2: int,
    ) -> _SplitPlan:
        """Branch bookkeeping for the node, computed once and shared."""
        cache_key = (i1 * self._C + i2) * self._n1 + k
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            return cached
        decomp = self.decomp
        columns = decomp.columns
        jmax = node_jobs[-1]
        candidate_cols = decomp.candidate_columns_for_job(jmax, t1, t2)
        right_end = bool(candidate_cols) and candidate_cols[-1] == i2
        splits = []
        for ci in candidate_cols:
            t_prime = columns[ci]
            if t_prime == t2:
                continue
            num_right = k - bisect_right(releases, t_prime)
            k_left = k - 1 - num_right
            if k_left < 0:
                continue
            idx_next = ci + 1
            t_next = columns[idx_next]
            splits.append(
                (
                    ci,
                    t_prime,
                    k_left,
                    num_right,
                    idx_next,
                    t_next == t_prime + 1,
                    t_next - t_prime - 1,
                    idx_next == i2,
                )
            )
        plan = _SplitPlan(jmax=jmax, right_end=right_end, splits=tuple(splits))
        self._plan_cache[cache_key] = plan
        self.stats.plans_built += 1
        return plan

    # -- reconstruction ----------------------------------------------------------
    def _reconstruct(self, key: int, label) -> Dict[int, int]:
        """Replay memoised decisions into a ``job -> time`` assignment, iteratively."""
        assignment: Dict[int, int] = {}
        stack: List[Tuple[int, object]] = [(key, label)]
        memo = self.memo
        while stack:
            state_key, state_label = stack.pop()
            choice = None
            for label, entry in memo[state_key]:
                if label == state_label:
                    choice = entry[1]
                    break
            if choice is None:
                raise AssertionError("reconstruction reached a pruned table entry")
            tag = choice[0]
            if tag == "empty":
                continue
            if tag == "column":
                for job_idx in choice[1]:
                    assignment[job_idx] = choice[2]
                continue
            if tag == "right_end":
                _tag, child_key, child_label, jmax, t2 = choice
                assignment[jmax] = t2
                stack.append((child_key, child_label))
                continue
            if tag == "split":
                _tag, jmax, t_prime, left_key, left_label, right_key, right_label = choice
                assignment[jmax] = t_prime
                stack.append((left_key, left_label))
                stack.append((right_key, right_label))
                continue
            raise AssertionError(f"unknown reconstruction tag {tag!r}")
        return assignment


def staircase_schedule(
    instance: MultiprocessorInstance, times: Dict[int, int]
) -> MultiprocessorSchedule:
    """Stack a ``job -> time`` assignment onto processors in staircase order."""
    by_time: Dict[int, List[int]] = {}
    for job_idx, t in times.items():
        by_time.setdefault(t, []).append(job_idx)
    assignment: Dict[int, Tuple[int, int]] = {}
    for t, job_indices in by_time.items():
        for level, job_idx in enumerate(sorted(job_indices), start=1):
            assignment[job_idx] = (level, t)
    schedule = MultiprocessorSchedule(instance=instance, assignment=assignment)
    schedule.validate()
    return schedule
