"""The persistent worker pool: warm processes, hard kills, incumbents.

:class:`~repro.runtime.backends.ProcessBackend` historically built a fresh
``ProcessPoolExecutor`` for every session, so every ``solve_batch`` /
``solve_stream`` call and every service drain paid cold interpreter spawn
and configuration re-sync before the first DP state was evaluated — and a
running worker could never be interrupted, which is why the portfolio
racer refused to dispatch the exact DP on large instances.  This module
replaces the per-call executor with one process-wide :class:`WorkerPool`:

* **Warm reuse.**  Workers are spawned once and survive across sessions;
  a second ``solve_stream`` call finds interpreters already imported and
  caches already warm.  Idle workers beyond :data:`DEFAULT_IDLE_TIMEOUT`
  seconds are reaped so a burst of parallel work does not pin processes
  forever.
* **Hard cancellation.**  :meth:`PoolSession.kill` terminates the worker
  process running a task mid-solve (``SIGTERM``-and-respawn) — the
  primitive the portfolio racer uses to kill losing members the moment a
  winner certifies, and to enforce budget expiry on the exact DP.
* **Config-generation re-sync.**  Each dispatched task carries a
  generation-stamped snapshot of the parent's relevant process-wide
  configuration (disk-cache directory, default engine selector, solve
  cache capacity).  Workers re-apply the snapshot only when the
  generation moves, so long-lived workers never drift from a caller that
  reconfigured after the fork, and the per-task cost is one integer
  comparison.
* **Any-time incumbent channel.**  Worker-side task code can call
  :func:`publish_incumbent` to stream improving feasible solutions back
  to the parent while the task is still running.  The parent reads them
  via :meth:`PoolSession.take_incumbent`; a task hard-killed mid-solve
  still contributes its best published answer.

Workers communicate over per-worker pipes (never a shared queue): a
worker terminated mid-``send`` can corrupt only its own channel, which
the pool discards and respawns, leaving its siblings untouched.  Workers
close the inherited parent pipe end, so losing the parent process (even
to ``SIGKILL``) delivers EOF and the worker exits instead of orphaning.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import time
from collections import deque
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_IDLE_TIMEOUT",
    "PoolSession",
    "WorkerLostError",
    "WorkerPool",
    "get_worker_pool",
    "publish_incumbent",
    "shutdown_worker_pool",
    "worker_pool_stats",
]

#: Seconds a warm worker may sit idle before the pool reaps it.
DEFAULT_IDLE_TIMEOUT = 30.0

try:
    import multiprocessing as _multiprocessing

    _START_METHODS = _multiprocessing.get_all_start_methods()
except Exception:  # pragma: no cover - multiprocessing always importable
    _START_METHODS = []

#: Minimum seconds between two published incumbents from one worker task
#: (the first publication is never throttled).  Incumbent payloads can be
#: large (a full n = 10^5 assignment), so improvement cascades must not
#: saturate the pipe the final result needs.
INCUMBENT_MIN_INTERVAL = 0.25


# ---------------------------------------------------------------------------
# worker-side: the loop and the incumbent channel
# ---------------------------------------------------------------------------
#: Worker-side incumbent publisher installed around the running task
#: (``None`` outside a pool worker, making publish_incumbent a no-op).
_PUBLISHER: List[Optional[Callable[[Any], None]]] = [None]
_LAST_PUBLISH: List[float] = [0.0]


def publish_incumbent(make_payload: Callable[[], Any]) -> bool:
    """Publish an improving feasible solution from inside a pool task.

    ``make_payload`` is a zero-argument factory; it is only invoked (and
    its result only pickled) when a publisher is installed and the
    :data:`INCUMBENT_MIN_INTERVAL` throttle allows a send, so hot solver
    loops can call this unconditionally.  Outside a pool worker this is a
    cheap no-op.  Returns ``True`` when a payload was actually sent.
    """
    publisher = _PUBLISHER[-1]
    if publisher is None:
        return False
    now = time.perf_counter()
    if _LAST_PUBLISH[0] and now - _LAST_PUBLISH[0] < INCUMBENT_MIN_INTERVAL:
        return False
    _LAST_PUBLISH[0] = now
    publisher(make_payload())
    return True


def _current_config() -> Dict[str, Any]:
    """Snapshot of the parent config workers must mirror."""
    from ..core.interval_dp import get_default_engine
    from .diskcache import disk_cache_dir

    return {
        "cache_dir": disk_cache_dir(),
        "engine": get_default_engine(),
    }


def _apply_config(config: Dict[str, Any]) -> None:
    from ..core.exceptions import ReproError
    from ..core.interval_dp import get_default_engine, set_default_engine
    from .diskcache import configure_disk_cache, disk_cache_dir

    if disk_cache_dir() != config["cache_dir"]:
        configure_disk_cache(config["cache_dir"])
    if get_default_engine() != config["engine"]:
        try:
            set_default_engine(config["engine"])
        except (ReproError, ValueError):
            # An engine the worker cannot honor (e.g. forced v3 in a
            # worker whose numpy import failed) falls back to the
            # worker's own default rather than killing the task.
            pass


def _worker_main(conn, parent_conn) -> None:
    """The persistent worker loop: recv a chunk, run it, send the results.

    Messages in: ``("task", chunk_id, fn, [(tag, item), ...], config)``
    or ``("stop",)``.  Messages out: ``("inc", tag, payload)`` for
    incumbents and ``("done", chunk_id, [(tag, outcome), ...])`` per
    chunk.  Task callables follow the session contract (they never
    raise); a raise anyway is reported as a ``("crash", ...)`` message
    and the worker keeps serving.
    """
    parent_conn.close()  # our inherited copy; parent death must mean EOF
    applied_generation = -1
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone
        if message[0] == "stop":
            break
        _kind, chunk_id, fn, chunk, config = message
        if config["generation"] != applied_generation:
            _apply_config(config)
            applied_generation = config["generation"]
        outcomes: List[Tuple[int, Any]] = []
        for tag, item in chunk:
            _PUBLISHER[-1] = lambda payload, _tag=tag: conn.send(
                ("inc", _tag, payload)
            )
            _LAST_PUBLISH[0] = 0.0
            try:
                outcomes.append((tag, fn(item)))
            except BaseException as exc:  # noqa: BLE001 — report, keep serving
                _PUBLISHER[-1] = None
                try:
                    conn.send(("crash", chunk_id, type(exc).__name__, str(exc)))
                except (OSError, ValueError):
                    pass
                break
            finally:
                _PUBLISHER[-1] = None
        else:
            try:
                conn.send(("done", chunk_id, outcomes))
            except (OSError, ValueError):
                break  # parent pipe gone mid-send; nothing left to serve
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# parent-side: workers, the pool, sessions
# ---------------------------------------------------------------------------
class _Worker:
    """One warm worker process plus its private message pipe."""

    _ids = itertools.count(1)

    def __init__(self, context) -> None:
        self.id = next(self._ids)
        self.conn, child_conn = context.Pipe(duplex=True)
        # Deliberately non-daemonic: pool tasks may themselves fan out
        # through nested backends (decomposed component solves under
        # REPRO_BACKEND=process), and daemonic processes cannot have
        # children.  Orphan safety comes from the pipe EOF instead.
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, self.conn),
            name=f"repro-pool-{self.id}",
            daemon=False,
        )
        self.process.start()
        child_conn.close()
        self.idle_since = time.perf_counter()

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, graceful: bool = True) -> None:
        """Ask the worker to exit (or terminate it) and reap the process."""
        if graceful and self.alive():
            try:
                self.conn.send(("stop",))
            except (OSError, ValueError):
                graceful = False
        if not graceful and self.alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass
        # Release the Process bookkeeping eagerly (active_children() joins
        # finished processes lazily; close() makes the reap deterministic).
        close = getattr(self.process, "close", None)
        if close is not None:
            try:
                close()
            except ValueError:  # pragma: no cover - still alive somehow
                pass


class WorkerPool:
    """A process-wide pool of warm, preemptible worker processes.

    Sessions :meth:`acquire` workers for exclusive use and release them
    on close; the pool grows on demand, keeps released workers warm, and
    reaps the ones idle past ``idle_timeout`` seconds.  Thread-safe: the
    service daemon's executor thread and the main thread may run
    sessions concurrently.
    """

    def __init__(self, idle_timeout: float = DEFAULT_IDLE_TIMEOUT) -> None:
        self.idle_timeout = float(idle_timeout)
        self._context = get_context("fork" if "fork" in _START_METHODS else None)
        self._lock = threading.Lock()
        self._idle: List[_Worker] = []
        self._acquired = 0
        self._generation = 0
        self._last_config: Optional[Dict[str, Any]] = None
        self._spawned = 0
        self._killed = 0
        self._reaped = 0

    # -- configuration generations -----------------------------------------
    def config(self) -> Dict[str, Any]:
        """The generation-stamped config snapshot dispatched with tasks."""
        snapshot = _current_config()
        with self._lock:
            if snapshot != self._last_config:
                self._generation += 1
                self._last_config = snapshot
            return {"generation": self._generation, **snapshot}

    # -- worker lifecycle ---------------------------------------------------
    def _spawn(self) -> _Worker:
        worker = _Worker(self._context)
        with self._lock:
            self._spawned += 1
        return worker

    def acquire(self, count: int) -> List[_Worker]:
        """Reserve ``count`` workers (warm ones first, spawning the rest)."""
        if count < 1:
            raise ValueError(f"must acquire at least one worker, got {count}")
        workers: List[_Worker] = []
        with self._lock:
            while self._idle and len(workers) < count:
                worker = self._idle.pop()
                if worker.alive():
                    workers.append(worker)
                else:  # died while idle; replace it outside the lock
                    self._reaped += 1
            self._acquired += count
        while len(workers) < count:
            workers.append(self._spawn())
        return workers

    def release(self, workers: List[_Worker]) -> None:
        """Return workers to the warm set and reap the long-idle ones."""
        now = time.perf_counter()
        with self._lock:
            self._acquired -= len(workers)
            for worker in workers:
                if worker.alive():
                    worker.idle_since = now
                    self._idle.append(worker)
                else:
                    self._reaped += 1
            stale = [
                w for w in self._idle if now - w.idle_since > self.idle_timeout
            ]
            self._idle = [
                w for w in self._idle if now - w.idle_since <= self.idle_timeout
            ]
            self._reaped += len(stale)
        for worker in stale:
            worker.stop()

    def replace(self, worker: _Worker) -> _Worker:
        """Hard-kill ``worker`` and hand back a fresh one (the kill primitive)."""
        worker.stop(graceful=False)
        with self._lock:
            self._killed += 1
        return self._spawn()

    def shutdown(self) -> None:
        """Stop every idle worker (acquired ones stop when released)."""
        with self._lock:
            idle, self._idle = self._idle, []
        for worker in idle:
            worker.stop()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "idle": len(self._idle),
                "acquired": self._acquired,
                "spawned": self._spawned,
                "killed": self._killed,
                "reaped": self._reaped,
            }

    def session(
        self, fn: Callable, workers: int, chunksize: int = 1
    ) -> "PoolSession":
        return PoolSession(self, fn, workers, chunksize)


class WorkerLostError(RuntimeError):
    """A pool worker died without delivering its task's outcome.

    Raised from :meth:`PoolSession.pop` for *unexpected* deaths (a
    crashed or externally-killed worker).  Tasks killed deliberately via
    :meth:`PoolSession.kill` never raise — they simply produce no
    outcome.
    """

    def __init__(self, tags: List[int], detail: str) -> None:
        super().__init__(
            f"pool worker died while running task(s) {tags}: {detail}"
        )
        self.tags = tags


class PoolSession:
    """One task stream over exclusively-acquired pool workers.

    Implements the :class:`~repro.runtime.backends.ExecutionSession`
    surface (submit / pop / in_flight / close) plus the preemption
    extras: :meth:`pop` accepts a ``timeout``, :meth:`kill` terminates
    the worker running a tag, and :meth:`take_incumbent` drains the
    latest any-time payload a task published.
    """

    can_kill = True

    def __init__(
        self, pool: WorkerPool, fn: Callable, workers: int, chunksize: int
    ) -> None:
        self._pool = pool
        self._fn = fn
        self._chunksize = max(1, int(chunksize))
        self._workers = pool.acquire(max(1, int(workers)))
        self._idle: List[_Worker] = list(self._workers)
        self._running: Dict[_Worker, Tuple[int, List[int]]] = {}
        self._pending: deque = deque()  # (chunk_id, [(tag, item), ...])
        self._buffer: List[Tuple[int, Any]] = []
        self._ready: deque = deque()  # completed (tag, outcome)
        self._incumbents: Dict[int, Any] = {}
        self._chunk_ids = itertools.count()
        self._in_flight = 0
        self._killed_tags: set = set()
        self._closed = False

    # -- the ExecutionSession surface ---------------------------------------
    def submit(self, tag: int, item: object) -> None:
        self._buffer.append((tag, item))
        self._in_flight += 1
        if len(self._buffer) >= self._chunksize:
            self.flush()

    def flush(self) -> None:
        """Queue any partially-filled chunk for dispatch."""
        if self._buffer:
            chunk, self._buffer = self._buffer, []
            self._pending.append((next(self._chunk_ids), chunk))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._idle and self._pending:
            worker = self._idle.pop()
            if not worker.alive():
                # Died while idle (exceedingly rare); replace silently.
                self._replace_worker(worker)
                continue
            chunk_id, chunk = self._pending.popleft()
            try:
                worker.conn.send(
                    ("task", chunk_id, self._fn, chunk, self._pool.config())
                )
            except (OSError, ValueError):
                self._pending.appendleft((chunk_id, chunk))
                self._replace_worker(worker)
                continue
            self._running[worker] = (chunk_id, [tag for tag, _item in chunk])

    def _replace_worker(self, worker: _Worker) -> None:
        fresh = self._pool.replace(worker)
        self._workers[self._workers.index(worker)] = fresh
        self._idle.append(fresh)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def pop(self, timeout: Optional[float] = None) -> Optional[Tuple[int, object]]:
        """Return one completed ``(tag, outcome)``; ``None`` on timeout.

        Blocks forever when ``timeout`` is ``None`` (the plain session
        contract).  Killed tags never surface here.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            if self._ready:
                self._in_flight -= 1
                return self._ready.popleft()
            self.flush()
            if not self._running:
                if self._pending:  # no live worker could take it
                    self._dispatch()
                    continue
                raise LookupError("no task in flight")
            wait_for = None
            if deadline is not None:
                wait_for = max(0.0, deadline - time.perf_counter())
            ready_conns = _mp_connection.wait(
                [worker.conn for worker in self._running], timeout=wait_for
            )
            if not ready_conns:
                return None  # timeout
            for conn in ready_conns:
                worker = next(
                    w for w in self._running if w.conn is conn
                )
                self._drain_worker(worker)

    def _drain_worker(self, worker: _Worker) -> None:
        chunk_id, tags = self._running[worker]
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            del self._running[worker]
            self._replace_worker(worker)
            live = [t for t in tags if t not in self._killed_tags]
            self._in_flight -= len(live)
            raise WorkerLostError(live, "connection lost") from None
        kind = message[0]
        if kind == "inc":
            _kind, tag, payload = message
            if tag not in self._killed_tags:
                self._incumbents[tag] = payload
            return
        if kind == "crash":
            _kind, _chunk_id, error_type, error = message
            del self._running[worker]
            self._idle.append(worker)
            live = [t for t in tags if t not in self._killed_tags]
            self._in_flight -= len(live)
            raise WorkerLostError(live, f"task raised {error_type}: {error}")
        # "done"
        _kind, _chunk_id, outcomes = message
        del self._running[worker]
        self._idle.append(worker)
        self._dispatch()
        for tag, outcome in outcomes:
            # Killed tags were accounted at kill time and never surface.
            if tag not in self._killed_tags:
                self._ready.append((tag, outcome))

    # -- preemption extras --------------------------------------------------
    def kill(self, tag: int, drop_pending: bool = True) -> bool:
        """Hard-kill the task ``tag``; returns True when something stopped.

        A running tag terminates its worker mid-solve (the whole chunk it
        rode in dies with it — racing callers use ``chunksize=1``); a
        still-pending tag is simply dropped from the queue when
        ``drop_pending``.  Killed tags never come back from :meth:`pop`;
        any incumbent they published remains readable.
        """
        self.flush()
        if tag in self._killed_tags:
            return False
        for worker, (chunk_id, tags) in list(self._running.items()):
            if tag in tags:
                # Drain anything already in the pipe before pulling the
                # trigger: a final incumbent must not die with the worker,
                # and a member that finished microseconds ago is a
                # completion, not a kill.
                try:
                    while worker.conn.poll():
                        message = worker.conn.recv()
                        if message[0] == "inc":
                            _kind, inc_tag, payload = message
                            if inc_tag not in self._killed_tags:
                                self._incumbents[inc_tag] = payload
                        elif message[0] == "done":
                            del self._running[worker]
                            self._idle.append(worker)
                            self._dispatch()
                            for done_tag, outcome in message[2]:
                                if done_tag not in self._killed_tags:
                                    self._ready.append((done_tag, outcome))
                            return False  # finished before the kill landed
                        else:  # "crash": the task died on its own
                            break
                except (EOFError, OSError):
                    pass
                del self._running[worker]
                fresh = self._pool.replace(worker)
                self._workers[self._workers.index(worker)] = fresh
                self._idle.append(fresh)
                live = [t for t in tags if t not in self._killed_tags]
                self._killed_tags.update(live)
                self._in_flight -= len(live)
                self._dispatch()
                return True
        if drop_pending:
            for index, (chunk_id, chunk) in enumerate(self._pending):
                chunk_tags = [t for t, _item in chunk]
                if tag in chunk_tags:
                    remaining = [
                        (t, item) for t, item in chunk if t != tag
                    ]
                    if remaining:
                        self._pending[index] = (chunk_id, remaining)
                    else:
                        del self._pending[index]
                    self._killed_tags.add(tag)
                    self._in_flight -= 1
                    return True
        return False

    def take_incumbent(self, tag: int) -> Optional[Any]:
        """Pop and return the latest incumbent ``tag`` published, if any."""
        return self._incumbents.pop(tag, None)

    def close(self) -> None:
        """Kill whatever is still running and return the workers warm."""
        if self._closed:
            return
        self._closed = True
        for worker, (_chunk_id, tags) in list(self._running.items()):
            del self._running[worker]
            fresh = self._pool.replace(worker)
            self._workers[self._workers.index(worker)] = fresh
            self._killed_tags.update(tags)
        self._pending.clear()
        self._buffer.clear()
        self._pool.release(self._workers)
        self._workers = []
        self._idle = []

    def __enter__(self) -> "PoolSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the process-wide handle
# ---------------------------------------------------------------------------
_POOL: Optional[WorkerPool] = None
_POOL_LOCK = threading.Lock()
_POOL_PID: Optional[int] = None


def get_worker_pool() -> WorkerPool:
    """The process-wide :class:`WorkerPool`, created on first use.

    Fork-aware: a child process that inherited the parent's handle gets
    its own fresh pool (the inherited worker pipes belong to the parent).
    """
    global _POOL, _POOL_PID
    with _POOL_LOCK:
        if _POOL is None or _POOL_PID != os.getpid():
            _POOL = WorkerPool()
            _POOL_PID = os.getpid()
        return _POOL


def shutdown_worker_pool() -> None:
    """Stop every warm worker of the process-wide pool (if one exists).

    Sessions still holding workers keep them until they close; callers
    that need a provably clean process tree (tests, the service daemon's
    final drain) call this after their last session exits.
    """
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None and _POOL_PID == os.getpid():
        pool.shutdown()


def worker_pool_stats() -> Dict[str, int]:
    """Counters of the process-wide pool (zeros when none was created)."""
    with _POOL_LOCK:
        pool = _POOL
    if pool is None or _POOL_PID != os.getpid():
        return {"idle": 0, "acquired": 0, "spawned": 0, "killed": 0, "reaped": 0}
    return pool.stats()


atexit.register(shutdown_worker_pool)
