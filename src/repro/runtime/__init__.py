"""``repro.runtime`` — the execution layer under every batch path.

Where :mod:`repro.api` defines *what* a solve is (problems, solvers,
results), this package owns *how* many of them run: which pool executes
the tasks, how task streams are windowed and reordered, and which cache
tiers a solve consults before doing DP work.

* :mod:`repro.runtime.backends` — the pluggable :class:`Backend` protocol
  with ``serial`` / ``thread`` / ``process`` implementations, a registry
  for third-party backends, and the ``configure_backend()`` /
  ``REPRO_BACKEND`` selection chain.
* :mod:`repro.runtime.pool` — the persistent :class:`WorkerPool` behind
  the ``process`` backend: warm worker processes reused across sessions,
  hard task kills (terminate-and-respawn), config-generation re-sync,
  and the any-time incumbent channel (``publish_incumbent()``).
* :mod:`repro.runtime.stream` — :func:`solve_stream`, the chunked
  bounded-memory pipeline with deterministic-order mode, in-flight
  canonical dedupe, and per-task error capture; and :func:`run_tasks`,
  the generic fan-out primitive the fuzz/bench/experiment harnesses use.
* :mod:`repro.runtime.diskcache` — the content-addressed on-disk tier of
  the canonical solve cache (atomic writes, engine-version invalidation),
  enabled with ``configure_disk_cache()`` / ``--cache-dir`` /
  ``REPRO_CACHE_DIR``.
* :mod:`repro.runtime.observe` — per-task completion observers:
  ``add_task_observer(fn)`` sees every ``(problem, result)`` the stream
  delivers, which is how the scheduling service aggregates engine and
  status counters without instrumenting callers.

Quickstart::

    from repro.runtime import configure_backend, configure_disk_cache, solve_stream

    configure_backend("process")           # or REPRO_BACKEND=process
    configure_disk_cache(".repro-cache")   # optional persistent tier
    for result in solve_stream(problem_iter, workers=8):
        consume(result)                    # arrives in input order
"""

from .backends import (
    BACKEND_ENV_VAR,
    Backend,
    ColdProcessBackend,
    ExecutionSession,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    configure_backend,
    configured_backend,
    default_backend_name,
    register_backend,
    resolve_backend,
)
from .pool import (
    PoolSession,
    WorkerLostError,
    WorkerPool,
    get_worker_pool,
    publish_incumbent,
    shutdown_worker_pool,
    worker_pool_stats,
)
from .diskcache import (
    CACHE_DIR_ENV_VAR,
    DiskSolveCache,
    configure_disk_cache,
    disk_cache_dir,
    get_disk_cache,
)
from .observe import (
    add_task_observer,
    notify_task_observers,
    remove_task_observer,
    task_observers,
)
from .stream import TaskOutcome, run_tasks, solve_stream

__all__ = [
    # backends
    "BACKEND_ENV_VAR",
    "Backend",
    "ExecutionSession",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ColdProcessBackend",
    "available_backends",
    "register_backend",
    "configure_backend",
    "configured_backend",
    "default_backend_name",
    "resolve_backend",
    # disk cache tier
    "CACHE_DIR_ENV_VAR",
    "DiskSolveCache",
    "configure_disk_cache",
    "disk_cache_dir",
    "get_disk_cache",
    # the persistent worker pool
    "PoolSession",
    "WorkerLostError",
    "WorkerPool",
    "get_worker_pool",
    "publish_incumbent",
    "shutdown_worker_pool",
    "worker_pool_stats",
    # streaming pipeline
    "TaskOutcome",
    "run_tasks",
    "solve_stream",
    # completion observers
    "add_task_observer",
    "remove_task_observer",
    "task_observers",
    "notify_task_observers",
]
